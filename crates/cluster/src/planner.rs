//! Job planning: valid decompositions and minimum-node search.
//!
//! CGYRO-style validity: the toroidal split must divide `nt`, and the
//! `n1` split must divide both `nv` and `nc` (the production code requires
//! exact divisibility for its transposes). These constraints quantize the
//! feasible rank counts — for the `nl03c`-like deck on a Frontier-like
//! machine they jump from 128 straight to 256 ranks, which combined with
//! the memory budget makes **32 nodes the minimum single-simulation
//! allocation**, exactly the paper's statement.

use crate::memory::{rank_inventory, total_bytes, BufferCategory};
use xg_costmodel::MachineModel;
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;

/// A feasible (or infeasible) placement of an ensemble on nodes.
#[derive(Clone, Debug)]
pub struct JobPlan {
    /// Node count.
    pub nodes: usize,
    /// Total ranks.
    pub ranks: usize,
    /// Ensemble size.
    pub k: usize,
    /// Per-simulation process grid.
    pub grid: ProcGrid,
    /// Worst-case per-rank bytes.
    pub per_rank_bytes: u64,
    /// Per-rank constant-tensor bytes.
    pub cmat_bytes: u64,
    /// Usable per-rank budget of the machine.
    pub budget_bytes: u64,
}

impl JobPlan {
    /// True when the plan fits in memory.
    pub fn feasible(&self) -> bool {
        self.per_rank_bytes <= self.budget_bytes
    }
}

/// Why no feasible plan exists for a `(deck, k, nodes, machine)` request —
/// the typed diagnosis behind `plan(...) == None` / `!feasible()`, surfaced
/// through `xgplan` rows and `xg-serve` admission errors.
#[derive(Clone, Debug, PartialEq)]
pub enum Infeasibility {
    /// The allocation's rank count does not divide into `k` equal
    /// simulations.
    RanksNotDivisibleByK {
        /// Total ranks on the allocation.
        ranks: usize,
        /// Requested ensemble size.
        k: usize,
    },
    /// No per-simulation grid satisfies the divisibility constraints.
    NoValidGrid {
        /// Ranks per simulation.
        per_sim: usize,
        /// Which constraint blocked every candidate.
        detail: String,
    },
    /// A grid exists but the worst-case rank exceeds the memory budget.
    Memory {
        /// Worst-case per-rank bytes of the best candidate grid.
        per_rank_bytes: u64,
        /// The machine's usable per-rank budget.
        budget_bytes: u64,
        /// The candidate grid that was priced.
        grid: ProcGrid,
    },
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasibility::RanksNotDivisibleByK { ranks, k } => write!(
                f,
                "{ranks} ranks do not divide into k={k} equal simulations"
            ),
            Infeasibility::NoValidGrid { per_sim, detail } => {
                write!(f, "no valid grid for {per_sim} ranks/simulation: {detail}")
            }
            Infeasibility::Memory { per_rank_bytes, budget_bytes, grid } => write!(
                f,
                "memory: grid {}x{} needs {per_rank_bytes} B/rank, budget is {budget_bytes} B",
                grid.n1, grid.n2
            ),
        }
    }
}

impl Infeasibility {
    /// Short machine-readable tag (`divisibility` vs `memory`).
    pub fn kind(&self) -> &'static str {
        match self {
            Infeasibility::RanksNotDivisibleByK { .. } => "divisibility",
            Infeasibility::NoValidGrid { .. } => "divisibility",
            Infeasibility::Memory { .. } => "memory",
        }
    }
}

/// Explain why `valid_grids` came back empty for this rank count: which
/// divisibility constraint killed every factorization.
fn grid_infeasibility_detail(input: &CgyroInput, ranks: usize) -> String {
    let d = input.dims();
    let mut had_n2 = false;
    let mut blocked_nv = Vec::new();
    for n2 in 1..=ranks {
        if !ranks.is_multiple_of(n2) || !d.nt.is_multiple_of(n2) {
            continue;
        }
        had_n2 = true;
        let n1 = ranks / n2;
        if n1 > d.nv {
            continue;
        }
        if !d.nv.is_multiple_of(n1) || !d.nc.is_multiple_of(n1) {
            blocked_nv.push(n1);
        }
    }
    if !had_n2 {
        return format!("no divisor of {ranks} divides nt={}", d.nt);
    }
    if blocked_nv.is_empty() {
        return format!("every candidate n1 exceeds nv={}", d.nv);
    }
    blocked_nv.sort_unstable();
    blocked_nv.dedup();
    format!(
        "candidate n1 {} do(es) not divide nv={} and nc={} (balanced mode requires exact \
         divisibility; unbalanced mode lifts this)",
        blocked_nv.iter().map(|n| n.to_string()).collect::<Vec<_>>().join("/"),
        d.nv,
        d.nc
    )
}

/// All CGYRO-valid per-simulation grids for a given rank count.
pub fn valid_grids(input: &CgyroInput, ranks: usize) -> Vec<ProcGrid> {
    let d = input.dims();
    let mut out = Vec::new();
    for n2 in 1..=ranks {
        if !ranks.is_multiple_of(n2) || !d.nt.is_multiple_of(n2) {
            continue;
        }
        let n1 = ranks / n2;
        if n1 > d.nv || !d.nv.is_multiple_of(n1) || !d.nc.is_multiple_of(n1) {
            continue;
        }
        out.push(ProcGrid::new(n1, n2));
    }
    // Prefer the largest toroidal split (CGYRO's convention), then n1.
    out.sort_by_key(|g| std::cmp::Reverse((g.n2, g.n1)));
    out
}

/// All grids admissible in **unbalanced** mode: the toroidal split must
/// still divide `nt` exactly (the nt transpose wire format), but `n1` no
/// longer has to divide `nv`/`nc` — the ragged `Decomp1D`/`RaggedDecomp`
/// splits handle the remainder rows. Grids that are also balanced-valid
/// sort first (at equal `(n2, n1)` preference), so unbalanced mode never
/// picks a ragged grid when an exactly-dividing one exists.
pub fn valid_grids_unbalanced(input: &CgyroInput, ranks: usize) -> Vec<ProcGrid> {
    let d = input.dims();
    let mut out = Vec::new();
    for n2 in 1..=ranks {
        if !ranks.is_multiple_of(n2) || !d.nt.is_multiple_of(n2) {
            continue;
        }
        let n1 = ranks / n2;
        if n1 > d.nv {
            continue;
        }
        out.push(ProcGrid::new(n1, n2));
    }
    let balanced_ok =
        |g: &ProcGrid| d.nv.is_multiple_of(g.n1) && d.nc.is_multiple_of(g.n1);
    out.sort_by_key(|g| (std::cmp::Reverse(balanced_ok(g)), std::cmp::Reverse((g.n2, g.n1))));
    out
}

/// Price the best candidate grid for one `(k, nodes)` request, reporting
/// **why** when nothing feasible exists. `unbalanced` admits ragged
/// (non-dividing) grids via [`valid_grids_unbalanced`]. `Ok` plans are
/// always memory-feasible.
pub fn diagnose(
    input: &CgyroInput,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
    unbalanced: bool,
) -> Result<JobPlan, Infeasibility> {
    let total_ranks = machine.ranks(nodes);
    if !total_ranks.is_multiple_of(k) {
        return Err(Infeasibility::RanksNotDivisibleByK { ranks: total_ranks, k });
    }
    let per_sim = total_ranks / k;
    let grids = if unbalanced {
        valid_grids_unbalanced(input, per_sim)
    } else {
        valid_grids(input, per_sim)
    };
    let Some(grid) = grids.into_iter().next() else {
        return Err(Infeasibility::NoValidGrid {
            per_sim,
            detail: grid_infeasibility_detail(input, per_sim),
        });
    };
    let inv = rank_inventory(input, grid, k * grid.n1);
    let per_rank = total_bytes(&inv, None);
    let cmat = total_bytes(&inv, Some(BufferCategory::Constant));
    let p = JobPlan {
        nodes,
        ranks: total_ranks,
        k,
        grid,
        per_rank_bytes: per_rank,
        cmat_bytes: cmat,
        budget_bytes: machine.usable_mem_per_rank(),
    };
    if !p.feasible() {
        return Err(Infeasibility::Memory {
            per_rank_bytes: p.per_rank_bytes,
            budget_bytes: p.budget_bytes,
            grid,
        });
    }
    Ok(p)
}

/// [`plan`] with unbalanced-mode grid admission: exact `nv`/`nc`
/// divisibility is not required (the planner assigns ragged cuts instead).
pub fn plan_unbalanced(
    input: &CgyroInput,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
) -> Option<JobPlan> {
    let total_ranks = machine.ranks(nodes);
    if !total_ranks.is_multiple_of(k) {
        return None;
    }
    let per_sim = total_ranks / k;
    let grid = valid_grids_unbalanced(input, per_sim).into_iter().next()?;
    let inv = rank_inventory(input, grid, k * grid.n1);
    let per_rank = total_bytes(&inv, None);
    let cmat = total_bytes(&inv, Some(BufferCategory::Constant));
    Some(JobPlan {
        nodes,
        ranks: total_ranks,
        k,
        grid,
        per_rank_bytes: per_rank,
        cmat_bytes: cmat,
        budget_bytes: machine.usable_mem_per_rank(),
    })
}

/// Plan an ensemble of `k` simulations on `nodes` nodes. Returns `None`
/// when no CGYRO-valid decomposition exists for that rank count.
pub fn plan(
    input: &CgyroInput,
    k: usize,
    nodes: usize,
    machine: &MachineModel,
) -> Option<JobPlan> {
    let total_ranks = machine.ranks(nodes);
    if !total_ranks.is_multiple_of(k) {
        return None;
    }
    let per_sim = total_ranks / k;
    let grid = valid_grids(input, per_sim).into_iter().next()?;
    let inv = rank_inventory(input, grid, k * grid.n1);
    let per_rank = total_bytes(&inv, None);
    let cmat = total_bytes(&inv, Some(BufferCategory::Constant));
    Some(JobPlan {
        nodes,
        ranks: total_ranks,
        k,
        grid,
        per_rank_bytes: per_rank,
        cmat_bytes: cmat,
        budget_bytes: machine.usable_mem_per_rank(),
    })
}

/// Largest ensemble size `k ≤ k_cap` that fits a **fixed** `nodes`
/// allocation of `machine` — the serving-side batch-size budget. On a fixed
/// allocation, growing the batch shrinks each member's share of the rank
/// pool, so the per-rank state footprint grows with `k` and eventually
/// blows the memory budget (for the `nl03c`-like deck on 32 Frontier-like
/// nodes the sweep saturates at `k = 8`, the paper's setup). Intermediate
/// ensemble sizes with no CGYRO-valid decomposition are skipped rather
/// than treated as a ceiling. Returns `0` when not even one simulation
/// fits — such a job must be rejected at admission, not queued.
pub fn max_feasible_k(
    input: &CgyroInput,
    nodes: usize,
    machine: &MachineModel,
    k_cap: usize,
) -> usize {
    (1..=k_cap)
        .rfind(|&k| plan(input, k, nodes, machine).is_some_and(|p| p.feasible()))
        .unwrap_or(0)
}

/// [`max_feasible_k`] with unbalanced-mode grid admission: ensemble sizes
/// whose per-simulation rank count has no exactly-dividing grid are no
/// longer skipped — the ragged decomposition makes them runnable, so the
/// serving layer can batch them.
pub fn max_feasible_k_unbalanced(
    input: &CgyroInput,
    nodes: usize,
    machine: &MachineModel,
    k_cap: usize,
) -> usize {
    (1..=k_cap)
        .rfind(|&k| plan_unbalanced(input, k, nodes, machine).is_some_and(|p| p.feasible()))
        .unwrap_or(0)
}

/// Smallest node count on which `k` simulations fit as one XGYRO job
/// (`k = 1` is a plain CGYRO job). Searches up to `max_nodes`.
pub fn min_nodes(
    input: &CgyroInput,
    k: usize,
    machine: &MachineModel,
    max_nodes: usize,
) -> Option<JobPlan> {
    (1..=max_nodes).find_map(|nodes| {
        plan(input, k, nodes, machine).filter(|p| p.feasible())
    })
}

/// [`min_nodes`] with unbalanced-mode grid admission — the node *cost* of
/// one ensemble world in a multi-world schedule. The serving layer prices
/// every flushed batch with this before bin-packing worlds into the
/// machine budget.
pub fn min_nodes_unbalanced(
    input: &CgyroInput,
    k: usize,
    machine: &MachineModel,
    max_nodes: usize,
) -> Option<JobPlan> {
    (1..=max_nodes).find_map(|nodes| {
        plan_unbalanced(input, k, nodes, machine).filter(|p| p.feasible())
    })
}

/// Greedy first-fit packing of concurrent ensemble worlds into a shared
/// node budget: each world `(input, k)` is priced at its minimum feasible
/// allocation ([`min_nodes_unbalanced`]) and admitted while the budget
/// holds. Returns the per-world node grant (`None` = did not fit — either
/// infeasible outright or the budget was exhausted). Worlds are packed in
/// the given order, so callers control priority by ordering.
pub fn pack_worlds(
    worlds: &[(CgyroInput, usize)],
    budget_nodes: usize,
    machine: &MachineModel,
) -> Vec<Option<usize>> {
    let mut free = budget_nodes;
    worlds
        .iter()
        .map(|(input, k)| {
            let nodes = min_nodes_unbalanced(input, *k, machine, free)?.nodes;
            free -= nodes;
            Some(nodes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> MachineModel {
        MachineModel::frontier_like()
    }

    #[test]
    fn nl03c_single_sim_needs_32_nodes() {
        // Paper §3: "a single CGYRO simulation does require at least 32
        // nodes."
        let input = CgyroInput::nl03c_like();
        let plan = min_nodes(&input, 1, &frontier(), 128).expect("must fit somewhere");
        assert_eq!(plan.nodes, 32, "minimum feasible allocation");
        assert_eq!(plan.ranks, 256);
        assert_eq!(plan.grid.n2, 16, "toroidal split preferred");
        assert_eq!(plan.grid.n1, 16);
    }

    #[test]
    fn nl03c_16_nodes_is_memory_infeasible() {
        let input = CgyroInput::nl03c_like();
        let p = plan(&input, 1, 16, &frontier()).expect("decomposition exists");
        assert!(!p.feasible(), "128 ranks must exceed the per-rank budget");
    }

    #[test]
    fn xgyro_fits_8_sims_on_the_same_32_nodes() {
        // The paper's benchmark setup: 8 nl03c variants on 32 nodes as one
        // ensemble — 8x the science on the allocation a single CGYRO run
        // needs.
        let input = CgyroInput::nl03c_like();
        let p = plan(&input, 8, 32, &frontier()).expect("plan exists");
        assert!(p.feasible(), "per-rank {} > budget {}", p.per_rank_bytes, p.budget_bytes);
        assert_eq!(p.grid.n1, 2);
        assert_eq!(p.grid.n2, 16);
        // And the ensemble minimum is also 32 nodes.
        let min = min_nodes(&input, 8, &frontier(), 128).unwrap();
        assert_eq!(min.nodes, 32);
    }

    #[test]
    fn xgyro_16_sims_do_not_fit_on_32_nodes() {
        // Sharing cmat cannot shrink the per-simulation state buffers: at
        // k = 16 each rank would hold 16x the state of the 256-rank run
        // and blows the budget (the sweep saturates at k = 8).
        let input = CgyroInput::nl03c_like();
        let p = plan(&input, 16, 32, &frontier()).expect("plan exists");
        assert!(!p.feasible());
    }

    #[test]
    fn valid_grids_respect_divisibility() {
        let input = CgyroInput::nl03c_like(); // nv=576, nc=2^17, nt=16
        // 192 ranks has no valid grid: n1 would need to divide both 576
        // and 2^17 (gcd 64), but 192 = n2*n1 with n2 | 16 forces n1 ∈
        // {12, 24, 48, 96, 192} — none divide 2^17.
        assert!(valid_grids(&input, 192).is_empty());
        // 256 = 16 × 16 works.
        let grids = valid_grids(&input, 256);
        assert!(grids.iter().any(|g| g.n1 == 16 && g.n2 == 16));
        // Every returned grid multiplies out and divides the dims.
        for g in &grids {
            assert_eq!(g.size(), 256);
            assert_eq!(input.dims().nt % g.n2, 0);
            assert_eq!(input.dims().nv % g.n1, 0);
            assert_eq!(input.dims().nc % g.n1, 0);
        }
    }

    #[test]
    fn cmat_per_rank_equal_between_cgyro_256_and_xgyro_ensemble() {
        // Both split one cmat copy over 256 ranks.
        let input = CgyroInput::nl03c_like();
        let m = frontier();
        let cg = plan(&input, 1, 32, &m).unwrap();
        let xg = plan(&input, 8, 32, &m).unwrap();
        assert_eq!(cg.cmat_bytes, xg.cmat_bytes);
        // But XGYRO carries 8x the per-rank state.
        assert!(xg.per_rank_bytes > cg.per_rank_bytes);
    }

    #[test]
    fn max_feasible_k_saturates_at_the_paper_ensemble_size() {
        // nl03c on the 32-node minimum allocation: 8 members fit, 16 do
        // not — the batch-size budget a campaign service must respect.
        let input = CgyroInput::nl03c_like();
        assert_eq!(max_feasible_k(&input, 32, &frontier(), 32), 8);
        // A deck that fits nowhere on the allocation yields 0 (reject).
        assert_eq!(max_feasible_k(&input, 1, &frontier(), 8), 0);
        // Tiny decks are never memory-bound at small k.
        let small = CgyroInput::test_small();
        let m = MachineModel::small_cluster();
        assert!(max_feasible_k(&small, 1, &m, 2) >= 1);
    }

    #[test]
    fn small_cluster_plans_small_decks() {
        let input = CgyroInput::test_medium();
        let m = MachineModel::small_cluster();
        let p = min_nodes(&input, 1, &m, 64).expect("tiny deck fits easily");
        assert_eq!(p.nodes, 1);
        assert!(p.feasible());
    }

    #[test]
    fn diagnose_names_the_blocking_constraint() {
        let input = CgyroInput::nl03c_like();
        let m = frontier();
        // 24 nodes = 192 ranks: no balanced grid (n1 never divides nv and
        // nc simultaneously) — a divisibility diagnosis, not memory.
        let err = diagnose(&input, 1, 24, &m, false).unwrap_err();
        assert!(matches!(err, Infeasibility::NoValidGrid { per_sim: 192, .. }), "{err:?}");
        assert_eq!(err.kind(), "divisibility");
        assert!(err.to_string().contains("192"), "{err}");
        // 16 nodes: a grid exists but memory blocks it.
        let err = diagnose(&input, 1, 16, &m, false).unwrap_err();
        assert!(matches!(err, Infeasibility::Memory { .. }), "{err:?}");
        assert_eq!(err.kind(), "memory");
        // k not dividing the rank pool.
        let err = diagnose(&input, 3, 32, &m, false).unwrap_err();
        assert!(matches!(err, Infeasibility::RanksNotDivisibleByK { ranks: 256, k: 3 }));
        // The feasible case round-trips to the plain planner.
        let ok = diagnose(&input, 8, 32, &m, false).unwrap();
        let p = plan(&input, 8, 32, &m).unwrap();
        assert_eq!((ok.grid.n1, ok.grid.n2), (p.grid.n1, p.grid.n2));
    }

    #[test]
    fn unbalanced_mode_admits_non_dividing_grids() {
        let input = CgyroInput::nl03c_like();
        // 192 ranks: balanced mode rejects, unbalanced mode finds a grid
        // (n2 | 16, n1 = ranks/n2 ragged over nv/nc).
        assert!(valid_grids(&input, 192).is_empty());
        let grids = valid_grids_unbalanced(&input, 192);
        assert!(!grids.is_empty());
        for g in &grids {
            assert_eq!(g.size(), 192);
            assert_eq!(input.dims().nt % g.n2, 0, "nt split stays exact");
        }
        // Where a balanced grid exists, unbalanced mode picks it first.
        let b = valid_grids(&input, 256);
        let u = valid_grids_unbalanced(&input, 256);
        assert_eq!(u.first(), b.first());
    }

    #[test]
    fn unbalanced_k_cap_is_at_least_the_balanced_one() {
        let input = CgyroInput::nl03c_like();
        let m = frontier();
        let balanced = max_feasible_k(&input, 32, &m, 32);
        let unbalanced = max_feasible_k_unbalanced(&input, 32, &m, 32);
        assert!(unbalanced >= balanced, "{unbalanced} < {balanced}");
        assert_eq!(balanced, 8, "paper setup unchanged");
    }

    #[test]
    fn pack_worlds_grants_minimum_allocations_until_the_budget_runs_out() {
        let input = CgyroInput::nl03c_like();
        let m = frontier();
        // Unbalanced admission relaxes the divisibility constraints that
        // force the balanced 32-node minimum, so price a world at its own
        // unbalanced minimum rather than hard-coding the balanced figure.
        let min = min_nodes_unbalanced(&input, 1, &m, 128).expect("nl03c fits").nodes;
        assert!((2..=32).contains(&min), "unbalanced min {min} out of range");
        // A budget one node short of three worlds fits exactly two
        // concurrent k=1 worlds; the third is refused on budget.
        let worlds = vec![(input.clone(), 1), (input.clone(), 1), (input.clone(), 1)];
        let grants = pack_worlds(&worlds, 3 * min - 1, &m);
        assert_eq!(grants, vec![Some(min), Some(min), None]);
        // Order controls priority: the first world always gets first pick.
        let grants = pack_worlds(&worlds[..1], 200, &m);
        assert_eq!(grants, vec![Some(min)], "grant is the minimum, not the budget");
        // A world the budget can never hold is None without consuming any
        // budget for later worlds.
        let mut tiny_budget = pack_worlds(&worlds, min - 1, &m);
        assert_eq!(tiny_budget.pop(), Some(None));
    }
}
