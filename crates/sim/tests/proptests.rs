//! Property-based tests of the physics substrate: conservation laws,
//! propagator stability, key invariance and deck round-trips must hold for
//! *arbitrary* valid inputs, not just the presets.

use proptest::prelude::*;
use xg_sim::grid::VelocityGrid;
use xg_sim::{parse_deck, write_deck, CgyroInput, CollisionOperator, Species};

/// Strategy: a random valid small input deck.
fn deck_strategy() -> impl Strategy<Value = CgyroInput> {
    (
        2usize..5,           // n_radial
        4usize..9,           // n_theta
        3usize..7,           // n_xi
        2usize..5,           // n_energy
        1usize..4,           // n_toroidal
        0.0f64..2.0,         // nu_ee
        0.5f64..4.0,         // q
        0.0f64..2.0,         // shear
        1usize..4,           // n_species
        0u64..1000,          // seed
    )
        .prop_map(
            |(nr, nth, nxi, nen, nt, nu, q, shear, ns, seed)| {
                let species = (0..ns)
                    .map(|i| Species {
                        name: format!("s{i}"),
                        mass: [1.0, 0.0005, 6.0][i],
                        z: [1.0, -1.0, 6.0][i],
                        temp: 1.0 + 0.2 * i as f64,
                        dens: 1.0 / (i + 1) as f64,
                        rln: 1.0,
                        rlt: 2.5,
                    })
                    .collect();
                CgyroInput {
                    n_radial: nr,
                    n_theta: nth,
                    n_xi: nxi,
                    n_energy: nen,
                    n_toroidal: nt,
                    species,
                    nu_ee: nu,
                    q,
                    shear,
                    kappa: 1.0,
                    delta: 0.0,
                    ky_min: 0.3,
                    kx_min: 0.1,
                    delta_t: 0.01,
                    steps_per_report: 10,
                    nonlinear_coupling: 0.0,
                    beta_e: 0.0,
                    upwind_diss: 0.1,
                    reduce_algo: Default::default(),
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn collision_operator_conserves_density_for_any_deck(input in deck_strategy()) {
        let v = VelocityGrid::new(&input);
        let op = CollisionOperator::build(&input, &v);
        let c = op.matrix_at(0.0);
        // Weighted column sums over each species block must vanish.
        for is in 0..v.n_species {
            let f: Vec<f64> = (0..v.nv()).map(|iv| ((iv * 7 + 3) as f64).sin()).collect();
            let mut cf = vec![0.0; v.nv()];
            xg_linalg::matvec(&c, &f, &mut cf);
            let mut dens = 0.0;
            for ie in 0..v.n_energy() {
                for ix in 0..v.n_xi() {
                    let iv = v.flatten(is, ie, ix);
                    dens += v.weight(iv) * cf[iv];
                }
            }
            prop_assert!(dens.abs() < 1e-9, "species {is}: {dens}");
        }
    }

    #[test]
    fn propagator_contracts_for_any_deck_and_kperp(
        input in deck_strategy(),
        kperp2 in 0.0f64..10.0,
    ) {
        let v = VelocityGrid::new(&input);
        let op = CollisionOperator::build(&input, &v);
        let c = op.matrix_at(kperp2);
        let mut lhs = c.clone();
        lhs.scale_inplace(-0.5 * input.delta_t);
        lhs.add_scaled_identity(1.0);
        let mut rhs = c;
        rhs.scale_inplace(0.5 * input.delta_t);
        rhs.add_scaled_identity(1.0);
        let a = xg_linalg::LuFactors::factorize(lhs).unwrap().solve_matrix(&rhs);
        // The propagator is symmetric after the sqrt-weight similarity
        // transform; measure the spectral radius there, where power
        // iteration in the Euclidean norm is exact (non-normality in the
        // unweighted space would otherwise make the estimate overshoot).
        let nv = v.nv();
        let sw: Vec<f64> = (0..nv).map(|iv| v.weight(iv).sqrt()).collect();
        let a_sym = xg_linalg::RealMatrix::from_fn(nv, nv, |i, j| {
            a[(i, j)] * sw[i] / sw[j]
        });
        let (rho, _) = xg_linalg::spectral_radius(&a_sym, 1e-10, 5000);
        prop_assert!(rho <= 1.0 + 1e-6, "rho = {rho}");
    }

    #[test]
    fn cmat_key_invariant_under_sweep_parameters(
        input in deck_strategy(),
        rln in -5.0f64..5.0,
        rlt in -5.0f64..10.0,
        coupling in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let k0 = input.cmat_key();
        let mut v = input.with_gradients(rln, rlt).with_seed(seed);
        v.nonlinear_coupling = coupling;
        prop_assert_eq!(v.cmat_key(), k0);
    }

    #[test]
    fn cmat_key_sensitive_to_physics(input in deck_strategy(), bump in 1.0001f64..2.0) {
        let k0 = input.cmat_key();
        let mut v = input.clone();
        v.nu_ee = v.nu_ee * bump + 0.001; // ensure an actual change
        prop_assert_ne!(v.cmat_key(), k0);
        let mut v = input.clone();
        v.delta_t *= bump;
        prop_assert_ne!(v.cmat_key(), k0);
    }

    #[test]
    fn deck_roundtrip_for_any_input(input in deck_strategy()) {
        let text = write_deck(&input);
        let back = parse_deck(&text).unwrap();
        prop_assert_eq!(&back, &input);
        prop_assert_eq!(back.cmat_key(), input.cmat_key());
    }

    #[test]
    fn initial_condition_is_layout_invariant(
        input in deck_strategy(),
        ic in 0usize..64,
        iv in 0usize..64,
        it in 0usize..8,
    ) {
        // The seeded IC is a pure function of global indices — the basis
        // of cross-decomposition equivalence.
        let a = xg_sim::initial_value(input.seed, ic, iv, it);
        let b = xg_sim::initial_value(input.seed, ic, iv, it);
        prop_assert_eq!(a, b);
        prop_assert!(a.abs() < 2e-3);
    }
}
