//! Physics validation of the mini-CGYRO model: the linear instability
//! behaves like the ITG-class drives the paper's ensembles sweep —
//! growth rates increase with the temperature gradient, the system is
//! stable without drive, and collisions are damping. This is what makes
//! the gradient-sweep ensemble a *meaningful* workload rather than k
//! copies of noise.

use xg_sim::{serial_simulation, CgyroInput, History};

fn growth_rate(rlt: f64, nu: f64) -> f64 {
    let mut input = CgyroInput::test_small();
    input.nonlinear_coupling = 0.0; // linear physics
    input.nu_ee = nu;
    input.steps_per_report = 25;
    for s in &mut input.species {
        s.rln = 1.0;
        s.rlt = rlt;
    }
    let mut sim = serial_simulation(&input);
    let mut hist = History::new();
    for _ in 0..20 {
        hist.push(sim.run_report_step());
    }
    hist.growth_rate(12).expect("field energy must stay positive")
}

#[test]
fn no_gradient_drive_is_stable() {
    let g = growth_rate(0.0, 0.05);
    assert!(g < 0.0, "undriven plasma must decay, got gamma = {g}");
}

#[test]
fn growth_rate_increases_with_temperature_gradient() {
    let g3 = growth_rate(3.0, 0.05);
    let g6 = growth_rate(6.0, 0.05);
    let g9 = growth_rate(9.0, 0.05);
    assert!(g3 > 0.0, "rlt=3 should be unstable: {g3}");
    assert!(g6 > g3, "gamma must grow with drive: {g6} !> {g3}");
    assert!(g9 > g6, "gamma must grow with drive: {g9} !> {g6}");
}

#[test]
fn collisions_damp_the_instability() {
    let g_lo = growth_rate(9.0, 0.0);
    let g_hi = growth_rate(9.0, 2.0);
    assert!(
        g_hi < g_lo,
        "collisions must reduce the growth rate: {g_hi} !< {g_lo}"
    );
    assert!(g_hi > 0.0, "moderate collisionality should not fully stabilize here");
}

#[test]
fn heat_flux_is_outward_when_driven() {
    // Quasilinear flux proxy must be positive (down-gradient transport)
    // for a driven, unstable case once the mode is established.
    let mut input = CgyroInput::test_small();
    input.nonlinear_coupling = 0.0;
    input.nu_ee = 0.05;
    input.steps_per_report = 25;
    for s in &mut input.species {
        s.rln = 1.0;
        s.rlt = 9.0;
    }
    let mut sim = serial_simulation(&input);
    let mut hist = History::new();
    for _ in 0..20 {
        hist.push(sim.run_report_step());
    }
    let q = hist.mean_heat_flux(5).unwrap();
    assert!(q > 0.0, "driven transport must be outward, got {q}");
}

#[test]
fn eigenmode_frequency_fit_consistent_with_energy_fit() {
    // Track a φ probe through a linear run: the γ recovered from the
    // complex amplitude ratios must match the γ from the field-energy fit,
    // and the mode must also carry a finite real frequency ω (drift wave).
    use xg_sim::ComplexTrace;
    let mut input = CgyroInput::test_small();
    input.nonlinear_coupling = 0.0;
    input.nu_ee = 0.05;
    input.steps_per_report = 25;
    for s in &mut input.species {
        s.rln = 1.0;
        s.rlt = 9.0;
    }
    let mut sim = serial_simulation(&input);
    let mut hist = History::new();
    // One probe per toroidal mode at the outboard midplane; the energy fit
    // is dominated by the fastest-growing mode, so compare against the
    // probe that ends up largest.
    let nt = input.n_toroidal;
    let ic_mid = input.n_theta / 2; // ir = 0, theta = 0
    let mut traces: Vec<ComplexTrace> = (0..nt).map(|_| ComplexTrace::new()).collect();
    for _ in 0..20 {
        let d = sim.run_report_step();
        hist.push(d);
        for (n, tr) in traces.iter_mut().enumerate() {
            tr.push(d.time, sim.phi()[ic_mid * nt + n]);
        }
    }
    let g_energy = hist.growth_rate(10).unwrap();
    let dominant = traces
        .iter()
        .max_by(|a, b| {
            let fa = a.frequency(10).map(|(_, g)| g).unwrap_or(f64::NEG_INFINITY);
            let fb = b.frequency(10).map(|(_, g)| g).unwrap_or(f64::NEG_INFINITY);
            fa.total_cmp(&fb)
        })
        .unwrap();
    let (omega, g_amp) = dominant.frequency(10).unwrap();
    assert!(
        (g_energy - g_amp).abs() < 0.25 * g_energy.abs().max(0.1),
        "gamma estimates disagree: energy {g_energy} vs amplitude {g_amp}"
    );
    assert!(omega.abs() > 1e-3, "drift wave should rotate, omega = {omega}");
}

#[test]
fn nonlinear_coupling_saturates_or_transfers_energy() {
    // With quadratic coupling on, the trajectory must stay finite and the
    // spectrum must not blow up over the same horizon the linear run
    // amplifies through.
    let mut input = CgyroInput::test_small();
    input.nu_ee = 0.1;
    input.nonlinear_coupling = 0.3;
    input.steps_per_report = 25;
    for s in &mut input.species {
        s.rlt = 9.0;
    }
    let mut sim = serial_simulation(&input);
    for _ in 0..20 {
        let d = sim.run_report_step();
        assert!(d.field_energy.is_finite() && d.h_norm2.is_finite());
        assert!(d.h_norm2 < 1e6, "nonlinear run must remain bounded");
    }
}

#[test]
fn growth_rate_converges_with_velocity_resolution() {
    // Refining the velocity grid must converge the growth rate: successive
    // refinements get closer together (Cauchy-style check).
    let gamma_at = |nxi: usize, nen: usize| -> f64 {
        let mut input = CgyroInput::test_small();
        input.nonlinear_coupling = 0.0;
        input.nu_ee = 0.1;
        input.n_xi = nxi;
        input.n_energy = nen;
        input.steps_per_report = 25;
        for s in &mut input.species {
            s.rln = 1.0;
            s.rlt = 9.0;
        }
        let mut sim = serial_simulation(&input);
        let mut hist = History::new();
        for _ in 0..16 {
            hist.push(sim.run_report_step());
        }
        hist.growth_rate(8).expect("positive energies")
    };
    let g_coarse = gamma_at(4, 3);
    let g_mid = gamma_at(8, 5);
    let g_fine = gamma_at(12, 7);
    let d1 = (g_mid - g_coarse).abs();
    let d2 = (g_fine - g_mid).abs();
    assert!(
        d2 < d1,
        "refinement must converge: |mid-coarse| = {d1:.3e}, |fine-mid| = {d2:.3e}"
    );
    // And the answer is physical (unstable ITG-like mode).
    assert!(g_fine > 0.0);
}
