//! Distributed-vs-serial equivalence: a CGYRO run on any `n1 × n2` process
//! grid must reproduce the serial reference (to reduction roundoff), and
//! identical decompositions must be bitwise-reproducible.

use xg_comm::World;
use xg_linalg::{norms::max_deviation, Complex64};
use xg_sim::{serial_simulation, CgyroInput, DistTopology, Simulation};
use xg_tensor::{ProcGrid, Tensor3};

/// Run a distributed CGYRO simulation on `grid`, return the reassembled
/// global distribution (str layout: `(nc, nv, nt)`) after `steps` steps,
/// plus the per-rank diagnostics.
fn run_dist(input: &CgyroInput, grid: ProcGrid, steps: usize) -> (Tensor3<Complex64>, Vec<xg_sim::Diagnostics>) {
    let dims = input.dims();
    let world = World::new(grid.size());
    let results = world.run(|comm| {
        let topo = DistTopology::cgyro(input, grid, comm);
        let layout = xg_tensor::PhaseLayout::new(dims, grid, topo.sim_comm().rank());
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(steps);
        let d = sim.diagnostics();
        let h = sim.h().clone();
        (layout.nv_range(), layout.nt_range(), h, d)
    });
    // Reassemble into the global tensor.
    let mut global = Tensor3::new(dims.nc, dims.nv, dims.nt);
    let mut diags = Vec::new();
    for (nv_r, nt_r, h, d) in results {
        for ic in 0..dims.nc {
            for (ivl, iv) in nv_r.clone().enumerate() {
                for (itl, it) in nt_r.clone().enumerate() {
                    global[(ic, iv, it)] = h[(ic, ivl, itl)];
                }
            }
        }
        diags.push(d);
    }
    (global, diags)
}

fn serial_reference(input: &CgyroInput, steps: usize) -> (Tensor3<Complex64>, xg_sim::Diagnostics) {
    let mut sim = serial_simulation(input);
    sim.run_steps(steps);
    let d = sim.diagnostics();
    (sim.h().clone(), d)
}

#[test]
fn one_rank_grid_matches_serial_bitwise() {
    let input = CgyroInput::test_small();
    let (serial, _) = serial_reference(&input, 4);
    let (dist, _) = run_dist(&input, ProcGrid::new(1, 1), 4);
    assert_eq!(serial.as_slice(), dist.as_slice());
}

#[test]
fn split_nv_matches_serial() {
    let input = CgyroInput::test_small();
    let (serial, _) = serial_reference(&input, 4);
    for n1 in [2usize, 3, 4] {
        let (dist, _) = run_dist(&input, ProcGrid::new(n1, 1), 4);
        let dev = max_deviation(serial.as_slice(), dist.as_slice());
        assert!(dev < 1e-12, "n1={n1}: deviation {dev}");
    }
}

#[test]
fn split_nt_matches_serial() {
    let input = CgyroInput::test_small();
    let (serial, _) = serial_reference(&input, 4);
    let (dist, _) = run_dist(&input, ProcGrid::new(1, 2), 4);
    let dev = max_deviation(serial.as_slice(), dist.as_slice());
    assert!(dev < 1e-12, "deviation {dev}");
}

#[test]
fn full_2d_grid_matches_serial() {
    let input = CgyroInput::test_medium();
    let (serial, sd) = serial_reference(&input, 3);
    let (dist, dd) = run_dist(&input, ProcGrid::new(3, 2), 3);
    let dev = max_deviation(serial.as_slice(), dist.as_slice());
    assert!(dev < 1e-11, "deviation {dev}");
    // Diagnostics agree across every rank and with serial.
    for d in &dd {
        assert!((d.field_energy - sd.field_energy).abs() < 1e-10 * (1.0 + sd.field_energy));
        assert!((d.h_norm2 - sd.h_norm2).abs() < 1e-10 * (1.0 + sd.h_norm2));
        assert!((d.heat_flux - sd.heat_flux).abs() < 1e-10 * (1.0 + sd.heat_flux.abs()));
    }
}

#[test]
fn uneven_decompositions_match_serial() {
    // nv = 24, nt = 2 in test_small; use part counts that do not divide.
    let input = CgyroInput::test_small();
    let (serial, _) = serial_reference(&input, 3);
    let (dist, _) = run_dist(&input, ProcGrid::new(5, 2), 3);
    let dev = max_deviation(serial.as_slice(), dist.as_slice());
    assert!(dev < 1e-12, "deviation {dev}");
}

#[test]
fn same_grid_twice_is_bitwise_identical() {
    let input = CgyroInput::test_small();
    let (a, _) = run_dist(&input, ProcGrid::new(2, 2), 5);
    let (b, _) = run_dist(&input, ProcGrid::new(2, 2), 5);
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn nonlinear_run_matches_serial() {
    let mut input = CgyroInput::test_small();
    input.nonlinear_coupling = 0.2; // exercise the nl transposes hard
    let (serial, _) = serial_reference(&input, 4);
    let (dist, _) = run_dist(&input, ProcGrid::new(2, 2), 4);
    let dev = max_deviation(serial.as_slice(), dist.as_slice());
    assert!(dev < 1e-12, "deviation {dev}");
}

#[test]
fn fft_nl_path_matches_serial_in_full_run() {
    // nt = 8 activates the pseudo-spectral path inside a complete
    // distributed simulation (transposes + FFT bracket + collisions).
    let mut input = CgyroInput::test_small();
    input.n_toroidal = 8;
    input.nonlinear_coupling = 0.15;
    {
        let k = xg_sim::nonlinear::NlKernel::new(&input);
        assert!(k.uses_fft(), "nt=8 must use the FFT path");
    }
    let (serial, _) = serial_reference(&input, 3);
    let (dist, _) = run_dist(&input, ProcGrid::new(2, 2), 3);
    let dev = max_deviation(serial.as_slice(), dist.as_slice());
    assert!(dev < 1e-12, "deviation {dev}");
}

#[test]
fn comm_pattern_shows_nv_comm_reuse() {
    // Figure 1: in CGYRO mode the SAME communicator (label "nv") performs
    // both the str AllReduce and the coll AllToAll.
    let input = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 1);
    let world = World::new(grid.size());
    let out = world.run_with_logs(|comm| {
        let topo = DistTopology::cgyro(&input, grid, comm);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.step();
    });
    for (_, log) in out {
        let ar: Vec<_> = log
            .iter()
            .filter(|r| r.op == xg_comm::OpKind::AllReduce && r.phase == "str")
            .collect();
        // 1 fused AllReduce (field + upwind packed) × 4 RK stages.
        assert_eq!(ar.len(), 4, "expected 4 fused str AllReduces, got {}", ar.len());
        assert!(ar.iter().all(|r| r.comm_label == "nv"));
        let a2a: Vec<_> = log
            .iter()
            .filter(|r| r.op == xg_comm::OpKind::AllToAll && r.phase == "coll")
            .collect();
        // Pipelined per-slice transpose: nt_loc = 2 slices × 2 directions.
        assert_eq!(a2a.len(), 4, "coll transpose there and back per slice");
        assert!(
            a2a.iter().all(|r| r.comm_label == "nv"),
            "CGYRO must reuse the nv communicator for the coll transpose"
        );
    }
}
