//! Acceptance tests for the fused / reduce-scatter / unfused str-phase
//! reduction layer: exactly one collective per RK stage when fused, bitwise
//! identity across all three algorithms (including ragged decompositions),
//! and bitwise identity of the pipelined collision exchange against the
//! blocked one.

use proptest::prelude::*;
use xg_comm::World;
use xg_linalg::Complex64;
use xg_sim::{CgyroInput, DistTopology, ResolvedReduceAlgo, Simulation};
use xg_tensor::{PhaseLayout, ProcGrid, Tensor3};

/// Run a distributed simulation with the str reduction algorithm pinned,
/// returning the reassembled global distribution.
fn run_with_algo(
    input: &CgyroInput,
    grid: ProcGrid,
    steps: usize,
    algo: ResolvedReduceAlgo,
) -> Tensor3<Complex64> {
    let dims = input.dims();
    let world = World::new(grid.size());
    let results = world.run(move |comm| {
        let mut topo = DistTopology::cgyro(input, grid, comm);
        topo.set_reduce_algo(algo);
        let layout = PhaseLayout::new(dims, grid, topo.sim_comm().rank());
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(steps);
        (layout.nv_range(), layout.nt_range(), sim.h().clone())
    });
    reassemble(dims, results)
}

/// Run with the collision pipeline forced on or off (algorithm left on the
/// default resolution), returning the reassembled global distribution.
fn run_with_pipeline(
    input: &CgyroInput,
    grid: ProcGrid,
    steps: usize,
    pipeline: bool,
) -> Tensor3<Complex64> {
    let dims = input.dims();
    let world = World::new(grid.size());
    let results = world.run(move |comm| {
        let mut topo = DistTopology::cgyro(input, grid, comm);
        topo.set_coll_pipeline(pipeline);
        let layout = PhaseLayout::new(dims, grid, topo.sim_comm().rank());
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(steps);
        (layout.nv_range(), layout.nt_range(), sim.h().clone())
    });
    reassemble(dims, results)
}

fn reassemble(
    dims: xg_tensor::SimDims,
    results: Vec<(
        std::ops::Range<usize>,
        std::ops::Range<usize>,
        Tensor3<Complex64>,
    )>,
) -> Tensor3<Complex64> {
    let mut global = Tensor3::new(dims.nc, dims.nv, dims.nt);
    for (nv_r, nt_r, h) in results {
        for ic in 0..dims.nc {
            for (ivl, iv) in nv_r.clone().enumerate() {
                for (itl, it) in nt_r.clone().enumerate() {
                    global[(ic, iv, it)] = h[(ic, ivl, itl)];
                }
            }
        }
    }
    global
}

#[test]
fn fused_electrostatic_runs_one_collective_per_rk_stage() {
    // Acceptance criterion: with the fused algorithm pinned, an
    // electrostatic step issues exactly ONE str-phase collective per RK
    // stage (4 stages), each carrying 2 packed moments (phi + upwind).
    let input = CgyroInput::test_small();
    assert_eq!(input.beta_e, 0.0, "test_small must be electrostatic");
    let grid = ProcGrid::new(2, 1);
    let world = World::new(grid.size());
    let out = world.run_with_logs(|comm| {
        let log = comm.log().clone();
        let mut topo = DistTopology::cgyro(&input, grid, comm);
        topo.set_reduce_algo(ResolvedReduceAlgo::Fused);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.step();
        (
            log.fused_reduction_stats(),
            log.unfused_reduction_stats(),
        )
    });
    for (((fused_calls, fused_moments, fused_bytes), (unfused_calls, _)), records) in out {
        let str_collectives: Vec<_> = records
            .iter()
            .filter(|r| r.phase == "str")
            .collect();
        assert_eq!(
            str_collectives.len(),
            4,
            "one fused collective per RK stage, got {}",
            str_collectives.len()
        );
        assert!(str_collectives
            .iter()
            .all(|r| r.op == xg_comm::OpKind::AllReduce));
        // The TrafficLog counters agree: 4 fused calls carrying 2 moments
        // each, and no unfused str reductions at all.
        assert_eq!(fused_calls, 4);
        assert_eq!(fused_moments, 8);
        assert!(fused_bytes > 0);
        assert_eq!(unfused_calls, 0, "no unfused reductions when fused");
    }
}

#[test]
fn fused_electromagnetic_packs_three_moments_per_stage() {
    let mut input = CgyroInput::test_small();
    input.beta_e = 0.004;
    let grid = ProcGrid::new(2, 1);
    let world = World::new(grid.size());
    let out = world.run_with_logs(|comm| {
        let log = comm.log().clone();
        let mut topo = DistTopology::cgyro(&input, grid, comm);
        topo.set_reduce_algo(ResolvedReduceAlgo::Fused);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.step();
        log.fused_reduction_stats()
    });
    for ((calls, moments, _), records) in out {
        let n = records.iter().filter(|r| r.phase == "str").count();
        assert_eq!(n, 4, "EM fusion still one collective per stage");
        assert_eq!(calls, 4);
        assert_eq!(moments, 12, "phi + apar + upwind packed per stage");
    }
}

#[test]
fn unfused_algo_issues_separate_collectives_and_counts_them() {
    let input = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 1);
    let world = World::new(grid.size());
    let out = world.run_with_logs(|comm| {
        let log = comm.log().clone();
        let mut topo = DistTopology::cgyro(&input, grid, comm);
        topo.set_reduce_algo(ResolvedReduceAlgo::Unfused);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.step();
        (log.fused_reduction_stats(), log.unfused_reduction_stats())
    });
    for (((fused_calls, _, _), (unfused_calls, unfused_bytes)), records) in out {
        let n = records.iter().filter(|r| r.phase == "str").count();
        assert_eq!(n, 8, "2 moments × 4 RK stages when unfused");
        assert_eq!(fused_calls, 0);
        assert_eq!(unfused_calls, 8);
        assert!(unfused_bytes > 0);
    }
}

#[test]
fn reduce_scatter_runs_scatter_then_gather_per_stage() {
    let input = CgyroInput::test_small();
    let grid = ProcGrid::new(3, 1);
    let world = World::new(grid.size());
    let out = world.run_with_logs(|comm| {
        let mut topo = DistTopology::cgyro(&input, grid, comm);
        topo.set_reduce_algo(ResolvedReduceAlgo::ReduceScatter);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.step();
    });
    for (_, records) in out {
        // reduce_scatter is logged as an AllReduce-family op; the gather
        // half shows up as an AllGather — one of each per RK stage.
        let rs = records
            .iter()
            .filter(|r| r.phase == "str" && r.op == xg_comm::OpKind::AllReduce)
            .count();
        let ag = records
            .iter()
            .filter(|r| r.phase == "str" && r.op == xg_comm::OpKind::AllGather)
            .count();
        assert_eq!(rs, 4, "one reduce-scatter per RK stage");
        assert_eq!(ag, 4, "one allgather per RK stage");
    }
}

#[test]
fn all_three_algorithms_are_bitwise_identical_on_ragged_grids() {
    // nv = 24 in test_small; n1 = 5 gives parts [5,5,5,5,4] — ragged.
    let mut input = CgyroInput::test_small();
    input.nonlinear_coupling = 0.2;
    for grid in [ProcGrid::new(2, 1), ProcGrid::new(5, 1), ProcGrid::new(3, 2)] {
        let fused = run_with_algo(&input, grid, 3, ResolvedReduceAlgo::Fused);
        let rs = run_with_algo(&input, grid, 3, ResolvedReduceAlgo::ReduceScatter);
        let unfused = run_with_algo(&input, grid, 3, ResolvedReduceAlgo::Unfused);
        assert_eq!(
            fused.as_slice(),
            rs.as_slice(),
            "fused vs reduce-scatter differ on grid {}x{}",
            grid.n1,
            grid.n2
        );
        assert_eq!(
            fused.as_slice(),
            unfused.as_slice(),
            "fused vs unfused differ on grid {}x{}",
            grid.n1,
            grid.n2
        );
    }
}

#[test]
fn electromagnetic_algorithms_are_bitwise_identical() {
    let mut input = CgyroInput::test_small();
    input.beta_e = 0.004;
    let grid = ProcGrid::new(5, 1);
    let fused = run_with_algo(&input, grid, 3, ResolvedReduceAlgo::Fused);
    let rs = run_with_algo(&input, grid, 3, ResolvedReduceAlgo::ReduceScatter);
    let unfused = run_with_algo(&input, grid, 3, ResolvedReduceAlgo::Unfused);
    assert_eq!(fused.as_slice(), rs.as_slice());
    assert_eq!(fused.as_slice(), unfused.as_slice());
}

#[test]
fn pipelined_collision_exchange_is_bitwise_identical_to_blocked() {
    // nt = 8 on a (2, 1) grid gives nt_loc = 8 slices to pipeline; the
    // FFT nonlinear bracket makes the state rich enough to catch any
    // mis-sliced pack/unpack.
    let mut input = CgyroInput::test_small();
    input.n_toroidal = 8;
    input.nonlinear_coupling = 0.15;
    let grid = ProcGrid::new(2, 1);
    let piped = run_with_pipeline(&input, grid, 3, true);
    let blocked = run_with_pipeline(&input, grid, 3, false);
    assert_eq!(piped.as_slice(), blocked.as_slice());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Acceptance criterion: fused, reduce-scatter, and unfused reductions
    /// are bitwise identical for arbitrary small decks across ragged
    /// decompositions.
    #[test]
    fn reduce_algos_bitwise_identical_for_any_deck(
        n_xi in 3usize..6,
        n_energy in 2usize..4,
        n_radial in 2usize..4,
        n1 in 2usize..6,
        em in 0usize..2,
        seed in 0u64..1000,
    ) {
        let em = em == 1;
        let mut input = CgyroInput::test_small();
        input.n_xi = n_xi;
        input.n_energy = n_energy;
        input.n_radial = n_radial;
        input.seed = seed;
        if em {
            input.beta_e = 0.003;
        }
        let grid = ProcGrid::new(n1, 1);
        let fused = run_with_algo(&input, grid, 2, ResolvedReduceAlgo::Fused);
        let rs = run_with_algo(&input, grid, 2, ResolvedReduceAlgo::ReduceScatter);
        let unfused = run_with_algo(&input, grid, 2, ResolvedReduceAlgo::Unfused);
        prop_assert_eq!(fused.as_slice(), rs.as_slice());
        prop_assert_eq!(fused.as_slice(), unfused.as_slice());
    }
}
