//! Properties of the batched collision pipeline: thread-count determinism
//! (multi-thread output bit-identical to single-thread, serial and
//! distributed) and persistent-buffer recycling in the dist transposes.

use xg_comm::World;
use xg_linalg::Complex64;
use xg_sim::{CgyroInput, DistTopology, SerialTopology, Simulation};
use xg_tensor::{ProcGrid, Tensor3};

fn run_serial_threads(input: &CgyroInput, steps: usize, threads: usize) -> Tensor3<Complex64> {
    let mut sim = Simulation::new(input.clone(), SerialTopology::with_threads(input, threads));
    sim.run_steps(steps);
    sim.h().clone()
}

/// Distributed CGYRO run with an explicit collision pool width; returns the
/// reassembled global str-layout state.
fn run_dist_threads(
    input: &CgyroInput,
    grid: ProcGrid,
    steps: usize,
    threads: usize,
) -> Tensor3<Complex64> {
    let dims = input.dims();
    let world = World::new(grid.size());
    let results = world.run(|comm| {
        let mut topo = DistTopology::cgyro(input, grid, comm);
        topo.set_threads(threads);
        let layout = xg_tensor::PhaseLayout::new(dims, grid, topo.sim_comm().rank());
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(steps);
        (layout.nv_range(), layout.nt_range(), sim.h().clone())
    });
    let mut global = Tensor3::new(dims.nc, dims.nv, dims.nt);
    for (nv_r, nt_r, h) in results {
        for ic in 0..dims.nc {
            for (ivl, iv) in nv_r.clone().enumerate() {
                for (itl, it) in nt_r.clone().enumerate() {
                    global[(ic, iv, it)] = h[(ic, ivl, itl)];
                }
            }
        }
    }
    global
}

#[test]
fn serial_output_is_bitwise_identical_across_thread_counts() {
    let input = CgyroInput::test_small();
    let reference = run_serial_threads(&input, 6, 1);
    for threads in [2usize, 3, 8] {
        let got = run_serial_threads(&input, 6, threads);
        assert_eq!(got.as_slice(), reference.as_slice(), "threads={threads}");
    }
}

#[test]
fn dist_output_is_bitwise_identical_across_thread_counts() {
    let input = CgyroInput::test_small();
    for grid in [ProcGrid::new(2, 1), ProcGrid::new(2, 2)] {
        let reference = run_dist_threads(&input, grid, 4, 1);
        for threads in [2usize, 4] {
            let got = run_dist_threads(&input, grid, 4, threads);
            assert_eq!(
                got.as_slice(),
                reference.as_slice(),
                "grid=({},{}) threads={threads}",
                grid.n1,
                grid.n2
            );
        }
    }
}

#[test]
fn threaded_serial_still_matches_untouched_physics() {
    // Not just self-consistency: the threaded profile-contiguous path must
    // equal the env-default constructor's output (the golden-regression
    // path) bit for bit.
    let input = CgyroInput::test_small();
    let mut default_sim = Simulation::new(input.clone(), SerialTopology::new(&input));
    default_sim.run_steps(5);
    let threaded = run_serial_threads(&input, 5, 4);
    assert_eq!(default_sim.h().as_slice(), threaded.as_slice());
}

#[test]
fn tile_granular_split_fills_every_pool_thread() {
    // The collision loop spawns one task per (pair, row-tile) — pairs ×
    // tiles, never fewer than the old pair-count split — and Decomp1D
    // hands every pool thread at least one task whenever tasks ≥ threads.
    // Together with the bitwise thread-count tests above this pins the S6
    // contract: full utilization without output drift.
    let input = CgyroInput::test_small();
    let dims = input.dims();
    for threads in [2usize, 8, 32] {
        let topo = SerialTopology::with_threads(&input, threads);
        assert_eq!(topo.threads(), threads);
        let kernel = topo.kernel_choice();
        assert!(kernel.tile_rows >= 1 && kernel.tile_rows <= dims.nv);
        let tiles = dims.nv.div_ceil(kernel.tile_rows);
        let n_tasks = dims.nc * dims.nt * tiles;
        assert!(n_tasks >= dims.nc * dims.nt, "tiling must not lose tasks");
        if n_tasks >= threads {
            let decomp = xg_tensor::Decomp1D::new(n_tasks, threads);
            for tid in 0..threads {
                assert!(
                    !decomp.range(tid).is_empty(),
                    "thread {tid}/{threads} would idle with {n_tasks} tasks"
                );
            }
        }
    }
}

#[test]
fn dist_collision_recycles_transpose_buffers() {
    // The drained-capacity counter must grow from the very first step (the
    // reverse transpose reuses the forward receive blocks) and keep
    // growing each step (steady-state ping-pong of all four block sets).
    let input = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 1);
    let world = World::new(grid.size());
    let counters = world.run(|comm| {
        let log = comm.log().clone();
        let topo = DistTopology::cgyro(&input, grid, comm);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.step();
        let after_one = log.drained_capacity_bytes();
        sim.step();
        let after_two = log.drained_capacity_bytes();
        sim.step();
        let after_three = log.drained_capacity_bytes();
        (after_one, after_two, after_three)
    });
    for (after_one, after_two, after_three) in counters {
        assert!(after_one > 0, "first step must already recycle forward recv blocks");
        assert!(after_two > after_one, "second step must recycle more capacity");
        // Steady state: each step recycles the same (positive) volume.
        assert_eq!(after_three - after_two, after_two - after_one);
    }
}
