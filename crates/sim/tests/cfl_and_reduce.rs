//! CFL monitoring and the root-reduce collective.

use xg_comm::World;
use xg_sim::{serial_simulation, CgyroInput, DistTopology, Simulation};
use xg_tensor::ProcGrid;

#[test]
fn cfl_estimate_consistent_serial_vs_distributed() {
    let input = CgyroInput::test_small();
    let serial_cfl = serial_simulation(&input).cfl_estimate();
    assert!(serial_cfl > 0.0 && serial_cfl.is_finite());

    let grid = ProcGrid::new(3, 1);
    let dist_cfls = World::new(grid.size()).run(|comm| {
        let topo = DistTopology::cgyro(&input, grid, comm);
        Simulation::new(input.clone(), topo).cfl_estimate()
    });
    for c in dist_cfls {
        assert!(
            (c - serial_cfl).abs() < 1e-12 * serial_cfl,
            "{c} vs {serial_cfl}"
        );
    }
}

#[test]
fn cfl_scales_with_timestep_and_resolution() {
    let base = CgyroInput::test_small();
    let c0 = serial_simulation(&base).cfl_estimate();
    let mut fast = base.clone();
    fast.delta_t *= 2.0;
    assert!((serial_simulation(&fast).cfl_estimate() - 2.0 * c0).abs() < 1e-12 * c0);
    let mut fine = base.clone();
    fine.n_theta *= 2;
    assert!(serial_simulation(&fine).cfl_estimate() > 1.5 * c0);
}

#[test]
fn reduce_sum_delivers_only_at_root() {
    let out = World::new(4).run(|c| {
        let buf = vec![c.rank() as f64 + 1.0, 10.0];
        c.reduce_sum_f64(2, &buf)
    });
    assert_eq!(out[2], vec![10.0, 40.0]);
    for (r, v) in out.iter().enumerate() {
        if r != 2 {
            assert!(v.is_empty());
        }
    }
}
