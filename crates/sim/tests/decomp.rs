//! Ragged coll decompositions are bitwise-neutral: an XGYRO ensemble run
//! with *any* valid unbalanced coll-phase `nc` split must produce output
//! bitwise-identical to the balanced run. Moving a cut point moves whole
//! `(ic, it)` collision matvecs between ranks — the transposes only move
//! data and every reduction keeps its communicator-rank order — so no sum
//! is reassociated anywhere. These tests drive the splits through the full
//! production path: dist transposes, fused str reductions, nl brackets and
//! the shared-coll exchange.

use proptest::prelude::*;
use xg_comm::World;
use xg_linalg::Complex64;
use xg_sim::{CgyroInput, DistTopology, Simulation};
use xg_tensor::{PhaseLayout, ProcGrid, RaggedDecomp, Tensor3};

/// Run a k-member ensemble on `grid` with the given coll cuts (`None` =
/// balanced), mirroring xgyro-core's Figure-3 communicator construction,
/// and return each member's reassembled global distribution.
fn run_ensemble(
    input: &CgyroInput,
    grid: ProcGrid,
    k: usize,
    cuts: Option<&[usize]>,
    steps: usize,
) -> Vec<Tensor3<Complex64>> {
    let dims = input.dims();
    let per_sim = grid.size();
    let world = World::new(k * per_sim);
    let results = world.run(|comm| {
        let sim_idx = comm.rank() / per_sim;
        let (i1, i2) = grid.coords(comm.rank() % per_sim);
        let sim_comm = comm.split(sim_idx as u64, grid.rank(i1, i2) as u64, "sim");
        let nv_comm = sim_comm.split(i2 as u64, i1 as u64, "nv");
        let nt_comm = sim_comm.split(i1 as u64, i2 as u64, "nt");
        let coll_comm =
            comm.split(i2 as u64, (sim_idx * grid.n1 + i1) as u64, "coll-ens");
        let topo = DistTopology::with_shared_coll_cuts(
            input, grid, sim_comm, nv_comm, nt_comm, coll_comm, k, cuts,
        );
        let layout = PhaseLayout::new(dims, grid, grid.rank(i1, i2));
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(steps);
        (sim_idx, layout.nv_range(), layout.nt_range(), sim.h().clone())
    });
    let mut members = vec![Tensor3::new(dims.nc, dims.nv, dims.nt); k];
    for (s, nv_r, nt_r, h) in results {
        for ic in 0..dims.nc {
            for (ivl, iv) in nv_r.clone().enumerate() {
                for (itl, it) in nt_r.clone().enumerate() {
                    members[s][(ic, iv, it)] = h[(ic, ivl, itl)];
                }
            }
        }
    }
    members
}

/// A deck that exercises every phase hard: nonlinear transposes on, finite
/// collisionality, fused str reductions.
fn deck() -> CgyroInput {
    let mut input = CgyroInput::test_small();
    input.nonlinear_coupling = 0.2;
    input
}

fn assert_bitwise_eq(a: &[Tensor3<Complex64>], b: &[Tensor3<Complex64>], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.as_slice(), y.as_slice(), "member {i} diverged under {what}");
    }
}

#[test]
fn handpicked_unbalanced_cuts_match_balanced_bitwise() {
    let input = deck();
    let nc = input.dims().nc; // 32
    let grid = ProcGrid::new(2, 2);
    let k = 2; // 4 coll positions
    let balanced = run_ensemble(&input, grid, k, None, 4);
    for cuts in [
        vec![10, 10, 6, 6],
        vec![16, 16, 0, 0], // empty positions are legal
        vec![1, 2, 3, 26],  // extreme skew
        vec![8, 8, 8, 8],   // explicitly-balanced cuts
    ] {
        assert_eq!(cuts.iter().sum::<usize>(), nc);
        let ragged = run_ensemble(&input, grid, k, Some(&cuts), 4);
        assert_bitwise_eq(&balanced, &ragged, &format!("cuts {cuts:?}"));
    }
}

#[test]
fn capacity_weighted_cuts_match_balanced_bitwise() {
    // The planner's own apportionment rule (a half-speed straggler
    // position), straight through the production path.
    let input = deck();
    let nc = input.dims().nc;
    let grid = ProcGrid::new(2, 1);
    let k = 2;
    let cuts = RaggedDecomp::weighted(nc, &[1.0, 1.0, 1.0, 0.5]).counts();
    assert!(cuts[3] < cuts[0], "straggler must shed rows");
    let balanced = run_ensemble(&input, grid, k, None, 4);
    let ragged = run_ensemble(&input, grid, k, Some(&cuts), 4);
    assert_bitwise_eq(&balanced, &ragged, "weighted cuts");
}

#[test]
fn electromagnetic_run_is_cut_invariant() {
    // beta_e > 0 adds the third fused str section (Ampère's law); the cuts
    // must stay neutral with it in the reduction.
    let mut input = deck();
    input.beta_e = 0.01;
    let grid = ProcGrid::new(2, 2);
    let balanced = run_ensemble(&input, grid, 2, None, 3);
    let ragged = run_ensemble(&input, grid, 2, Some(&[13, 5, 9, 5]), 3);
    assert_bitwise_eq(&balanced, &ragged, "electromagnetic cuts");
}

/// An arbitrary composition of `total` into `parts` counts: `parts - 1`
/// sorted cut points in `[0, total]`.
fn composition(total: usize, parts: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..total + 1, parts - 1).prop_map(move |mut points| {
        points.sort_unstable();
        let mut cuts = Vec::with_capacity(parts);
        let mut prev = 0;
        for p in points {
            cuts.push(p - prev);
            prev = p;
        }
        cuts.push(total - prev);
        cuts
    })
}

proptest! {
    // Each case runs two full multi-threaded ensembles; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any ragged row assignment — including empty positions — through the
    /// dist transposes and fused str reductions is bitwise-identical to
    /// the balanced split.
    #[test]
    fn arbitrary_ragged_assignment_is_bitwise_neutral(
        cuts in composition(32, 4),
        n2 in 1usize..3,
    ) {
        let input = deck();
        prop_assert_eq!(input.dims().nc, 32);
        let grid = ProcGrid::new(2, n2);
        let k = 2; // k * n1 = 4 coll positions
        let balanced = run_ensemble(&input, grid, k, None, 3);
        let ragged = run_ensemble(&input, grid, k, Some(&cuts), 3);
        for (b, r) in balanced.iter().zip(&ragged) {
            prop_assert_eq!(b.as_slice(), r.as_slice());
        }
    }
}
