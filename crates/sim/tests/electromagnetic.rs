//! Electromagnetic (A∥) extension tests: the electrostatic limit is
//! preserved exactly, finite-β runs are stable and genuinely different,
//! the communication pattern gains the Ampère AllReduce family, and the
//! distributed path stays equivalent to serial.

use xg_comm::{OpKind, World};
use xg_linalg::norms::max_deviation;
use xg_sim::{serial_simulation, CgyroInput, DistTopology, Simulation};
use xg_tensor::ProcGrid;

fn em_deck(beta: f64) -> CgyroInput {
    let mut input = CgyroInput::test_small();
    input.beta_e = beta;
    input
}

#[test]
fn zero_beta_is_bitwise_electrostatic() {
    // beta_e = 0 must take exactly the electrostatic code path.
    let mut es = serial_simulation(&CgyroInput::test_small());
    let mut em0 = serial_simulation(&em_deck(0.0));
    es.run_steps(5);
    em0.run_steps(5);
    assert_eq!(es.h().as_slice(), em0.h().as_slice());
}

#[test]
fn finite_beta_changes_dynamics_and_stays_stable() {
    let mut es = serial_simulation(&em_deck(0.0));
    let mut em = serial_simulation(&em_deck(0.01));
    es.run_steps(10);
    em.run_steps(10);
    assert_ne!(es.h().as_slice(), em.h().as_slice(), "beta must matter");
    let d = em.diagnostics();
    assert!(d.field_energy.is_finite() && d.h_norm2.is_finite());
    assert!(d.h_norm2 < 1.0, "EM run must stay bounded");
}

#[test]
fn beta_scan_shares_cmat_key() {
    let a = em_deck(0.0);
    let b = em_deck(0.005);
    let c = em_deck(0.02);
    assert_eq!(a.cmat_key(), b.cmat_key());
    assert_eq!(b.cmat_key(), c.cmat_key());
}

#[test]
fn em_run_adds_one_allreduce_family_per_stage() {
    let grid = ProcGrid::new(2, 1);
    let count_str_ar = |input: &CgyroInput| {
        let out = World::new(grid.size()).run_with_logs(|comm| {
            let topo = DistTopology::cgyro(input, grid, comm);
            let mut sim = Simulation::new(input.clone(), topo);
            sim.step();
        });
        out[0]
            .1
            .iter()
            .filter(|r| r.op == OpKind::AllReduce && r.phase == "str")
            .count()
    };
    let es = count_str_ar(&em_deck(0.0));
    let em = count_str_ar(&em_deck(0.01));
    assert_eq!(es, 4, "electrostatic: one fused (field + upwind) collective x 4 stages");
    assert_eq!(em, 4, "electromagnetic: one fused (field + current + upwind) collective x 4 stages");
}

#[test]
fn em_distributed_matches_serial() {
    let input = em_deck(0.02);
    let mut serial = serial_simulation(&input);
    serial.run_steps(4);
    let dims = input.dims();
    let grid = ProcGrid::new(2, 2);
    let shards = World::new(grid.size()).run(|comm| {
        let rank = comm.rank();
        let topo = DistTopology::cgyro(&input, grid, comm);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(4);
        (xg_tensor::PhaseLayout::new(dims, grid, rank), sim.h().clone())
    });
    let mut global = xg_tensor::Tensor3::new(dims.nc, dims.nv, dims.nt);
    for (layout, h) in shards {
        for ic in 0..dims.nc {
            for (ivl, iv) in layout.nv_range().enumerate() {
                for (itl, it) in layout.nt_range().enumerate() {
                    global[(ic, iv, it)] = h[(ic, ivl, itl)];
                }
            }
        }
    }
    let dev = max_deviation(serial.h().as_slice(), global.as_slice());
    assert!(dev < 1e-12, "EM distributed deviation {dev}");
}


#[test]
fn current_moment_is_odd_parity_for_even_h() {
    // An h even in v∥ carries no parallel current: A∥ solve must return 0.
    use xg_sim::field::FieldSolver;
    use xg_sim::geometry::Geometry;
    use xg_sim::grid::{ConfigGrid, VelocityGrid};
    use xg_linalg::Complex64;

    let input = em_deck(0.01);
    let v = VelocityGrid::new(&input);
    let cfg = ConfigGrid::new(&input);
    let geo = Geometry::new(&input, &cfg);
    let fs = FieldSolver::new(&input, &v, &cfg, &geo, 0..v.nv(), 0..input.n_toroidal);
    assert!(fs.em_enabled());
    // h depends only on (species, energy) — even in pitch.
    let h = xg_tensor::Tensor3::from_fn(cfg.nc(), v.nv(), input.n_toroidal, |_, iv, _| {
        let (is, ie, _) = v.unflatten(iv);
        Complex64::new((is + ie) as f64 + 1.0, 0.5)
    });
    let mut cur = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
    fs.partial_current(&h, &mut cur);
    for z in &cur {
        assert!(z.abs() < 1e-10, "even-parity h must carry no current: {z}");
    }
}
