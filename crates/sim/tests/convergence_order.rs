//! Order-of-accuracy verification (manufactured solution).
//!
//! With collisions, drive, drift, nonlinearity and upwind dissipation all
//! switched off, the model reduces to pure parallel advection per velocity
//! point: `∂h/∂t = −(v_∥/q)·∂θ h`, whose exact solution for a single
//! poloidal harmonic is a rotating phase,
//! `h(θ, t) = A·e^{imθ}·e^{−i m (v_∥/q) t}`. The spatial stencil is
//! 4th-order centered and the integrator is RK4, so halving Δθ (at fixed,
//! tiny Δt) must cut the error by ~2⁴.

use xg_linalg::Complex64;
use xg_sim::{serial_simulation, CgyroInput};

/// Run pure advection of harmonic `m` on `n_theta` points to `t_end`;
/// return the max error against the exact solution.
fn advection_error(n_theta: usize, m: f64, t_end: f64) -> f64 {
    let mut input = CgyroInput::test_small();
    input.n_radial = 1;
    input.n_theta = n_theta;
    input.n_toroidal = 1;
    input.n_xi = 2;
    input.n_energy = 2;
    input.nu_ee = 0.0; // no collisions
    input.nonlinear_coupling = 0.0; // no bracket
    input.upwind_diss = 0.0; // pure centered stencil
    input.ky_min = 1e-12; // suppress drift and drive (both ∝ ky)
    input.kx_min = 0.0;
    input.shear = 0.0;
    for s in &mut input.species {
        s.rln = 0.0;
        s.rlt = 0.0;
    }
    // Small Δt so the temporal error is negligible next to spatial.
    input.delta_t = 1e-3;
    input.steps_per_report = 1;

    let mut sim = serial_simulation(&input);
    // Overwrite the IC with the harmonic using the restart hook.
    let cfg = xg_sim::grid::ConfigGrid::new(&input);
    let v = xg_sim::grid::VelocityGrid::new(&input);
    let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
    let nv = v.nv();
    let nc = cfg.nc();
    let amp = 1e-3;
    let mut h0 = vec![Complex64::ZERO; nc * nv];
    for ic in 0..nc {
        let theta = cfg.theta[ic % input.n_theta];
        for iv in 0..nv {
            h0[ic * nv + iv] = Complex64::cis(m * theta).scale(amp);
        }
    }
    sim.restore_state(&h0, 0.0, 0);

    let steps = (t_end / input.delta_t).round() as usize;
    sim.run_steps(steps);
    let t = sim.time();

    let mut err = 0.0f64;
    for ic in 0..nc {
        let theta = cfg.theta[ic % input.n_theta];
        for iv in 0..nv {
            let speed = v.v_par(iv, &masses) / input.q;
            let exact = Complex64::cis(m * (theta - speed * t)).scale(amp);
            let got = sim.h()[(ic, iv, 0)];
            err = err.max((got - exact).abs());
        }
    }
    err / amp
}

#[test]
fn streaming_is_fourth_order_accurate() {
    let m = 2.0;
    let t_end = 0.2;
    let e1 = advection_error(16, m, t_end);
    let e2 = advection_error(32, m, t_end);
    let e3 = advection_error(64, m, t_end);
    let order12 = (e1 / e2).log2();
    let order23 = (e2 / e3).log2();
    // 4th-order stencil: observed order in [3.5, 4.5] until roundoff.
    assert!(
        (3.3..4.7).contains(&order12),
        "observed order {order12:.2} (errors {e1:.3e} -> {e2:.3e})"
    );
    assert!(
        (3.0..4.7).contains(&order23) || e3 < 1e-10,
        "observed order {order23:.2} (errors {e2:.3e} -> {e3:.3e})"
    );
}

#[test]
fn advection_preserves_amplitude_without_dissipation() {
    // The centered stencil is non-dissipative: the phase error grows with
    // the fastest (electron) parallel speeds, but the amplitude must be
    // conserved far more tightly than the total error. (Electron thermal
    // speed is ~60x the ion one, so the total error here is phase-
    // dominated at ~1.5e-3 while |h| drifts by < 1e-4.)
    let e = advection_error(32, 1.0, 0.5);
    assert!(e < 5e-3, "total (phase) error unexpectedly large: {e}");
}
