//! Flux-tube geometry factors (s–α-like circular equilibrium).
//!
//! These supply the configuration dependence of the physics coefficients:
//! the perpendicular wavenumber `k⊥²(ic, n)` entering both the gyroaverage
//! and the classical-diffusion part of the collision operator (which is why
//! `cmat` has configuration and toroidal indices at all), the curvature
//! drift weight, and the parallel streaming metric.

use crate::grid::ConfigGrid;
use crate::input::CgyroInput;

/// Precomputed geometry tables on the configuration grid.
#[derive(Clone, Debug)]
pub struct Geometry {
    /// Safety factor.
    pub q: f64,
    /// Magnetic shear.
    pub shear: f64,
    /// `k⊥²` per `(ic, itor)`, flattened `ic·nt + itor`.
    kperp2: Vec<f64>,
    /// Curvature-drift weight per `ic`.
    drift: Vec<f64>,
    /// Parallel metric `1/(qR)` per `ic` (constant here, kept per-point for
    /// generality).
    bpar: Vec<f64>,
    nt: usize,
}

impl Geometry {
    /// Build geometry tables for an input deck.
    pub fn new(input: &CgyroInput, cfg: &ConfigGrid) -> Self {
        let nt = input.n_toroidal;
        let ky = crate::grid::ky_modes(input);
        let mut kperp2 = Vec::with_capacity(cfg.nc() * nt);
        let mut drift = Vec::with_capacity(cfg.nc());
        let mut bpar = Vec::with_capacity(cfg.nc());
        // Miller-like shaping: elongation compresses the poloidal
        // wavenumber at the midplane and stretches it at the top/bottom;
        // triangularity shifts the poloidal angle (θ + arcsin(δ)·sin θ).
        let sd = input.delta.clamp(-0.999, 0.999).asin();
        for ic in 0..cfg.nc() {
            let (ir, ith) = cfg.unflatten(ic);
            let theta = cfg.theta[ith];
            let theta_s = theta + sd * theta.sin();
            let shape = 1.0 + (input.kappa - 1.0) * 0.5 * (1.0 - theta_s.cos());
            let kx = cfg.kx[ir];
            // s–α + shaping: k⊥² = kx_eff² + (ky·g(θ))².
            for kyn in ky.iter().take(nt) {
                let kx_eff = kx + input.shear * theta_s * kyn;
                let ky_eff = kyn * shape;
                kperp2.push(kx_eff * kx_eff + ky_eff * ky_eff);
            }
            // Curvature + ∇B drift weight at the shaped angle.
            drift.push(theta_s.cos() + input.shear * theta_s * theta_s.sin());
            bpar.push(1.0 / input.q.max(1e-6));
        }
        Self { q: input.q, shear: input.shear, kperp2, drift, bpar, nt }
    }

    /// `k⊥²` at `(ic, itor)`.
    #[inline]
    pub fn kperp2(&self, ic: usize, itor: usize) -> f64 {
        self.kperp2[ic * self.nt + itor]
    }

    /// Curvature-drift weight at `ic`.
    #[inline]
    pub fn drift(&self, ic: usize) -> f64 {
        self.drift[ic]
    }

    /// Parallel streaming metric at `ic`.
    #[inline]
    pub fn parallel_metric(&self, ic: usize) -> f64 {
        self.bpar[ic]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CgyroInput, ConfigGrid, Geometry) {
        let input = CgyroInput::test_medium();
        let cfg = ConfigGrid::new(&input);
        let geo = Geometry::new(&input, &cfg);
        (input, cfg, geo)
    }

    #[test]
    fn kperp2_positive_and_grows_with_n() {
        let (input, cfg, geo) = setup();
        for ic in 0..cfg.nc() {
            for n in 0..input.n_toroidal {
                assert!(geo.kperp2(ic, n) > 0.0);
            }
            // At theta = -pi (first point of each field line) higher toroidal
            // modes have larger ky^2 contribution for kx = 0.
            let (ir, _) = cfg.unflatten(ic);
            if cfg.kx[ir] == 0.0 {
                for n in 1..input.n_toroidal {
                    assert!(geo.kperp2(ic, n) > geo.kperp2(ic, n - 1));
                }
            }
        }
    }

    #[test]
    fn drift_weight_is_unity_at_outboard_midplane() {
        let (_, cfg, geo) = setup();
        // theta = 0 exists in the grid (n_theta even, theta[n/2] = 0).
        let ith0 = cfg.n_theta / 2;
        assert!((cfg.theta[ith0]).abs() < 1e-12);
        let ic = cfg.flatten(0, ith0);
        assert!((geo.drift(ic) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shear_couples_theta_into_kperp() {
        let (input, cfg, _) = setup();
        let mut sheared = input.clone();
        sheared.shear = 3.0;
        let geo_hi = Geometry::new(&sheared, &cfg);
        let mut unsheared = input.clone();
        unsheared.shear = 0.0;
        let geo_lo = Geometry::new(&unsheared, &cfg);
        // Away from theta=0, kx=0: higher shear -> larger kperp2.
        let ic = cfg.flatten(0, 1);
        assert!(geo_hi.kperp2(ic, 0) > geo_lo.kperp2(ic, 0));
        // Without shear, kperp2 is theta-independent at kx = 0.
        let a = geo_lo.kperp2(cfg.flatten(0, 1), 0);
        let b = geo_lo.kperp2(cfg.flatten(0, 3), 0);
        assert!((a - b).abs() < 1e-14);
    }

    #[test]
    fn circular_limit_matches_unshaped_geometry() {
        // kappa = 1, delta = 0 must reproduce the unshaped formulas exactly
        // (theta_s = theta, shape factor = 1).
        let (input, cfg, geo) = setup();
        assert_eq!(input.kappa, 1.0);
        assert_eq!(input.delta, 0.0);
        let ic = cfg.flatten(1, 3);
        let theta = cfg.theta[3];
        let kx = cfg.kx[1];
        let ky = crate::grid::ky_modes(&input);
        let kx_eff = kx + input.shear * theta * ky[0];
        assert!((geo.kperp2(ic, 0) - (kx_eff * kx_eff + ky[0] * ky[0])).abs() < 1e-14);
    }

    #[test]
    fn elongation_reduces_midplane_kperp_growth() {
        // At theta=0 the shape factor is 1 regardless of kappa (midplane),
        // while off-midplane kappa > 1 increases ky_eff.
        let (input, cfg, _) = setup();
        let mut shaped = input.clone();
        shaped.kappa = 2.0;
        let geo_c = Geometry::new(&input, &cfg);
        let geo_s = Geometry::new(&shaped, &cfg);
        let ith0 = cfg.n_theta / 2; // theta = 0
        let ic0 = cfg.flatten(0, ith0);
        assert!((geo_c.kperp2(ic0, 0) - geo_s.kperp2(ic0, 0)).abs() < 1e-14);
        let ic_top = cfg.flatten(0, 0); // theta = -pi
        assert!(geo_s.kperp2(ic_top, 0) > geo_c.kperp2(ic_top, 0));
    }

    #[test]
    fn triangularity_shifts_the_drift_pattern() {
        let (input, cfg, _) = setup();
        let mut shaped = input.clone();
        shaped.delta = 0.4;
        let geo_c = Geometry::new(&input, &cfg);
        let geo_s = Geometry::new(&shaped, &cfg);
        // Some off-midplane point must differ.
        let ic = cfg.flatten(0, 1);
        assert_ne!(geo_c.drift(ic), geo_s.drift(ic));
    }

    #[test]
    fn parallel_metric_uses_safety_factor() {
        let (input, _cfg, geo) = setup();
        assert!((geo.parallel_metric(0) - 1.0 / input.q).abs() < 1e-14);
    }
}
