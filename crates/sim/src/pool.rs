//! Persistent worker pool for the collision panel loop.
//!
//! The collision apply is embarrassingly parallel over `(ic, it)` pairs:
//! every pair owns a disjoint slice of the profile-contiguous coll tensor
//! and reads a disjoint `cmat` panel. A [`StepPool`] keeps `threads − 1`
//! workers parked on channels across steps (no per-step spawn cost, unlike
//! the vendored `crossbeam::thread::scope`, which spawns fresh OS threads
//! every call) and fans the pair loop out over them.
//!
//! **Determinism:** work is partitioned by *chunk index*, each output chunk
//! is written by exactly one thread, and the per-chunk computation never
//! reads another chunk's output — so results are bitwise identical for any
//! thread count, which the topology tests assert against the single-thread
//! path.
//!
//! Pool width comes from the `XGYRO_THREADS` environment variable (default
//! 1). At width 1 no threads are spawned and [`StepPool::run`] degenerates
//! to a plain inline call — the serial fallback.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;
use xg_tensor::Decomp1D;

/// A raw mutable pointer that may cross thread boundaries, for task loops
/// whose tasks write provably disjoint regions of one output buffer (the
/// tile-granular collision loop: each `(panel, row-tile)` task writes a
/// strided but disjoint set of output elements, so no safe split into
/// contiguous `&mut` chunks exists).
///
/// # Safety contract (on the user, not the type)
/// Concurrent tasks must never write overlapping elements, and the
/// pointee must outlive the (blocking) task round.
#[derive(Clone, Copy)]
pub struct SendPtr<T>(pub *mut T);

// SAFETY: sending the raw pointer is safe; dereferencing it is the unsafe
// act, guarded at each use site by the disjoint-write argument above.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer offset by `count` elements. Tasks must go
    /// through the wrapper rather than the `.0` field: edition-2021
    /// closures capture disjoint fields, and capturing the bare raw
    /// pointer would strip the `Send + Sync` wrapper.
    ///
    /// # Safety
    /// Same contract as [`pointer::add`]: the offset must stay within one
    /// allocation.
    pub unsafe fn add(self, count: usize) -> *mut T {
        self.0.add(count)
    }
}

/// Environment variable selecting the stepping-pool width.
pub const THREADS_ENV: &str = "XGYRO_THREADS";

/// A task handed to one worker: the lifetime-erased loop body plus the
/// completion channel for this round. The body reference is only valid
/// until the round's completion message is sent (see safety note in
/// [`StepPool::run`]).
type Task = (&'static (dyn Fn(usize) + Sync), Sender<std::thread::Result<()>>);

struct Worker {
    tx: Sender<Task>,
    handle: Option<JoinHandle<()>>,
}

/// Persistent thread pool for deterministic data-parallel stepping loops.
pub struct StepPool {
    workers: Vec<Worker>,
}

impl StepPool {
    /// Pool of `threads` total participants (the calling thread plus
    /// `threads − 1` spawned workers). `threads == 0` is treated as 1.
    pub fn new(threads: usize) -> Self {
        let workers = (1..threads.max(1))
            .map(|tid| {
                let (tx, rx) = channel::<Task>();
                let handle = std::thread::Builder::new()
                    .name(format!("xgyro-step-{tid}"))
                    .spawn(move || {
                        while let Ok((f, done)) = rx.recv() {
                            let r = catch_unwind(AssertUnwindSafe(|| f(tid)));
                            // Receiver gone means the round was abandoned
                            // (pool dropped mid-panic); just park again.
                            let _ = done.send(r);
                        }
                    })
                    .expect("failed to spawn stepping worker");
                Worker { tx, handle: Some(handle) }
            })
            .collect();
        Self { workers }
    }

    /// Pool sized from `XGYRO_THREADS` (default 1 — serial fallback).
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Self::new(threads)
    }

    /// Total participants (calling thread + workers).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Run `f(tid)` once per participant (`tid ∈ 0..threads()`), with
    /// `f(0)` on the calling thread. Blocks until every participant is
    /// done; a panic in any participant is re-raised here after all others
    /// finish.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() {
            f(0);
            return;
        }
        // SAFETY: the erased 'static lifetime never outlives this call —
        // each worker uses the reference only before sending its completion
        // message, and we do not return (or unwind) before collecting one
        // message per worker.
        let f_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let (done_tx, done_rx) = channel();
        for w in &self.workers {
            w.tx.send((f_static, done_tx.clone())).expect("stepping worker died");
        }
        let mut first_panic = catch_unwind(AssertUnwindSafe(|| f(0))).err();
        for _ in &self.workers {
            if let Err(p) = done_rx.recv().expect("stepping worker died") {
                first_panic.get_or_insert(p);
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
    }

    /// Split `data` into `data.len() / chunk` contiguous chunks and run
    /// `f(chunk_index, chunk)` for every chunk, statically partitioned
    /// across the pool in index order ([`Decomp1D`] blocks). Each chunk is
    /// visited by exactly one thread, so the result is independent of the
    /// pool width. `data.len()` must be a multiple of `chunk`.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        assert_eq!(data.len() % chunk, 0, "data length must be a multiple of the chunk size");
        let n_chunks = data.len() / chunk;
        if n_chunks == 0 {
            return;
        }
        let decomp = Decomp1D::new(n_chunks, self.threads());
        let base = data.as_mut_ptr() as usize;
        self.run(&|tid| {
            for c in decomp.range(tid) {
                // SAFETY: chunks are disjoint (`Decomp1D` ranges partition
                // 0..n_chunks and chunks tile `data`), each visited by
                // exactly one participant, and `data` is mutably borrowed
                // for the whole (blocking) round.
                let chunk_slice = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(c * chunk), chunk)
                };
                f(c, chunk_slice);
            }
        });
    }

    /// Run `f(task)` once for every task index in `0..n_tasks`, statically
    /// partitioned across the pool in index order ([`Decomp1D`] blocks).
    ///
    /// This is the tile-granular work distribution for the collision loop:
    /// a task is one `(panel, row-tile)` rather than one whole `(ic, it)`
    /// pair, so a step with fewer pairs than threads no longer strands the
    /// extra threads — [`Decomp1D`] hands every participant at least one
    /// task whenever `n_tasks ≥ threads()`. Each task runs on exactly one
    /// participant and the assignment depends only on `n_tasks` and the
    /// pool width, so any output written disjointly per task is bitwise
    /// independent of the width.
    pub fn for_each_task<F>(&self, n_tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n_tasks == 0 {
            return;
        }
        let decomp = Decomp1D::new(n_tasks, self.threads());
        self.run(&|tid| {
            for t in decomp.range(tid) {
                f(t);
            }
        });
    }
}

impl Drop for StepPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Closing the channel ends the worker loop.
            let (dead_tx, _) = channel::<Task>();
            let _ = std::mem::replace(&mut w.tx, dead_tx);
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_inline() {
        let pool = StepPool::new(1);
        assert_eq!(pool.threads(), 1);
        let main_id = std::thread::current().id();
        pool.run(&|tid| {
            assert_eq!(tid, 0);
            assert_eq!(std::thread::current().id(), main_id);
        });
    }

    #[test]
    fn every_participant_runs_once() {
        for threads in [1, 2, 3, 7] {
            let pool = StepPool::new(threads);
            let hits = AtomicUsize::new(0);
            pool.run(&|_tid| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), threads);
        }
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let pool = StepPool::new(4);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.run(&|tid| {
                sum.fetch_add(tid + round, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 6 + 4 * round);
        }
    }

    #[test]
    fn chunks_cover_data_exactly_once_for_any_width() {
        let n_chunks = 13;
        let chunk = 5;
        for threads in [1, 2, 3, 8, 32] {
            let pool = StepPool::new(threads);
            let mut data = vec![0u64; n_chunks * chunk];
            pool.for_each_chunk(&mut data, chunk, |c, s| {
                for (i, v) in s.iter_mut().enumerate() {
                    *v += (c * 100 + i) as u64;
                }
            });
            for c in 0..n_chunks {
                for i in 0..chunk {
                    assert_eq!(data[c * chunk + i], (c * 100 + i) as u64);
                }
            }
        }
    }

    #[test]
    fn empty_data_is_a_noop() {
        let pool = StepPool::new(3);
        let mut data: Vec<u8> = Vec::new();
        pool.for_each_chunk(&mut data, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = StepPool::new(3);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|tid| {
                if tid == 1 {
                    panic!("boom from worker");
                }
            });
        }));
        assert!(r.is_err());
        // The pool survives a panicked round.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = StepPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn tasks_run_exactly_once_for_any_width() {
        for threads in [1, 2, 3, 8] {
            for n_tasks in [0usize, 1, 5, 13, 64] {
                let pool = StepPool::new(threads);
                let hits: Vec<AtomicUsize> = (0..n_tasks).map(|_| AtomicUsize::new(0)).collect();
                pool.for_each_task(n_tasks, |t| {
                    hits[t].fetch_add(1, Ordering::SeqCst);
                });
                for (t, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::SeqCst), 1, "task {t} at width {threads}");
                }
            }
        }
    }

    #[test]
    fn tile_granular_tasks_utilize_every_thread() {
        // The regression this distribution fixes: 2 pairs × 4 row tiles on
        // a 4-wide pool. A per-pair chunk split strands two threads; the
        // tile-granular split hands every participant work.
        let (pairs, tiles, threads) = (2usize, 4usize, 4usize);
        let pool = StepPool::new(threads);
        let seen: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
        let decomp = Decomp1D::new(pairs * tiles, threads);
        pool.for_each_task(pairs * tiles, |t| {
            seen[decomp.owner(t)].fetch_add(1, Ordering::SeqCst);
        });
        for (tid, s) in seen.iter().enumerate() {
            assert!(s.load(Ordering::SeqCst) >= 1, "thread {tid} stranded");
        }
        // And in general: n_tasks >= threads ⇒ every participant owns work.
        for threads in [2usize, 3, 5, 8] {
            for n_tasks in threads..threads * 3 {
                let d = Decomp1D::new(n_tasks, threads);
                for tid in 0..threads {
                    assert!(!d.range(tid).is_empty(), "{n_tasks} tasks, width {threads}");
                }
            }
        }
    }
}
