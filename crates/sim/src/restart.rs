//! Checkpoint/restart: serialize a simulation's evolving state to a
//! versioned binary image and resume it exactly.
//!
//! Production gyrokinetic campaigns run for days and restart constantly;
//! a reproduction claiming bitwise determinism needs restart to preserve
//! it. Only the evolving state (`h`, time, step counter) plus an identity
//! fingerprint of the deck are stored — `cmat` and all coefficient tables
//! are reconstructed from the deck on load, exactly as CGYRO does.

use crate::input::CgyroInput;
use crate::stepper::{Simulation, Topology};
use xg_linalg::Complex64;

const MAGIC: u32 = 0x5847_5952; // "XGYR"
const VERSION: u32 = 1;

/// A restart-file problem.
#[derive(Debug, Clone, PartialEq)]
pub enum RestartError {
    /// Not a restart image / wrong magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Image was written by a different deck (cmat key or dims mismatch).
    DeckMismatch {
        /// Expected (current deck).
        expected: u64,
        /// Found in the image.
        found: u64,
    },
    /// Truncated or padded image.
    BadLength {
        /// Bytes expected.
        expected: usize,
        /// Bytes present.
        found: usize,
    },
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::BadMagic => write!(f, "not an xgyro restart image"),
            RestartError::BadVersion(v) => write!(f, "unsupported restart version {v}"),
            RestartError::DeckMismatch { expected, found } => write!(
                f,
                "restart written by a different deck (key {found:#x}, expected {expected:#x})"
            ),
            RestartError::BadLength { expected, found } => {
                write!(f, "restart image truncated: {found} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RestartError {}

/// In-memory restart image of one rank's (or the serial run's) state.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartImage {
    deck_key: u64,
    time: f64,
    steps_taken: u64,
    shape: (u32, u32, u32),
    h: Vec<Complex64>,
}

/// Identity fingerprint of the full deck (not just the cmat subset): a
/// restart must only resume the exact same simulation.
fn deck_fingerprint(input: &CgyroInput) -> u64 {
    // cmat key covers physics identity; fold in the sweep parameters and
    // seed which the cmat key deliberately ignores.
    let mut h = input.cmat_key();
    let mut mix = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x100000001b3);
    };
    for s in &input.species {
        mix(s.rln.to_bits());
        mix(s.rlt.to_bits());
    }
    mix(input.nonlinear_coupling.to_bits());
    mix(input.upwind_diss.to_bits());
    mix(input.seed);
    h
}

impl RestartImage {
    /// Capture the current state of a simulation.
    pub fn capture<T: Topology>(sim: &Simulation<T>) -> Self {
        let (a, b, c) = sim.h().shape();
        Self {
            deck_key: deck_fingerprint(sim.input()),
            time: sim.time(),
            steps_taken: sim.steps_taken(),
            shape: (a as u32, b as u32, c as u32),
            h: sim.h().as_slice().to_vec(),
        }
    }

    /// Simulation time stored in the image.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Step count stored in the image.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Restore into a freshly constructed simulation of the same deck and
    /// layout. Fails if the deck or local shape does not match.
    pub fn restore<T: Topology>(&self, sim: &mut Simulation<T>) -> Result<(), RestartError> {
        let expected = deck_fingerprint(sim.input());
        if expected != self.deck_key {
            return Err(RestartError::DeckMismatch { expected, found: self.deck_key });
        }
        let (a, b, c) = sim.h().shape();
        if (a as u32, b as u32, c as u32) != self.shape {
            return Err(RestartError::BadLength {
                expected: a * b * c * 16,
                found: self.h.len() * 16,
            });
        }
        sim.restore_state(&self.h, self.time, self.steps_taken);
        Ok(())
    }

    /// Serialize to a little-endian byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.h.len() * 16);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.deck_key.to_le_bytes());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.steps_taken.to_le_bytes());
        out.extend_from_slice(&self.shape.0.to_le_bytes());
        out.extend_from_slice(&self.shape.1.to_le_bytes());
        out.extend_from_slice(&self.shape.2.to_le_bytes());
        for z in &self.h {
            out.extend_from_slice(&z.re.to_le_bytes());
            out.extend_from_slice(&z.im.to_le_bytes());
        }
        out
    }

    /// Deserialize from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestartError> {
        let header = 4 + 4 + 8 + 8 + 8 + 12;
        if bytes.len() < header {
            return Err(RestartError::BadLength { expected: header, found: bytes.len() });
        }
        let rd_u32 = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let rd_u64 = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let rd_f64 = |o: usize| f64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        if rd_u32(0) != MAGIC {
            return Err(RestartError::BadMagic);
        }
        let version = rd_u32(4);
        if version != VERSION {
            return Err(RestartError::BadVersion(version));
        }
        let deck_key = rd_u64(8);
        let time = rd_f64(16);
        let steps_taken = rd_u64(24);
        let shape = (rd_u32(32), rd_u32(36), rd_u32(40));
        let n = shape.0 as usize * shape.1 as usize * shape.2 as usize;
        let expected = header + n * 16;
        if bytes.len() != expected {
            return Err(RestartError::BadLength { expected, found: bytes.len() });
        }
        let mut h = Vec::with_capacity(n);
        for i in 0..n {
            let o = header + i * 16;
            h.push(Complex64::new(rd_f64(o), rd_f64(o + 8)));
        }
        Ok(Self { deck_key, time, steps_taken, shape, h })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_simulation;

    #[test]
    fn capture_restore_resume_is_bitwise() {
        let input = CgyroInput::test_small();
        // Reference: run 8 steps straight through.
        let mut reference = serial_simulation(&input);
        reference.run_steps(8);

        // Checkpointed: run 4, capture, restore into a fresh sim, run 4.
        let mut first = serial_simulation(&input);
        first.run_steps(4);
        let image = RestartImage::capture(&first);
        let bytes = image.to_bytes();
        let loaded = RestartImage::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, image);

        let mut resumed = serial_simulation(&input);
        loaded.restore(&mut resumed).unwrap();
        assert_eq!(resumed.steps_taken(), 4);
        resumed.run_steps(4);

        assert_eq!(reference.h().as_slice(), resumed.h().as_slice(), "bitwise resume");
        assert_eq!(reference.time(), resumed.time());
    }

    #[test]
    fn deck_mismatch_rejected() {
        let input = CgyroInput::test_small();
        let mut sim = serial_simulation(&input);
        sim.run_steps(1);
        let image = RestartImage::capture(&sim);
        // Different gradients = different run identity (even though cmat
        // would match).
        let other = input.with_gradients(9.0, 9.0);
        let mut target = serial_simulation(&other);
        let err = image.restore(&mut target).unwrap_err();
        assert!(matches!(err, RestartError::DeckMismatch { .. }));
        // Different seed likewise.
        let mut target = serial_simulation(&input.with_seed(99));
        assert!(image.restore(&mut target).is_err());
    }

    #[test]
    fn corrupted_images_rejected() {
        let input = CgyroInput::test_small();
        let sim = serial_simulation(&input);
        let bytes = RestartImage::capture(&sim).to_bytes();
        // Magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(RestartImage::from_bytes(&bad).unwrap_err(), RestartError::BadMagic);
        // Version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            RestartImage::from_bytes(&bad).unwrap_err(),
            RestartError::BadVersion(99)
        ));
        // Truncation.
        let bad = &bytes[..bytes.len() - 8];
        assert!(matches!(
            RestartImage::from_bytes(bad).unwrap_err(),
            RestartError::BadLength { .. }
        ));
        // Tiny.
        assert!(matches!(
            RestartImage::from_bytes(&bytes[..10]).unwrap_err(),
            RestartError::BadLength { .. }
        ));
    }
}
