//! Time integration: RK4 for the explicit phases + the pre-factored
//! implicit collision step, orchestrated over a [`Topology`].
//!
//! The [`Topology`] trait is the seam between physics and parallelism: the
//! same [`Simulation`] drives a serial run, a distributed CGYRO run (where
//! the `nv` communicator is *reused* for both the str AllReduce and the
//! str↔coll transpose — Figure 1), and an XGYRO ensemble member (where the
//! coll communicator is a *different*, ensemble-wide group sharing one
//! `cmat` — Figure 3).

use crate::field::FieldSolver;
use crate::geometry::Geometry;
use crate::grid::{ConfigGrid, VelocityGrid};
use crate::input::CgyroInput;
use crate::streaming::StrKernel;
use xg_linalg::Complex64;
use xg_tensor::{pack_moments, unpack_moments, PhaseLayout, Tensor3};

/// The parallel-topology seam. See module docs.
pub trait Topology {
    /// Complete a velocity-moment partial sum (field solve / upwind):
    /// AllReduce over the `nv`-splitting communicator. No-op when `nv` is
    /// not split.
    fn reduce_moment(&self, buf: &mut [Complex64]);

    /// Complete `moments` equally-sized velocity-moment partial sums packed
    /// contiguously in `buf` (the fused str-phase reduction). The default
    /// reduces each section separately — bitwise identical to the fused
    /// form because the rank-order elementwise sum of a concatenation is the
    /// concatenation of the per-section sums. Distributed topologies
    /// override this to issue one collective (or a reduce-scatter +
    /// allgather pair) for the whole packed buffer.
    fn reduce_moment_block(&self, buf: &mut [Complex64], moments: usize) {
        let n = buf.len() / moments.max(1);
        for chunk in buf.chunks_mut(n.max(1)).take(moments) {
            self.reduce_moment(chunk);
        }
    }

    /// The collision step: redistribute `h` into the coll layout (possibly
    /// ensemble-wide), apply the locally held `cmat` slice, redistribute
    /// back. `h` is in the str layout and is updated in place.
    fn collision_step(&mut self, h: &mut Tensor3<Complex64>);

    /// Evaluate the nonlinear term (transposing through the nl layout as
    /// needed); `phi` is the completed potential (`nc × nt_loc`), `out`
    /// receives the str-layout contribution.
    fn nl_term(
        &mut self,
        h: &Tensor3<Complex64>,
        phi: &[Complex64],
        out: &mut Tensor3<Complex64>,
    );

    /// Sum diagnostic scalars over all ranks of the simulation.
    fn reduce_sim_scalars(&self, vals: &mut [f64]);

    /// Max-reduce diagnostic scalars over all ranks of the simulation
    /// (CFL and stability monitors). Default: single-rank no-op.
    fn reduce_sim_max(&self, _vals: &mut [f64]) {}

    /// True when this rank is the root of its `nv` group (rank 0 of the
    /// `nv` communicator). Quantities replicated across the `nv` group
    /// (fields and their moments) are counted once per group by zeroing
    /// them elsewhere before [`Topology::reduce_sim_scalars`].
    fn nv_root(&self) -> bool {
        true
    }

    /// Tag the logical phase on the traffic log (no-op for serial runs).
    fn set_phase(&self, _phase: &str) {}

    /// This rank's layout of the simulation.
    fn layout(&self) -> PhaseLayout;
}

/// Per-report diagnostics of one simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Diagnostics {
    /// Simulation time.
    pub time: f64,
    /// Σ |φ|² over all (ic, itor).
    pub field_energy: f64,
    /// Quasilinear heat-flux proxy `Σ k_y·Im(φ*·H)` with `H` the energy
    /// moment of `h`.
    pub heat_flux: f64,
    /// Σ |h|² over the full distribution.
    pub h_norm2: f64,
}

/// A running simulation: state + kernels + topology.
pub struct Simulation<T: Topology> {
    input: CgyroInput,
    topo: T,
    field: FieldSolver,
    strk: StrKernel,
    /// Heat-moment weights per local iv (`w·ε`).
    heat_w: Vec<f64>,
    /// Distribution in str layout `(nc, nv_loc, nt_loc)`.
    h: Tensor3<Complex64>,
    // RK4 work buffers (persistent: steady-state stepping is
    // allocation-free apart from transient transpose blocks).
    h0: Tensor3<Complex64>,
    stage: Tensor3<Complex64>,
    k_acc: Tensor3<Complex64>,
    rhs: Tensor3<Complex64>,
    nl_buf: Tensor3<Complex64>,
    phi: Vec<Complex64>,
    apar: Vec<Complex64>,
    upw: Vec<Complex64>,
    /// Staging buffer for the fused str-phase reduction (packed moments).
    fused: Vec<Complex64>,
    time: f64,
    steps_taken: u64,
}

/// Deterministic per-point initial perturbation: a splitmix64-style hash of
/// `(seed, ic, iv, itor)` mapped to a small complex amplitude. Identical
/// for every decomposition of the same simulation.
pub fn initial_value(seed: u64, ic: usize, iv: usize, itor: usize) -> Complex64 {
    let mut x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((ic as u64).wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add((iv as u64).wrapping_mul(0x94D049BB133111EB))
        .wrapping_add((itor as u64).wrapping_mul(0xD6E8FEB86659FD93));
    let mut next = || {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        // Map to [-1, 1).
        (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    let re = next();
    let im = next();
    Complex64::new(re, im).scale(1e-3)
}

impl<T: Topology> Simulation<T> {
    /// Build a simulation over a topology: precompute kernels for this
    /// rank's slice and seed the initial condition.
    pub fn new(input: CgyroInput, topo: T) -> Self {
        input.validate().expect("invalid input deck");
        let layout = topo.layout();
        let v = VelocityGrid::new(&input);
        let cfg = ConfigGrid::new(&input);
        let geo = Geometry::new(&input, &cfg);
        let nv_range = layout.nv_range();
        let nt_range = layout.nt_range();
        let field = FieldSolver::new(&input, &v, &cfg, &geo, nv_range.clone(), nt_range.clone());
        let strk = StrKernel::new(&input, &v, &cfg, &geo, nv_range.clone(), nt_range.clone());
        let heat_w: Vec<f64> = nv_range
            .clone()
            .map(|iv| {
                let (_, ie, _) = v.unflatten(iv);
                v.weight(iv) * v.energy[ie]
            })
            .collect();

        let (nc, nvl, ntl) = layout.str_shape();
        let mut h = Tensor3::new(nc, nvl, ntl);
        for ic in 0..nc {
            for (ivl, iv) in nv_range.clone().enumerate() {
                for (itl, itor) in nt_range.clone().enumerate() {
                    h[(ic, ivl, itl)] = initial_value(input.seed, ic, iv, itor);
                }
            }
        }

        let zeros3 = Tensor3::new(nc, nvl, ntl);
        let phi = vec![Complex64::ZERO; nc * ntl];
        Self {
            upw: phi.clone(),
            apar: phi.clone(),
            fused: Vec::new(),
            phi,
            h0: zeros3.clone(),
            stage: zeros3.clone(),
            k_acc: zeros3.clone(),
            rhs: zeros3.clone(),
            nl_buf: zeros3,
            input,
            topo,
            field,
            strk,
            heat_w,
            h,
            time: 0.0,
            steps_taken: 0,
        }
    }

    /// The input deck.
    pub fn input(&self) -> &CgyroInput {
        &self.input
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Borrow the current local distribution (str layout).
    pub fn h(&self) -> &Tensor3<Complex64> {
        &self.h
    }

    /// The most recently solved potential (`nc × nt_loc` row-major).
    /// Refreshed by [`Self::diagnostics`], [`Self::mode_energies`] and every
    /// RK stage; use right after a diagnostics call for a consistent probe.
    pub fn phi(&self) -> &[Complex64] {
        &self.phi
    }

    /// Overwrite the evolving state (checkpoint restore). The caller is
    /// responsible for deck/layout compatibility — see `xg_sim::restart`.
    pub fn restore_state(&mut self, h: &[Complex64], time: f64, steps_taken: u64) {
        assert_eq!(h.len(), self.h.len(), "restored state has the wrong local size");
        self.h.as_mut_slice().copy_from_slice(h);
        // Clear integrator scratch: the next step's first stage evaluates
        // at the restored state with zero stage increment, exactly as a
        // fresh run at this state would.
        self.rhs.fill(Complex64::ZERO);
        self.time = time;
        self.steps_taken = steps_taken;
    }

    /// Borrow the topology (e.g. to inspect communicators in tests).
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// Evaluate the full explicit RHS at state `y` into `self.rhs`
    /// (str + drive + upwind correction + nl).
    fn eval_rhs(&mut self, stage: &Tensor3<Complex64>) {
        self.topo.set_phase("str");
        let span = xg_obs::span(xg_obs::Phase::Str);
        // Fused str-phase reduction: compute all velocity-moment partials
        // first (none depends on a completed reduction), pack them into one
        // contiguous staging buffer, and complete them with a single
        // collective per RK stage instead of Figure 1's three (two
        // electrostatic — the A∥ slot is elided). Elementwise rank-order
        // summation makes this bitwise identical to the sequential form.
        self.field.partial_moment(stage, &mut self.phi);
        if self.field.em_enabled() {
            self.field.partial_current(stage, &mut self.apar);
            self.strk.partial_upwind(stage, &mut self.upw);
            pack_moments(&[&self.phi, &self.apar, &self.upw], &mut self.fused);
            self.topo.reduce_moment_block(&mut self.fused, 3);
            unpack_moments(
                &self.fused,
                &mut [&mut self.phi, &mut self.apar, &mut self.upw],
            );
        } else {
            self.strk.partial_upwind(stage, &mut self.upw);
            pack_moments(&[&self.phi, &self.upw], &mut self.fused);
            self.topo.reduce_moment_block(&mut self.fused, 2);
            unpack_moments(&self.fused, &mut [&mut self.phi, &mut self.upw]);
        }
        self.field.finalize(&mut self.phi);
        if self.field.em_enabled() {
            self.field.finalize_apar(&mut self.apar);
        }
        // Streaming/drift/drive stencil work.
        self.strk.rhs(stage, &self.phi, &self.apar, &self.upw, &mut self.rhs);
        span.finish();
        // Nonlinear phase (its own transposes; never feeds coll directly).
        self.topo.set_phase("nl");
        let span = xg_obs::span(xg_obs::Phase::Nl);
        self.topo.nl_term(stage, &self.phi, &mut self.nl_buf);
        for (r, n) in self.rhs.as_mut_slice().iter_mut().zip(self.nl_buf.as_slice()) {
            *r += *n;
        }
        span.finish();
    }

    /// Advance one time step: RK4 on the explicit terms, then the implicit
    /// collision step through the constant tensor.
    pub fn step(&mut self) {
        let dt = self.input.delta_t;
        self.h0.as_mut_slice().copy_from_slice(self.h.as_slice());

        // Each stage: stage = h0 + c·dt·rhs_prev, then rhs = RHS(stage).
        // The stage buffer is swapped out during eval to satisfy borrows.
        let stage_coeffs = [0.0, 0.5 * dt, 0.5 * dt, dt];
        let acc_coeffs = [1.0, 2.0, 2.0, 1.0];
        for (si, (&sc, &ac)) in stage_coeffs.iter().zip(&acc_coeffs).enumerate() {
            for ((s, h0), r) in self
                .stage
                .as_mut_slice()
                .iter_mut()
                .zip(self.h0.as_slice())
                .zip(self.rhs.as_slice())
            {
                *s = *h0 + r.scale(sc);
            }
            let stage = std::mem::replace(&mut self.stage, Tensor3::new(0, 0, 0));
            self.eval_rhs(&stage);
            self.stage = stage;
            if si == 0 {
                for (a, r) in self.k_acc.as_mut_slice().iter_mut().zip(self.rhs.as_slice()) {
                    *a = *r;
                }
            } else {
                for (a, r) in self.k_acc.as_mut_slice().iter_mut().zip(self.rhs.as_slice()) {
                    *a += r.scale(ac);
                }
            }
        }

        // Combine.
        for ((h, h0), k) in self
            .h
            .as_mut_slice()
            .iter_mut()
            .zip(self.h0.as_slice())
            .zip(self.k_acc.as_slice())
        {
            *h = *h0 + k.scale(dt / 6.0);
        }

        // Implicit collision step (Figure 1: transpose → apply cmat →
        // transpose back).
        self.topo.set_phase("coll");
        let span = xg_obs::span(xg_obs::Phase::Coll);
        self.topo.collision_step(&mut self.h);
        span.finish();

        self.time += dt;
        self.steps_taken += 1;
    }

    /// Advance `n` steps.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advance one reporting interval and return diagnostics.
    pub fn run_report_step(&mut self) -> Diagnostics {
        self.run_steps(self.input.steps_per_report);
        self.diagnostics()
    }

    /// Estimate the advective CFL number `max(|v_∥|/q)·Δt/Δθ` over the
    /// whole simulation (an explicit-stability monitor; the collision step
    /// is unconditionally stable by construction). Uses a max-reduction
    /// over all simulation ranks.
    pub fn cfl_estimate(&self) -> f64 {
        let layout = self.topo.layout();
        let input = &self.input;
        let v = VelocityGrid::new(input);
        let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
        let dtheta = 2.0 * std::f64::consts::PI / input.n_theta as f64;
        let mut local = 0.0f64;
        for iv in layout.nv_range() {
            local = local.max(v.v_par(iv, &masses).abs() / input.q);
        }
        let mut buf = [local * input.delta_t / dtheta];
        self.topo.reduce_sim_max(&mut buf);
        buf[0]
    }

    /// Per-toroidal-mode field energy `E_n = Σ_ic |φ(ic, n)|²` over the
    /// full simulation (length `nt`, globally reduced). The spectrum view
    /// of [`Self::diagnostics`]' `field_energy` (they sum to it).
    pub fn mode_energies(&mut self) -> Vec<f64> {
        self.topo.set_phase("field");
        let _span = xg_obs::span(xg_obs::Phase::Field);
        self.field.partial_moment(&self.h, &mut self.phi);
        self.topo.reduce_moment(&mut self.phi);
        self.field.finalize(&mut self.phi);
        let layout = self.topo.layout();
        let (nc, _, ntl) = self.h.shape();
        let nt = layout.dims().nt;
        let mut vals = vec![0.0f64; nt];
        for ic in 0..nc {
            for (itl, itor) in layout.nt_range().enumerate() {
                vals[itor] += self.phi[ic * ntl + itl].norm_sqr();
            }
        }
        if !self.topo.nv_root() {
            vals.iter_mut().for_each(|v| *v = 0.0);
        }
        self.topo.reduce_sim_scalars(&mut vals);
        vals
    }

    /// Compute diagnostics at the current state.
    pub fn diagnostics(&mut self) -> Diagnostics {
        self.topo.set_phase("field");
        let span = xg_obs::span(xg_obs::Phase::Field);
        // Fresh field solve at current h.
        self.field.partial_moment(&self.h, &mut self.phi);
        self.topo.reduce_moment(&mut self.phi);
        self.field.finalize(&mut self.phi);
        // Heat moment.
        let layout = self.topo.layout();
        let (nc, nvl, ntl) = self.h.shape();
        let mut heat = vec![Complex64::ZERO; nc * ntl];
        for ic in 0..nc {
            for ivl in 0..nvl {
                let w = self.heat_w[ivl];
                let line = self.h.line(ic, ivl);
                for itl in 0..ntl {
                    heat[ic * ntl + itl] += line[itl] * w;
                }
            }
        }
        // The heat moment is a diagnostics-only reduction, not part of the
        // field solve — tag it separately so traces can distinguish
        // reporting-cadence traffic from per-stage field traffic.
        span.finish();
        self.topo.set_phase("diag");
        let _span = xg_obs::span(xg_obs::Phase::Diag);
        self.topo.reduce_moment(&mut heat);

        // Local (per-(ic,it)-unique) sums.
        let ky = crate::grid::ky_modes(&self.input);
        let nt_range = layout.nt_range();
        let mut vals = [0.0f64; 3]; // energy, flux, hnorm
        for ic in 0..nc {
            for (itl, itor) in nt_range.clone().enumerate() {
                let f = ic * ntl + itl;
                vals[0] += self.phi[f].norm_sqr();
                vals[1] += ky[itor] * (self.phi[f].conj() * heat[f]).im;
            }
        }
        // Energy/flux are replicated across the nv group (post-AllReduce
        // fields): count them once per group. |h|² is owned per rank and
        // sums over everyone.
        if !self.topo.nv_root() {
            vals[0] = 0.0;
            vals[1] = 0.0;
        }
        let mut hn = 0.0;
        for z in self.h.as_slice() {
            hn += z.norm_sqr();
        }
        vals[2] = hn;
        self.topo.reduce_sim_scalars(&mut vals);

        Diagnostics {
            time: self.time,
            field_energy: vals[0],
            heat_flux: vals[1],
            h_norm2: vals[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_deterministic_and_small() {
        let a = initial_value(1, 3, 5, 7);
        let b = initial_value(1, 3, 5, 7);
        assert_eq!(a, b);
        assert!(a.abs() < 2e-3 && a.abs() > 0.0);
        // Different indices / seeds give different values.
        assert_ne!(initial_value(1, 3, 5, 7), initial_value(1, 3, 5, 6));
        assert_ne!(initial_value(1, 3, 5, 7), initial_value(2, 3, 5, 7));
    }

    #[test]
    fn initial_values_look_mean_free() {
        let n = 10_000;
        let mut sum = Complex64::ZERO;
        for i in 0..n {
            sum += initial_value(42, i, i / 3, i % 5);
        }
        assert!(sum.abs() / n as f64 * 1e3 < 0.05, "mean too large: {sum}");
    }
}
