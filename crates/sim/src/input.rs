//! Simulation input parameters, presets, and the `cmat` dependency key.
//!
//! The paper's key observation (§1): "a careful analysis of *cmat*
//! construction shows that only a subset of the input parameters influences
//! its value, and there are many fusion studies that do not change them
//! between simulation runs." [`CgyroInput::cmat_key`] hashes exactly that
//! subset — grids, species parameters, collision frequency, geometry — and
//! excludes the gradient drives that parameter-sweep ensembles vary. XGYRO
//! accepts an ensemble if and only if all members share one `cmat` key.

use serde::{Deserialize, Serialize};
use xg_tensor::SimDims;

/// One plasma species.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Species {
    /// Name for reports (`"D"`, `"e"`, …).
    pub name: String,
    /// Mass relative to the reference species.
    pub mass: f64,
    /// Charge number.
    pub z: f64,
    /// Temperature relative to the reference.
    pub temp: f64,
    /// Density relative to the reference.
    pub dens: f64,
    /// Normalized inverse density gradient length `a/L_n` (**sweep
    /// parameter** — not part of the cmat key).
    pub rln: f64,
    /// Normalized inverse temperature gradient length `a/L_T` (**sweep
    /// parameter** — not part of the cmat key).
    pub rlt: f64,
}

impl Species {
    /// Deuterium-like main ion with unit parameters.
    pub fn deuterium() -> Self {
        Self { name: "D".into(), mass: 1.0, z: 1.0, temp: 1.0, dens: 1.0, rln: 1.0, rlt: 2.5 }
    }

    /// Electron species (reduced mass ratio for numerical comfort).
    pub fn electron() -> Self {
        Self {
            name: "e".into(),
            mass: 0.0002723, // m_e / m_D
            z: -1.0,
            temp: 1.0,
            dens: 1.0,
            rln: 1.0,
            rlt: 2.5,
        }
    }

    /// Carbon-like impurity.
    pub fn carbon() -> Self {
        Self { name: "C".into(), mass: 6.0, z: 6.0, temp: 1.0, dens: 0.01, rln: 1.0, rlt: 2.5 }
    }
}

/// Str-phase reduction algorithm requested by the deck.
///
/// The fused field solve can run as one AllReduce over the packed moments
/// or as a reduce-scatter + allgather pair; both are bitwise identical to
/// the legacy per-moment reductions. `Auto` (the default) lets the topology
/// pick at build time from the analytic cost model
/// (`xg_costmodel::best_allreduce_algo`) using the actual communicator
/// shape. A pure communication-schedule knob: it never enters the cmat key
/// and never changes results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceAlgo {
    /// Pick from the cost model at topology build time.
    #[default]
    Auto,
    /// One fused AllReduce over the packed moments per RK stage.
    Fused,
    /// Reduce-scatter the packed moments, then allgather the owned blocks.
    ReduceScatter,
    /// Legacy path: one AllReduce per moment (three calls electromagnetic).
    Unfused,
}

impl std::str::FromStr for ReduceAlgo {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(ReduceAlgo::Auto),
            "fused" => Ok(ReduceAlgo::Fused),
            "reduce-scatter" | "reduce_scatter" | "rs" => Ok(ReduceAlgo::ReduceScatter),
            "unfused" => Ok(ReduceAlgo::Unfused),
            other => Err(format!(
                "unknown reduce algorithm '{other}' (expected auto, fused, reduce-scatter, or unfused)"
            )),
        }
    }
}

impl std::fmt::Display for ReduceAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReduceAlgo::Auto => "auto",
            ReduceAlgo::Fused => "fused",
            ReduceAlgo::ReduceScatter => "reduce-scatter",
            ReduceAlgo::Unfused => "unfused",
        })
    }
}

/// Full input deck for one simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CgyroInput {
    /// Radial grid points (spectral radial modes).
    pub n_radial: usize,
    /// Poloidal (field-line) grid points.
    pub n_theta: usize,
    /// Pitch-angle grid points.
    pub n_xi: usize,
    /// Energy grid points.
    pub n_energy: usize,
    /// Toroidal modes.
    pub n_toroidal: usize,
    /// Species list.
    pub species: Vec<Species>,
    /// Electron-electron collision frequency (normalized). Drives `cmat`.
    pub nu_ee: f64,
    /// Safety factor (geometry; drives `cmat` through k⊥ and streaming).
    pub q: f64,
    /// Magnetic shear (geometry).
    pub shear: f64,
    /// Flux-surface elongation κ (Miller-like shaping; 1 = circular).
    /// Geometry ⇒ part of the `cmat` key.
    pub kappa: f64,
    /// Flux-surface triangularity δ (Miller-like shaping; 0 = circular).
    /// Geometry ⇒ part of the `cmat` key.
    pub delta: f64,
    /// Lowest toroidal wavenumber `k_y·ρ` spacing.
    pub ky_min: f64,
    /// Radial box wavenumber spacing `k_x·ρ`.
    pub kx_min: f64,
    /// Time step (normalized units). Drives `cmat` (Crank–Nicolson factor).
    pub delta_t: f64,
    /// Time steps per reporting step (diagnostic output cadence).
    pub steps_per_report: usize,
    /// Amplitude of the nonlinear coupling (0 = linear run).
    pub nonlinear_coupling: f64,
    /// Electron plasma beta (electromagnetic effects). `0` runs the
    /// electrostatic limit with the A∥ machinery fully disabled. Like the
    /// gradient drives, `beta_e` enters only the field equations — not the
    /// collision operator — so beta scans can share `cmat` (it is
    /// deliberately excluded from the key).
    pub beta_e: f64,
    /// Numerical dissipation coefficient for the upwind correction.
    pub upwind_diss: f64,
    /// Seed for the deterministic initial perturbation.
    pub seed: u64,
    /// Str-phase reduction algorithm. A communication-schedule knob only:
    /// excluded from the cmat key and bitwise-neutral on results.
    #[serde(default)]
    pub reduce_algo: ReduceAlgo,
}

impl CgyroInput {
    /// Flattened tensor dimensions.
    pub fn dims(&self) -> SimDims {
        SimDims::new(
            self.n_radial * self.n_theta,
            self.species.len() * self.n_xi * self.n_energy,
            self.n_toroidal,
        )
    }

    /// Velocity-space size per species.
    pub fn nv_per_species(&self) -> usize {
        self.n_xi * self.n_energy
    }

    /// Validate basic consistency. Returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_radial == 0 || self.n_theta < 4 {
            return Err("need n_radial >= 1 and n_theta >= 4 (streaming stencil)".into());
        }
        if self.n_xi < 2 || self.n_energy < 2 {
            return Err("need at least 2 pitch and 2 energy points".into());
        }
        if self.n_toroidal == 0 {
            return Err("need at least one toroidal mode".into());
        }
        if self.species.is_empty() {
            return Err("need at least one species".into());
        }
        if self.nu_ee < 0.0 {
            return Err("collision frequency must be non-negative".into());
        }
        if self.delta_t <= 0.0 {
            return Err("time step must be positive".into());
        }
        if self.beta_e < 0.0 {
            return Err("beta_e must be non-negative".into());
        }
        if self.kappa <= 0.0 {
            return Err("elongation kappa must be positive".into());
        }
        if self.delta.abs() >= 1.0 {
            return Err("triangularity delta must satisfy |delta| < 1".into());
        }
        if self.steps_per_report == 0 {
            return Err("steps_per_report must be positive".into());
        }
        Ok(())
    }

    /// The `cmat` dependency key: a stable hash over exactly the inputs the
    /// collisional constant tensor depends on. Two simulations with equal
    /// keys can share one `cmat`.
    ///
    /// Included: velocity/configuration/toroidal grid shapes, box spacings,
    /// species (mass, charge, temperature, density), `nu_ee`, geometry
    /// (`q`, `shear`) and `delta_t` (the Crank–Nicolson factor bakes it in).
    /// Excluded: gradient drives (`rln`, `rlt`), nonlinear coupling,
    /// `beta_e`, dissipation strength, seed, reporting cadence.
    ///
    /// ```
    /// use xg_sim::CgyroInput;
    ///
    /// let base = CgyroInput::test_small();
    /// // A gradient sweep keeps the key: these can share one cmat.
    /// assert_eq!(base.with_gradients(3.0, 0.5).cmat_key(), base.cmat_key());
    /// // Changing collisionality does not.
    /// let mut hot = base.clone();
    /// hot.nu_ee *= 2.0;
    /// assert_ne!(hot.cmat_key(), base.cmat_key());
    /// ```
    pub fn cmat_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.u64(self.n_radial as u64);
        h.u64(self.n_theta as u64);
        h.u64(self.n_xi as u64);
        h.u64(self.n_energy as u64);
        h.u64(self.n_toroidal as u64);
        h.u64(self.species.len() as u64);
        for s in &self.species {
            h.f64(s.mass);
            h.f64(s.z);
            h.f64(s.temp);
            h.f64(s.dens);
            // rln/rlt deliberately excluded.
        }
        h.f64(self.nu_ee);
        h.f64(self.q);
        h.f64(self.shear);
        h.f64(self.kappa);
        h.f64(self.delta);
        h.f64(self.ky_min);
        h.f64(self.kx_min);
        h.f64(self.delta_t);
        h.finish()
    }

    /// Name every cmat-relevant input on which `self` and `other` disagree,
    /// with both values — the diagnosis behind a `cmat_key` mismatch. The
    /// field list mirrors [`CgyroInput::cmat_key`] exactly: anything hashed
    /// there is compared here, and nothing else, so a non-empty result is
    /// equivalent to differing keys (up to hash collisions).
    ///
    /// ```
    /// use xg_sim::CgyroInput;
    ///
    /// let base = CgyroInput::test_small();
    /// let mut hot = base.clone();
    /// hot.nu_ee *= 2.0;
    /// let diffs = base.cmat_divergence(&hot);
    /// assert_eq!(diffs, vec!["nu_ee (0.1 vs 0.2)".to_string()]);
    /// // Sweep parameters are not cmat inputs and never show up.
    /// assert!(base.cmat_divergence(&base.with_gradients(9.0, 9.0)).is_empty());
    /// ```
    pub fn cmat_divergence(&self, other: &CgyroInput) -> Vec<String> {
        let mut out = Vec::new();
        let mut grid = |name: &str, a: usize, b: usize| {
            if a != b {
                out.push(format!("{name} ({a} vs {b})"));
            }
        };
        grid("n_radial", self.n_radial, other.n_radial);
        grid("n_theta", self.n_theta, other.n_theta);
        grid("n_xi", self.n_xi, other.n_xi);
        grid("n_energy", self.n_energy, other.n_energy);
        grid("n_toroidal", self.n_toroidal, other.n_toroidal);
        grid("n_species", self.species.len(), other.species.len());
        let mut scalar = |name: &str, a: f64, b: f64| {
            if a.to_bits() != b.to_bits() {
                out.push(format!("{name} ({a} vs {b})"));
            }
        };
        for (i, (s, o)) in self.species.iter().zip(&other.species).enumerate() {
            scalar(&format!("species[{i}].mass"), s.mass, o.mass);
            scalar(&format!("species[{i}].z"), s.z, o.z);
            scalar(&format!("species[{i}].temp"), s.temp, o.temp);
            scalar(&format!("species[{i}].dens"), s.dens, o.dens);
        }
        scalar("nu_ee", self.nu_ee, other.nu_ee);
        scalar("q", self.q, other.q);
        scalar("shear", self.shear, other.shear);
        scalar("kappa", self.kappa, other.kappa);
        scalar("delta", self.delta, other.delta);
        scalar("ky_min", self.ky_min, other.ky_min);
        scalar("kx_min", self.kx_min, other.kx_min);
        scalar("delta_t", self.delta_t, other.delta_t);
        out
    }

    /// A tiny deck for fast functional tests: nc = n_radial·n_theta small,
    /// nv small, a couple of toroidal modes.
    pub fn test_small() -> Self {
        Self {
            n_radial: 4,
            n_theta: 8,
            n_xi: 4,
            n_energy: 3,
            n_toroidal: 2,
            species: vec![Species::deuterium(), Species::electron()],
            nu_ee: 0.1,
            q: 2.0,
            shear: 1.0,
            kappa: 1.0,
            delta: 0.0,
            ky_min: 0.3,
            kx_min: 0.1,
            delta_t: 0.01,
            steps_per_report: 10,
            nonlinear_coupling: 0.05,
            beta_e: 0.0,
            upwind_diss: 0.1,
            seed: 1,
            reduce_algo: ReduceAlgo::Auto,
        }
    }

    /// A medium functional deck (still laptop-scale) exercising three
    /// species and more modes.
    pub fn test_medium() -> Self {
        Self {
            n_radial: 8,
            n_theta: 12,
            n_xi: 6,
            n_energy: 4,
            n_toroidal: 4,
            species: vec![Species::deuterium(), Species::electron(), Species::carbon()],
            nu_ee: 0.05,
            q: 1.7,
            shear: 0.8,
            kappa: 1.0,
            delta: 0.0,
            ky_min: 0.2,
            kx_min: 0.05,
            delta_t: 0.008,
            steps_per_report: 20,
            nonlinear_coupling: 0.02,
            beta_e: 0.0,
            upwind_diss: 0.1,
            seed: 7,
            reduce_algo: ReduceAlgo::Auto,
        }
    }

    /// The `nl03c`-like benchmark deck used **analytically** by the memory
    /// planner and the performance model (never allocated in functional
    /// runs). Dimensioned so that
    ///
    /// * `cmat` ≈ 5.6 TB ≈ 10× all other per-simulation buffers combined
    ///   (paper §1: "the constant cmat is 10x the size of all the other
    ///   memory buffers combined"), and
    /// * on the Frontier-like machine model the minimum feasible allocation
    ///   for a single simulation is 32 nodes (paper §3), with the valid
    ///   decompositions constrained CGYRO-style by divisibility.
    pub fn nl03c_like() -> Self {
        Self {
            n_radial: 4096,
            n_theta: 32,
            n_xi: 24,
            n_energy: 8,
            n_toroidal: 16,
            species: vec![Species::deuterium(), Species::electron(), Species::carbon()],
            nu_ee: 0.1,
            q: 1.4,
            shear: 0.78,
            kappa: 1.35,
            delta: 0.12,
            ky_min: 0.07,
            kx_min: 0.003,
            delta_t: 0.002,
            steps_per_report: 1000,
            nonlinear_coupling: 1.0,
            beta_e: 0.003,
            upwind_diss: 0.1,
            seed: 3,
            reduce_algo: ReduceAlgo::Auto,
        }
    }

    /// Produce a parameter-sweep variant: same `cmat` key, different
    /// gradient drives (this is how the 8 `nl03c` variants of the paper's
    /// benchmark differ).
    pub fn with_gradients(&self, rln: f64, rlt: f64) -> Self {
        let mut v = self.clone();
        for s in &mut v.species {
            s.rln = rln;
            s.rlt = rlt;
        }
        v
    }

    /// Variant with a different seed (initial condition) only.
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut v = self.clone();
        v.seed = seed;
        v
    }
}

/// Minimal FNV-1a hasher for the stable cmat key (independent of std's
/// unspecified `Hasher` implementations).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_flatten_correctly() {
        let i = CgyroInput::test_small();
        let d = i.dims();
        assert_eq!(d.nc, 4 * 8);
        assert_eq!(d.nv, 2 * 4 * 3);
        assert_eq!(d.nt, 2);
    }

    #[test]
    fn presets_validate() {
        assert!(CgyroInput::test_small().validate().is_ok());
        assert!(CgyroInput::test_medium().validate().is_ok());
        assert!(CgyroInput::nl03c_like().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_decks() {
        let mut i = CgyroInput::test_small();
        i.n_theta = 2;
        assert!(i.validate().is_err());
        let mut i = CgyroInput::test_small();
        i.species.clear();
        assert!(i.validate().is_err());
        let mut i = CgyroInput::test_small();
        i.delta_t = 0.0;
        assert!(i.validate().is_err());
        let mut i = CgyroInput::test_small();
        i.nu_ee = -1.0;
        assert!(i.validate().is_err());
    }

    #[test]
    fn cmat_key_ignores_sweep_parameters() {
        let base = CgyroInput::test_small();
        let k0 = base.cmat_key();
        // Gradient sweeps keep the key (the paper's ensemble scenario).
        assert_eq!(base.with_gradients(0.5, 4.0).cmat_key(), k0);
        assert_eq!(base.with_gradients(2.0, 0.1).cmat_key(), k0);
        // Seed and nonlinear coupling are not cmat inputs either.
        assert_eq!(base.with_seed(99).cmat_key(), k0);
        let mut v = base.clone();
        v.nonlinear_coupling = 0.7;
        assert_eq!(v.cmat_key(), k0);
        let mut v = base.clone();
        v.steps_per_report = 500;
        assert_eq!(v.cmat_key(), k0);
        let mut v = base.clone();
        v.beta_e = 0.01;
        assert_eq!(v.cmat_key(), k0, "beta scans share cmat");
        // The reduction schedule is communication-only and bitwise-neutral.
        let mut v = base.clone();
        v.reduce_algo = ReduceAlgo::ReduceScatter;
        assert_eq!(v.cmat_key(), k0, "reduce algo must not enter the cmat key");
    }

    #[test]
    fn reduce_algo_parses_and_displays() {
        for (s, want) in [
            ("auto", ReduceAlgo::Auto),
            ("Fused", ReduceAlgo::Fused),
            ("reduce-scatter", ReduceAlgo::ReduceScatter),
            ("rs", ReduceAlgo::ReduceScatter),
            ("UNFUSED", ReduceAlgo::Unfused),
        ] {
            assert_eq!(s.parse::<ReduceAlgo>().unwrap(), want);
        }
        assert!("ringy".parse::<ReduceAlgo>().is_err());
        assert_eq!(ReduceAlgo::ReduceScatter.to_string(), "reduce-scatter");
        assert_eq!(ReduceAlgo::default(), ReduceAlgo::Auto);
    }

    #[test]
    fn cmat_key_tracks_real_dependencies() {
        let base = CgyroInput::test_small();
        let k0 = base.cmat_key();
        let mut v = base.clone();
        v.nu_ee *= 2.0;
        assert_ne!(v.cmat_key(), k0, "collision frequency must change the key");
        let mut v = base.clone();
        v.n_xi += 1;
        assert_ne!(v.cmat_key(), k0, "velocity grid must change the key");
        let mut v = base.clone();
        v.delta_t *= 0.5;
        assert_ne!(v.cmat_key(), k0, "dt is baked into the CN factor");
        let mut v = base.clone();
        v.species[0].temp = 2.0;
        assert_ne!(v.cmat_key(), k0, "species temperature must change the key");
        let mut v = base.clone();
        v.q = 3.0;
        assert_ne!(v.cmat_key(), k0, "geometry must change the key");
        let mut v = base.clone();
        v.kappa = 1.6;
        assert_ne!(v.cmat_key(), k0, "shaping must change the key");
        let mut v = base.clone();
        v.delta = 0.3;
        assert_ne!(v.cmat_key(), k0, "triangularity must change the key");
    }

    #[test]
    fn cmat_divergence_mirrors_the_key() {
        let base = CgyroInput::test_small();
        // Key-equal decks diverge nowhere.
        assert!(base.cmat_divergence(&base).is_empty());
        assert!(base.cmat_divergence(&base.with_gradients(5.0, 0.2)).is_empty());
        assert!(base.cmat_divergence(&base.with_seed(99)).is_empty());
        // Every named divergence corresponds to a key change, and the
        // offending field is named with both values.
        let mut v = base.clone();
        v.nu_ee = 0.4;
        let d = base.cmat_divergence(&v);
        assert_eq!(d, vec!["nu_ee (0.1 vs 0.4)".to_string()]);
        assert_ne!(v.cmat_key(), base.cmat_key());
        let mut v = base.clone();
        v.species[1].temp = 3.0;
        let d = base.cmat_divergence(&v);
        assert_eq!(d, vec!["species[1].temp (1 vs 3)".to_string()]);
        let mut v = base.clone();
        v.n_xi = 6;
        v.q = 1.1;
        let d = base.cmat_divergence(&v);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].contains("n_xi"), "{d:?}");
        assert!(d[1].contains("q"), "{d:?}");
        // Dropping a species reports the count.
        let mut v = base.clone();
        v.species.pop();
        assert!(v.validate().is_ok());
        let d = base.cmat_divergence(&v);
        assert!(d.iter().any(|s| s.contains("n_species")), "{d:?}");
    }

    #[test]
    fn nl03c_like_has_paper_scale_dims() {
        let i = CgyroInput::nl03c_like();
        let d = i.dims();
        assert_eq!(d.nc, 131072);
        assert_eq!(d.nv, 576);
        assert_eq!(d.nt, 16);
        // cmat total = nv^2 * nc * nt * 8 bytes ≈ 5.57 TB.
        let cmat = (d.nv as u64).pow(2) * d.nc as u64 * d.nt as u64 * 8;
        assert!(cmat > 5 << 40 && cmat < 6 << 40, "cmat = {cmat}");
    }

    #[test]
    fn gradient_variants_differ_but_share_key() {
        let base = CgyroInput::nl03c_like();
        let variants: Vec<CgyroInput> =
            (0..8).map(|i| base.with_gradients(1.0 + 0.1 * i as f64, 2.5)).collect();
        let k0 = base.cmat_key();
        for v in &variants {
            assert_eq!(v.cmat_key(), k0);
        }
        assert_ne!(variants[0].species[0].rln, variants[7].species[0].rln);
    }
}
