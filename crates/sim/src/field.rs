//! Quasineutrality field solve.
//!
//! `φ(ic, n) = Σ_iv pol(iv, ic, n)·h(ic, iv, n) / D(ic, n)` — a velocity
//! moment of the distribution. In the distributed code the `iv` sum is
//! partial (each rank owns an `nv` slice) and completed with an AllReduce
//! over the `nv`-splitting communicator: one of the two str-phase
//! AllReduce call sites of Figure 1 (the other is the upwind moment in
//! [`crate::streaming`]).

use crate::geometry::Geometry;
use crate::grid::{ky_modes, ConfigGrid, VelocityGrid};
use crate::input::CgyroInput;
use std::ops::Range;
use xg_linalg::Complex64;
use xg_tensor::{Tensor2, Tensor3};

/// Precomputed field-solve coefficients for one rank's local slice.
#[derive(Clone, Debug)]
pub struct FieldSolver {
    /// Polarization weights `pol(ic, iv_loc, it_loc)` (gyroaveraged charge
    /// moment weights).
    pol: Tensor3<f64>,
    /// Field denominator `D(ic, it_loc)` (> 0).
    denom: Tensor2<f64>,
    /// Parallel-current weights for the A∥ solve (gyroaveraged `z·v∥`
    /// moment weights); empty in electrostatic runs.
    pol_apar: Tensor3<f64>,
    /// Ampère denominator `(2/β_e)·k⊥² + skin term` (> 0); empty in
    /// electrostatic runs.
    denom_apar: Tensor2<f64>,
    /// True when `beta_e > 0` (A∥ evolved).
    em: bool,
    nc: usize,
    nv_range: Range<usize>,
    nt_range: Range<usize>,
}

/// The gyroaverage factor `J₀ ≈ 1 / (1 + k⊥²ρ_s²(ε)/4)` (Padé).
pub fn gyroaverage(kperp2: f64, rho2: f64) -> f64 {
    1.0 / (1.0 + 0.25 * kperp2 * rho2)
}

/// Thermal gyroradius squared for species `s` at energy `ε`:
/// `ρ²(ε) = m T ε / z²` (normalized units).
pub fn rho2_of(mass: f64, temp: f64, z: f64, energy: f64) -> f64 {
    mass * temp * energy / (z * z)
}

impl FieldSolver {
    /// Build coefficients for the slice `nv_range × nt_range`.
    pub fn new(
        input: &CgyroInput,
        v: &VelocityGrid,
        cfg: &ConfigGrid,
        geo: &Geometry,
        nv_range: Range<usize>,
        nt_range: Range<usize>,
    ) -> Self {
        let nc = cfg.nc();
        let nvl = nv_range.len();
        let ntl = nt_range.len();
        let mut pol = Tensor3::new(nc, nvl, ntl);
        for ic in 0..nc {
            for (ivl, iv) in nv_range.clone().enumerate() {
                let (is, ie, _) = v.unflatten(iv);
                let s = &input.species[is];
                let w = v.weight(iv) * s.z * s.dens;
                let rho2 = rho2_of(s.mass, s.temp, s.z, v.energy[ie]);
                for (itl, itor) in nt_range.clone().enumerate() {
                    let j0 = gyroaverage(geo.kperp2(ic, itor), rho2);
                    pol[(ic, ivl, itl)] = w * j0;
                }
            }
        }
        // Denominator: Σ_s z²n/T ·(1 − Γ₀-ish) + k⊥² λ_D² ; strictly
        // positive. Γ₀ approximated through the same Padé factor at thermal
        // energy.
        let mut denom = Tensor2::new(nc, ntl);
        let _ = ky_modes(input);
        for ic in 0..nc {
            for (itl, itor) in nt_range.clone().enumerate() {
                let k2 = geo.kperp2(ic, itor);
                let mut d = 1e-6 + 0.05 * k2; // Debye-like floor
                for s in &input.species {
                    let rho2 = rho2_of(s.mass, s.temp, s.z, 1.0);
                    let gamma0 = gyroaverage(k2, rho2);
                    d += s.z * s.z * s.dens / s.temp * (1.0 - gamma0 * gamma0 * 0.5);
                }
                denom[(ic, itl)] = d;
            }
        }

        // Electromagnetic (parallel Ampère) machinery — only when β_e > 0.
        let em = input.beta_e > 0.0;
        let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
        let (pol_apar, denom_apar) = if em {
            let mut pa = Tensor3::new(nc, nvl, ntl);
            for ic in 0..nc {
                for (ivl, iv) in nv_range.clone().enumerate() {
                    let (is, ie, _) = v.unflatten(iv);
                    let s = &input.species[is];
                    let w = v.weight(iv) * s.z * s.dens * v.v_par(iv, &masses);
                    let rho2 = rho2_of(s.mass, s.temp, s.z, v.energy[ie]);
                    for (itl, itor) in nt_range.clone().enumerate() {
                        let j0 = gyroaverage(geo.kperp2(ic, itor), rho2);
                        pa[(ic, ivl, itl)] = w * j0;
                    }
                }
            }
            // Ampère denominator: (2/β_e)·k⊥² plus the skin-current term
            // Σ_s z²n/m·⟨v∥²⟩-like contribution; strictly positive for
            // k⊥ > 0 and bounded below by the skin term at k⊥ → 0.
            let mut da = Tensor2::new(nc, ntl);
            for ic in 0..nc {
                for (itl, itor) in nt_range.clone().enumerate() {
                    let k2 = geo.kperp2(ic, itor);
                    let mut d = 2.0 * k2 / input.beta_e + 1e-6;
                    for s in &input.species {
                        d += s.z * s.z * s.dens / s.mass;
                    }
                    da[(ic, itl)] = d;
                }
            }
            (pa, da)
        } else {
            (Tensor3::new(0, 0, 0), Tensor2::new(0, 0))
        };

        Self { pol, denom, pol_apar, denom_apar, em, nc, nv_range, nt_range }
    }

    /// True when the A∥ field is evolved (`beta_e > 0`).
    pub fn em_enabled(&self) -> bool {
        self.em
    }

    /// Owned velocity range.
    pub fn nv_range(&self) -> Range<usize> {
        self.nv_range.clone()
    }

    /// Owned toroidal range.
    pub fn nt_range(&self) -> Range<usize> {
        self.nt_range.clone()
    }

    /// Accumulate this rank's partial charge moment of `h` (str layout,
    /// shape `(nc, nv_loc, nt_loc)`) into `partial` (shape `nc × nt_loc`,
    /// row-major `ic·nt_loc + it_loc`).
    pub fn partial_moment(&self, h: &Tensor3<Complex64>, partial: &mut [Complex64]) {
        let (nc, nvl, ntl) = h.shape();
        assert_eq!(nc, self.nc);
        assert_eq!(nvl, self.nv_range.len());
        assert_eq!(ntl, self.nt_range.len());
        assert_eq!(partial.len(), nc * ntl);
        partial.iter_mut().for_each(|z| *z = Complex64::ZERO);
        for ic in 0..nc {
            for ivl in 0..nvl {
                let line = h.line(ic, ivl);
                for itl in 0..ntl {
                    let w = self.pol[(ic, ivl, itl)];
                    partial[ic * ntl + itl] += line[itl] * w;
                }
            }
        }
    }

    /// Divide the completed moment by the field denominator, yielding `φ`.
    pub fn finalize(&self, moment: &mut [Complex64]) {
        let ntl = self.nt_range.len();
        assert_eq!(moment.len(), self.nc * ntl);
        for ic in 0..self.nc {
            for itl in 0..ntl {
                let d = self.denom[(ic, itl)];
                moment[ic * ntl + itl] = moment[ic * ntl + itl] / d;
            }
        }
    }

    /// Accumulate this rank's partial parallel-current moment of `h` into
    /// `partial` (`nc × nt_loc`). Electromagnetic runs only — this is the
    /// additional str-phase AllReduce family the A∥ solve contributes.
    pub fn partial_current(&self, h: &Tensor3<Complex64>, partial: &mut [Complex64]) {
        assert!(self.em, "partial_current requires beta_e > 0");
        let (nc, nvl, ntl) = h.shape();
        assert_eq!(partial.len(), nc * ntl);
        partial.iter_mut().for_each(|z| *z = Complex64::ZERO);
        for ic in 0..nc {
            for ivl in 0..nvl {
                let line = h.line(ic, ivl);
                for itl in 0..ntl {
                    let w = self.pol_apar[(ic, ivl, itl)];
                    partial[ic * ntl + itl] += line[itl] * w;
                }
            }
        }
    }

    /// Divide the completed current moment by the Ampère denominator,
    /// yielding `A∥`.
    pub fn finalize_apar(&self, moment: &mut [Complex64]) {
        assert!(self.em, "finalize_apar requires beta_e > 0");
        let ntl = self.nt_range.len();
        assert_eq!(moment.len(), self.nc * ntl);
        for ic in 0..self.nc {
            for itl in 0..ntl {
                let d = self.denom_apar[(ic, itl)];
                moment[ic * ntl + itl] = moment[ic * ntl + itl] / d;
            }
        }
    }

    /// Field denominator accessor (diagnostics).
    pub fn denom(&self, ic: usize, itl: usize) -> f64 {
        self.denom[(ic, itl)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(input: &CgyroInput) -> (VelocityGrid, ConfigGrid, Geometry) {
        let v = VelocityGrid::new(input);
        let cfg = ConfigGrid::new(input);
        let geo = Geometry::new(input, &cfg);
        (v, cfg, geo)
    }

    #[test]
    fn gyroaverage_limits() {
        assert_eq!(gyroaverage(0.0, 1.0), 1.0);
        assert!(gyroaverage(100.0, 1.0) < 0.05);
        assert!(gyroaverage(1.0, 0.0) == 1.0);
    }

    #[test]
    fn denominator_strictly_positive() {
        let input = CgyroInput::test_medium();
        let (v, cfg, geo) = setup(&input);
        let fs = FieldSolver::new(&input, &v, &cfg, &geo, 0..v.nv(), 0..input.n_toroidal);
        for ic in 0..cfg.nc() {
            for itl in 0..input.n_toroidal {
                assert!(fs.denom(ic, itl) > 0.0);
            }
        }
    }

    #[test]
    fn partial_moments_sum_to_full_moment() {
        // Splitting nv into ranges and summing partials must equal the
        // full-range moment — the invariant the AllReduce relies on.
        let input = CgyroInput::test_small();
        let (v, cfg, geo) = setup(&input);
        let nv = v.nv();
        let ntl = input.n_toroidal;
        let h_full = Tensor3::from_fn(cfg.nc(), nv, ntl, |ic, iv, it| {
            Complex64::new(
                ((ic * 3 + iv * 7 + it) as f64 * 0.1).sin(),
                ((ic + iv * 2 + it * 5) as f64 * 0.2).cos(),
            )
        });
        let fs_full = FieldSolver::new(&input, &v, &cfg, &geo, 0..nv, 0..ntl);
        let mut want = vec![Complex64::ZERO; cfg.nc() * ntl];
        fs_full.partial_moment(&h_full, &mut want);

        let mut acc = vec![Complex64::ZERO; cfg.nc() * ntl];
        let split = nv / 2;
        for range in [0..split, split..nv] {
            let fs = FieldSolver::new(&input, &v, &cfg, &geo, range.clone(), 0..ntl);
            let h_part = Tensor3::from_fn(cfg.nc(), range.len(), ntl, |ic, ivl, it| {
                h_full[(ic, range.start + ivl, it)]
            });
            let mut p = vec![Complex64::ZERO; cfg.nc() * ntl];
            fs.partial_moment(&h_part, &mut p);
            for (a, b) in acc.iter_mut().zip(&p) {
                *a += *b;
            }
        }
        for (a, b) in acc.iter().zip(&want) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn finalize_divides_by_denominator() {
        let input = CgyroInput::test_small();
        let (v, cfg, geo) = setup(&input);
        let fs = FieldSolver::new(&input, &v, &cfg, &geo, 0..v.nv(), 0..1);
        let mut m = vec![Complex64::new(2.0, -4.0); cfg.nc()];
        let before = m[5];
        fs.finalize(&mut m);
        let d = fs.denom(5, 0);
        assert!((m[5] - before / d).abs() < 1e-15);
    }

    #[test]
    fn charge_neutral_maxwellian_gives_zero_field() {
        // With h constant in velocity (same for every species), the charge
        // moment is Σ_s z_s n_s · (gyro-reduced) — for a globally neutral
        // plasma at k⊥ → 0 it vanishes.
        let mut input = CgyroInput::test_small();
        input.ky_min = 1e-9;
        input.kx_min = 0.0;
        input.shear = 0.0;
        // Two species with opposite charge, equal density.
        input.species[0].z = 1.0;
        input.species[0].dens = 1.0;
        input.species[1].z = -1.0;
        input.species[1].dens = 1.0;
        let (v, cfg, geo) = setup(&input);
        let fs = FieldSolver::new(&input, &v, &cfg, &geo, 0..v.nv(), 0..1);
        let h = Tensor3::from_fn(cfg.nc(), v.nv(), 1, |_, _, _| Complex64::ONE);
        let mut m = vec![Complex64::ZERO; cfg.nc()];
        fs.partial_moment(&h, &mut m);
        for z in &m {
            assert!(z.abs() < 1e-9, "charge moment should vanish: {z}");
        }
    }
}
