//! Per-species velocity-space moments of the distribution.
//!
//! Transport studies read fluxes per species, not just the total proxy in
//! [`crate::stepper::Diagnostics`]. This module computes the standard
//! moment set — density, parallel flow, pressure (energy), and the
//! quasilinear particle/heat fluxes against the self-consistent field —
//! with the same partial-sum + AllReduce structure as the field solve, so
//! it works identically in serial and distributed runs.

use crate::grid::{ky_modes, VelocityGrid};
use crate::input::CgyroInput;
use crate::stepper::{Simulation, Topology};
use xg_linalg::Complex64;

/// Per-species moment snapshot at one reporting time.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeciesMoments {
    /// Species name (from the deck).
    pub name: String,
    /// `Σ |n_s|²` — density-fluctuation intensity.
    pub density2: f64,
    /// `Σ |u_∥s|²` — parallel-flow intensity.
    pub flow2: f64,
    /// `Σ |p_s|²` — pressure-fluctuation intensity.
    pub pressure2: f64,
    /// Quasilinear particle flux `Γ_s = Σ k_y·Im(φ* n_s)`.
    pub particle_flux: f64,
    /// Quasilinear heat flux `Q_s = Σ k_y·Im(φ* p_s)`.
    pub heat_flux: f64,
}

/// Compute per-species moments of the current state. Involves `3·n_species`
/// velocity-moment AllReduces (density, flow, energy per species) plus a
/// field solve — all on the `nv` communicator, mirroring how production
/// diagnostics batch their reductions.
pub fn species_moments<T: Topology>(sim: &mut Simulation<T>) -> Vec<SpeciesMoments> {
    let input: CgyroInput = sim.input().clone();
    let v = VelocityGrid::new(&input);
    let layout = sim.topology().layout();
    let nv_range = layout.nv_range();
    let nt_range = layout.nt_range();
    let (nc, _, ntl) = sim.h().shape();
    let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
    let ky = ky_modes(&input);

    // Refresh φ (also reduces over the nv comm).
    let d = sim.diagnostics();
    let _ = d;
    let phi: Vec<Complex64> = sim.phi().to_vec();

    let ns = input.species.len();
    let mut out = Vec::with_capacity(ns);
    for (is, sp) in input.species.iter().enumerate() {
        // Build the three weighted moments as partial sums over local iv.
        let mut dens = vec![Complex64::ZERO; nc * ntl];
        let mut flow = vec![Complex64::ZERO; nc * ntl];
        let mut pres = vec![Complex64::ZERO; nc * ntl];
        for (ivl, iv) in nv_range.clone().enumerate() {
            let (s_of, ie, _) = v.unflatten(iv);
            if s_of != is {
                continue;
            }
            let w = v.weight(iv);
            let wv = w * v.v_par(iv, &masses);
            let we = w * v.energy[ie];
            for ic in 0..nc {
                let line = sim.h().line(ic, ivl);
                for itl in 0..ntl {
                    let z = line[itl];
                    dens[ic * ntl + itl] += z * w;
                    flow[ic * ntl + itl] += z * wv;
                    pres[ic * ntl + itl] += z * we;
                }
            }
        }
        sim.topology().reduce_moment(&mut dens);
        sim.topology().reduce_moment(&mut flow);
        sim.topology().reduce_moment(&mut pres);

        // Per-(ic, it)-unique scalars, then reduce over the simulation.
        let mut vals = [0.0f64; 5];
        for ic in 0..nc {
            for (itl, itor) in nt_range.clone().enumerate() {
                let f = ic * ntl + itl;
                vals[0] += dens[f].norm_sqr();
                vals[1] += flow[f].norm_sqr();
                vals[2] += pres[f].norm_sqr();
                vals[3] += ky[itor] * (phi[f].conj() * dens[f]).im;
                vals[4] += ky[itor] * (phi[f].conj() * pres[f]).im;
            }
        }
        if !sim.topology().nv_root() {
            vals = [0.0; 5];
        }
        sim.topology().reduce_sim_scalars(&mut vals);
        out.push(SpeciesMoments {
            name: sp.name.clone(),
            density2: vals[0],
            flow2: vals[1],
            pressure2: vals[2],
            particle_flux: vals[3],
            heat_flux: vals[4],
        });
    }
    out
}

/// Render a moment set as an aligned table.
pub fn moments_table(moments: &[SpeciesMoments]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "species      |n|^2        |u|^2        |p|^2        Gamma         Q\n",
    );
    for m in moments {
        let _ = writeln!(
            out,
            "{:<10} {:>10.3e}  {:>10.3e}  {:>10.3e}  {:>+10.3e}  {:>+10.3e}",
            m.name, m.density2, m.flow2, m.pressure2, m.particle_flux, m.heat_flux
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_simulation;

    #[test]
    fn moments_are_finite_and_structured() {
        let input = CgyroInput::test_small();
        let mut sim = serial_simulation(&input);
        sim.run_steps(5);
        let m = species_moments(&mut sim);
        assert_eq!(m.len(), input.species.len());
        assert_eq!(m[0].name, "D");
        assert_eq!(m[1].name, "e");
        for sm in &m {
            assert!(sm.density2.is_finite() && sm.density2 >= 0.0);
            assert!(sm.flow2.is_finite() && sm.flow2 >= 0.0);
            assert!(sm.pressure2.is_finite() && sm.pressure2 >= 0.0);
            assert!(sm.particle_flux.is_finite());
            assert!(sm.heat_flux.is_finite());
        }
        let table = moments_table(&m);
        assert!(table.contains("Gamma"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn species_heat_fluxes_sum_near_total_proxy() {
        // The Diagnostics heat-flux proxy uses the all-species energy
        // moment; the per-species fluxes must sum to it exactly.
        let mut input = CgyroInput::test_small();
        input.nonlinear_coupling = 0.0;
        for s in &mut input.species {
            s.rlt = 9.0;
        }
        let mut sim = serial_simulation(&input);
        sim.run_steps(10);
        let d = sim.diagnostics();
        let m = species_moments(&mut sim);
        let sum: f64 = m.iter().map(|sm| sm.heat_flux).sum();
        assert!(
            (sum - d.heat_flux).abs() <= 1e-12 * (1.0 + d.heat_flux.abs()),
            "{sum} vs {}",
            d.heat_flux
        );
    }

    #[test]
    fn driven_species_carries_the_flux() {
        // Drive only the ions: ion heat flux must dominate the electron one.
        let mut input = CgyroInput::test_small();
        input.nonlinear_coupling = 0.0;
        input.species[0].rlt = 9.0;
        input.species[0].rln = 1.0;
        input.species[1].rlt = 0.0;
        input.species[1].rln = 0.0;
        let mut sim = serial_simulation(&input);
        sim.run_steps(30);
        let m = species_moments(&mut sim);
        assert!(
            m[0].heat_flux.abs() > m[1].heat_flux.abs(),
            "ion flux {} vs electron {}",
            m[0].heat_flux,
            m[1].heat_flux
        );
    }
}
