//! The nl (nonlinear) phase: truncated toroidal-mode convolution.
//!
//! The Poisson-bracket nonlinearity couples toroidal modes, so evaluating
//! it needs the **complete toroidal dimension** locally (paper §2) — the nl
//! layout `(nc_loc2, nv_loc, nt)` reached by an AllToAll over the `n2`
//! communicator. The paper mostly ignores this phase ("there is never a
//! direct transition from it to the coll phase"); we implement it for
//! completeness with a simplified E×B-like quadratic coupling:
//!
//! `NL_p = (i·c/2) Σ_{p1+p2=p} (ky_{p1} − ky_{p2}) φ_{p1} h_{p2}`
//!
//! over signed mode numbers `p ∈ ±{1..nt}` with reality `X_{−p} = X_p*`.

use crate::input::CgyroInput;
use xg_linalg::{fft::Fft, Complex64};
use xg_tensor::Tensor3;

/// Mode count at and above which the FFT (pseudo-spectral) evaluation is
/// used instead of the direct O(nt²) convolution. Both paths compute the
/// same truncated bracket (cross-validated in tests); the threshold is a
/// deterministic function of the deck, so serial and distributed runs of
/// one simulation always take the same path.
pub const FFT_THRESHOLD: usize = 8;

/// Nonlinear convolution kernel (toroidal-only truncated bracket).
#[derive(Clone, Debug)]
pub struct NlKernel {
    /// `k_y` at physical mode `p` (1-based; `ky[p-1]`).
    ky: Vec<f64>,
    /// Coupling amplitude.
    coupling: f64,
    nt: usize,
    /// Pseudo-spectral plan (dealiased length ≥ 3·nt+1, power of two);
    /// `None` below [`FFT_THRESHOLD`].
    plan: Option<Fft>,
}

impl NlKernel {
    /// Build from the input deck.
    pub fn new(input: &CgyroInput) -> Self {
        let nt = input.n_toroidal;
        let plan = if nt >= FFT_THRESHOLD {
            Some(Fft::new(xg_linalg::next_pow2(3 * nt + 1)))
        } else {
            None
        };
        Self {
            ky: crate::grid::ky_modes(input),
            coupling: input.nonlinear_coupling,
            nt,
            plan,
        }
    }

    /// True when the pseudo-spectral (FFT) path is active.
    pub fn uses_fft(&self) -> bool {
        self.plan.is_some()
    }

    /// True when the coupling is exactly zero (linear run) — callers may
    /// skip the nl transpose entirely.
    pub fn is_disabled(&self) -> bool {
        self.coupling == 0.0
    }

    /// Evaluate the nonlinear term on nl-layout data.
    ///
    /// * `h_nl`: `(nc_blk, nv_loc, nt)` — full toroidal dimension.
    /// * `phi_full`: `nc × nt` row-major (`ic·nt + n`), the potential with
    ///   the complete toroidal dimension.
    /// * `nc_offset`: global `ic` of `h_nl`'s first configuration row.
    /// * `out`: same shape as `h_nl`, overwritten.
    pub fn eval(
        &self,
        h_nl: &Tensor3<Complex64>,
        phi_full: &[Complex64],
        nc_offset: usize,
        out: &mut Tensor3<Complex64>,
    ) {
        let (_, _, nt) = h_nl.shape();
        assert_eq!(out.shape(), h_nl.shape());
        assert_eq!(nt, self.nt);
        if self.is_disabled() {
            out.fill(Complex64::ZERO);
            return;
        }
        if let Some(plan) = &self.plan {
            self.eval_fft(plan, h_nl, phi_full, nc_offset, out);
            return;
        }
        self.eval_direct(h_nl, phi_full, nc_offset, out);
    }

    /// Direct O(nt²) evaluation of the truncated bracket (reference path;
    /// used below [`FFT_THRESHOLD`] and by the cross-validation tests).
    pub fn eval_direct(
        &self,
        h_nl: &Tensor3<Complex64>,
        phi_full: &[Complex64],
        nc_offset: usize,
        out: &mut Tensor3<Complex64>,
    ) {
        let (nc_blk, nvl, nt) = h_nl.shape();
        let half_c = 0.5 * self.coupling;
        for icl in 0..nc_blk {
            let ic = nc_offset + icl;
            let phi = &phi_full[ic * nt..(ic + 1) * nt];
            for ivl in 0..nvl {
                let hline = h_nl.line(icl, ivl);
                let oline = out.line_mut(icl, ivl);
                for (n, o) in oline.iter_mut().enumerate() {
                    let p = (n + 1) as i64; // physical target mode
                    let mut acc = Complex64::ZERO;
                    // Family 1: p1 + p2 = p, both positive.
                    for p1 in 1..p {
                        let p2 = p - p1;
                        let k = self.ky[(p1 - 1) as usize] - self.ky[(p2 - 1) as usize];
                        acc += (phi[(p1 - 1) as usize] * hline[(p2 - 1) as usize]).scale(k);
                    }
                    // Family 2: p1 − |p2| = p (p1 positive, p2 negative):
                    // φ_{p1}·conj(h_{|p2|}), K = ky_{p1} + ky_{|p2|}.
                    for q in 1..=(self.nt as i64) {
                        let p1 = p + q;
                        if p1 > self.nt as i64 {
                            break;
                        }
                        let k = self.ky[(p1 - 1) as usize] + self.ky[(q - 1) as usize];
                        acc += (phi[(p1 - 1) as usize] * hline[(q - 1) as usize].conj())
                            .scale(k);
                    }
                    // Family 3: −|p1| + p2 = p (p1 negative, p2 positive):
                    // conj(φ_{|p1|})·h_{p2}, K = −ky_{|p1|} − ky_{p2}.
                    for q in 1..=(self.nt as i64) {
                        let p2 = p + q;
                        if p2 > self.nt as i64 {
                            break;
                        }
                        let k = -(self.ky[(q - 1) as usize] + self.ky[(p2 - 1) as usize]);
                        acc += (phi[(q - 1) as usize].conj() * hline[(p2 - 1) as usize])
                            .scale(k);
                    }
                    *o = Complex64::new(0.0, half_c) * acc;
                }
            }
        }
    }

    /// Pseudo-spectral evaluation: with `ky_p = p·ky_min` the bracket is
    /// `NL_p = (i·c/2)·ky_min·[conv(∂φ, h) − conv(φ, ∂h)]_p` with
    /// `(∂X)_p = p·X_p`, i.e. two pointwise products in a dealiased
    /// real-space grid (the 3/2-rule, `M ≥ 3·nt+1`) — exactly how
    /// production codes evaluate Poisson brackets.
    fn eval_fft(
        &self,
        plan: &Fft,
        h_nl: &Tensor3<Complex64>,
        phi_full: &[Complex64],
        nc_offset: usize,
        out: &mut Tensor3<Complex64>,
    ) {
        let (nc_blk, nvl, nt) = h_nl.shape();
        let m = plan.len();
        let ky_min = self.ky[0];
        debug_assert!(
            self.ky.iter().enumerate().all(|(i, k)| (k - (i + 1) as f64 * ky_min).abs()
                < 1e-12 * ky_min.abs().max(1e-300)),
            "FFT path requires linear ky spectrum"
        );
        // Prefactor: i·(c/2)·ky_min·M (M undoes the 1/M² from the two
        // inverse transforms against the 1/1 forward).
        let pref = Complex64::new(0.0, 0.5 * self.coupling * ky_min * m as f64);

        let mut u_phi = vec![Complex64::ZERO; m];
        let mut v_phi = vec![Complex64::ZERO; m];
        let mut u_h = vec![Complex64::ZERO; m];
        let mut v_h = vec![Complex64::ZERO; m];
        let mut w = vec![Complex64::ZERO; m];

        for icl in 0..nc_blk {
            let ic = nc_offset + icl;
            let phi = &phi_full[ic * nt..(ic + 1) * nt];
            // Signed spectra of φ and ∂φ (reality: X_{-p} = conj(X_p)).
            u_phi.iter_mut().for_each(|z| *z = Complex64::ZERO);
            v_phi.iter_mut().for_each(|z| *z = Complex64::ZERO);
            for p in 1..=nt {
                let x = phi[p - 1];
                u_phi[p] = x;
                u_phi[m - p] = x.conj();
                v_phi[p] = x.scale(p as f64);
                v_phi[m - p] = x.conj().scale(-(p as f64));
            }
            plan.inverse(&mut u_phi);
            plan.inverse(&mut v_phi);

            for ivl in 0..nvl {
                let hline = h_nl.line(icl, ivl);
                u_h.iter_mut().for_each(|z| *z = Complex64::ZERO);
                v_h.iter_mut().for_each(|z| *z = Complex64::ZERO);
                for p in 1..=nt {
                    let x = hline[p - 1];
                    u_h[p] = x;
                    u_h[m - p] = x.conj();
                    v_h[p] = x.scale(p as f64);
                    v_h[m - p] = x.conj().scale(-(p as f64));
                }
                plan.inverse(&mut u_h);
                plan.inverse(&mut v_h);

                for j in 0..m {
                    w[j] = v_phi[j] * u_h[j] - u_phi[j] * v_h[j];
                }
                plan.forward(&mut w);

                let oline = out.line_mut(icl, ivl);
                for (n, o) in oline.iter_mut().enumerate() {
                    *o = pref * w[n + 1];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(nt: usize, coupling: f64) -> NlKernel {
        let mut input = CgyroInput::test_small();
        input.n_toroidal = nt;
        input.nonlinear_coupling = coupling;
        NlKernel::new(&input)
    }

    fn tensor(nc: usize, nvl: usize, nt: usize, f: impl Fn(usize, usize, usize) -> Complex64) -> Tensor3<Complex64> {
        Tensor3::from_fn(nc, nvl, nt, f)
    }

    #[test]
    fn disabled_kernel_returns_zero() {
        let k = kernel(3, 0.0);
        assert!(k.is_disabled());
        let h = tensor(2, 2, 3, |a, b, c| Complex64::new((a + b + c) as f64, 1.0));
        let phi = vec![Complex64::ONE; 2 * 3];
        let mut out = tensor(2, 2, 3, |_, _, _| Complex64::new(9.0, 9.0));
        k.eval(&h, &phi, 0, &mut out);
        assert!(out.as_slice().iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn quadratic_scaling_in_amplitude() {
        // NL(λφ, λh) = λ²·NL(φ, h).
        let k = kernel(4, 0.3);
        let h = tensor(1, 1, 4, |_, _, n| Complex64::new(0.3 + n as f64 * 0.2, -0.1 * n as f64));
        let phi: Vec<Complex64> =
            (0..4).map(|n| Complex64::new(0.5 - 0.1 * n as f64, 0.2)).collect();
        let mut out1 = tensor(1, 1, 4, |_, _, _| Complex64::ZERO);
        k.eval(&h, &phi, 0, &mut out1);

        let lam = 2.5;
        let h2 = tensor(1, 1, 4, |a, b, n| h[(a, b, n)].scale(lam));
        let phi2: Vec<Complex64> = phi.iter().map(|z| z.scale(lam)).collect();
        let mut out2 = tensor(1, 1, 4, |_, _, _| Complex64::ZERO);
        k.eval(&h2, &phi2, 0, &mut out2);
        for (a, b) in out1.as_slice().iter().zip(out2.as_slice()) {
            assert!((b.scale(1.0 / (lam * lam)) - *a).abs() < 1e-12);
        }
    }

    #[test]
    fn self_interaction_of_single_mode_vanishes_for_same_field() {
        // With only mode p=1 populated and h = φ (same mode content), the
        // antisymmetric coupling K(p1,p2) = ky1 − ky2 kills family 1 at
        // p=2 (p1=p2=1), and families 2/3 cancel by conjugate symmetry at
        // p=... check the p=2 output explicitly.
        let k = kernel(4, 1.0);
        let mut h = tensor(1, 1, 4, |_, _, _| Complex64::ZERO);
        h[(0, 0, 0)] = Complex64::new(0.7, 0.3); // mode p=1
        let mut phi = vec![Complex64::ZERO; 4];
        phi[0] = Complex64::new(0.7, 0.3);
        let mut out = tensor(1, 1, 4, |_, _, _| Complex64::ZERO);
        k.eval(&h, &phi, 0, &mut out);
        // Family 1 at target p=2: only (p1,p2)=(1,1), K=0 → zero.
        assert!(out[(0, 0, 1)].abs() < 1e-14, "p=2 self-beat must vanish");
    }

    #[test]
    fn offset_indexes_phi_correctly() {
        let k = kernel(3, 0.4);
        let nc = 4;
        let h = tensor(2, 1, 3, |a, _, n| Complex64::new((a * 3 + n) as f64 + 0.5, 0.3));
        let phi: Vec<Complex64> =
            (0..nc * 3).map(|i| Complex64::new(i as f64 * 0.1, -(i as f64) * 0.05)).collect();
        // Evaluate with offset 2: rows of h correspond to global ic = 2, 3.
        let mut out_off = tensor(2, 1, 3, |_, _, _| Complex64::ZERO);
        k.eval(&h, &phi, 2, &mut out_off);
        // Same via a full-size tensor with rows placed at ic = 2, 3.
        let h_full = tensor(nc, 1, 3, |a, _, n| {
            if a >= 2 { h[(a - 2, 0, n)] } else { Complex64::ZERO }
        });
        let mut out_full = tensor(nc, 1, 3, |_, _, _| Complex64::ZERO);
        k.eval(&h_full, &phi, 0, &mut out_full);
        for icl in 0..2 {
            for n in 0..3 {
                assert_eq!(out_off[(icl, 0, n)], out_full[(icl + 2, 0, n)]);
            }
        }
    }

    #[test]
    fn fft_path_matches_direct_convolution() {
        // The pseudo-spectral path must agree with the direct O(nt²)
        // reference for arbitrary spectra (to roundoff).
        for nt in [8usize, 12, 16] {
            let k = kernel(nt, 0.37);
            assert!(k.uses_fft());
            let nc = 3;
            let nvl = 2;
            let h = tensor(nc, nvl, nt, |a, b, n| {
                Complex64::new(
                    ((a * 7 + b * 3 + n) as f64 * 0.61).sin(),
                    ((a + b * 5 + n * 2) as f64 * 0.37).cos(),
                )
            });
            let phi: Vec<Complex64> = (0..nc * nt)
                .map(|i| Complex64::new((i as f64 * 0.21).cos(), (i as f64 * 0.13).sin()))
                .collect();
            let mut via_fft = tensor(nc, nvl, nt, |_, _, _| Complex64::ZERO);
            k.eval(&h, &phi, 0, &mut via_fft);
            let mut direct = tensor(nc, nvl, nt, |_, _, _| Complex64::ZERO);
            k.eval_direct(&h, &phi, 0, &mut direct);
            let scale = direct
                .as_slice()
                .iter()
                .map(|z| z.abs())
                .fold(0.0f64, f64::max)
                .max(1e-30);
            for (a, b) in via_fft.as_slice().iter().zip(direct.as_slice()) {
                assert!(
                    (*a - *b).abs() < 1e-11 * scale,
                    "nt={nt}: {a} vs {b} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn small_mode_counts_use_direct_path() {
        assert!(!kernel(4, 0.1).uses_fft());
        assert!(kernel(8, 0.1).uses_fft());
    }

    #[test]
    fn output_bounded_for_bounded_inputs() {
        let k = kernel(6, 0.1);
        let h = tensor(3, 2, 6, |a, b, c| {
            Complex64::new(((a + b + c) as f64).sin(), ((a * b + c) as f64).cos())
        });
        let phi: Vec<Complex64> = (0..18).map(|i| Complex64::cis(i as f64)).collect();
        let mut out = tensor(3, 2, 6, |_, _, _| Complex64::ZERO);
        k.eval(&h, &phi, 0, &mut out);
        for z in out.as_slice() {
            assert!(z.is_finite());
            assert!(z.abs() < 10.0);
        }
    }
}
