//! Serial (single-process) reference topology.
//!
//! Holds the complete `cmat` and full-dimension buffers; all "collectives"
//! are no-ops. This is the ground truth the distributed and ensemble runs
//! are validated against.

use crate::cmat::CollisionConstants;
use crate::collision::CollisionOperator;
use crate::geometry::Geometry;
use crate::grid::{ConfigGrid, VelocityGrid};
use crate::input::CgyroInput;
use crate::nonlinear::NlKernel;
use crate::pool::{SendPtr, StepPool};
use crate::stepper::{Simulation, Topology};
use xg_costmodel::KernelChoice;
use xg_linalg::Complex64;
use xg_tensor::{
    pack_coll_profiles_block, unpack_into_coll_profiles, unpack_into_str, PhaseLayout, ProcGrid,
    Tensor3,
};

/// Serial topology: one rank owns everything.
pub struct SerialTopology {
    layout: PhaseLayout,
    cmat: CollisionConstants,
    nl: NlKernel,
    // Collision pipeline: profile-contiguous staging buffers (`(nc, nt,
    // nv)` so each velocity profile is one contiguous slice) and the
    // persistent worker pool that fans the panel loop out over (ic, it).
    cp_in: Tensor3<Complex64>,
    cp_out: Tensor3<Complex64>,
    rev_buf: Vec<Complex64>,
    pool: StepPool,
    /// Collision kernel (SIMD level + L2 row-tile height) picked by the
    /// autotuner at build time; bitwise-neutral, wall-time only.
    kernel: KernelChoice,
    nl_out: Tensor3<Complex64>,
}

impl SerialTopology {
    /// Build the serial topology (including the full constant tensor).
    /// Collision threading follows `XGYRO_THREADS` (default 1).
    pub fn new(input: &CgyroInput) -> Self {
        Self::with_pool(input, StepPool::from_env())
    }

    /// Like [`SerialTopology::new`] with an explicit collision thread
    /// count (used by determinism tests; output is bitwise independent of
    /// the count).
    pub fn with_threads(input: &CgyroInput, threads: usize) -> Self {
        Self::with_pool(input, StepPool::new(threads))
    }

    fn with_pool(input: &CgyroInput, pool: StepPool) -> Self {
        let dims = input.dims();
        let layout = PhaseLayout::new(dims, ProcGrid::new(1, 1), 0);
        let v = VelocityGrid::new(input);
        let cfg = ConfigGrid::new(input);
        let geo = Geometry::new(input, &cfg);
        let op = CollisionOperator::build(input, &v);
        let cmat =
            CollisionConstants::build(input, &v, &cfg, &geo, &op, 0..dims.nc, 0..dims.nt);
        let nl = NlKernel::new(input);
        // One-shot kernel autotune for this (nv, nrhs=1) shape, like the
        // reduce-algorithm resolution in the distributed topology.
        let kernel = xg_costmodel::tune_collision_kernel(dims.nv, 1);
        xg_obs::set_collision_kernel(&kernel.to_string());
        Self {
            layout,
            cmat,
            nl,
            cp_in: Tensor3::new(dims.nc, dims.nt, dims.nv),
            cp_out: Tensor3::new(dims.nc, dims.nt, dims.nv),
            rev_buf: Vec::with_capacity(dims.nc * dims.nt * dims.nv),
            pool,
            kernel,
            nl_out: Tensor3::new(dims.nc, dims.nv, dims.nt),
        }
    }

    /// Bytes held by the full constant tensor.
    pub fn cmat_bytes(&self) -> u64 {
        self.cmat.bytes()
    }

    /// Fingerprint of the full constant tensor.
    pub fn cmat_fingerprint(&self) -> u64 {
        self.cmat.fingerprint()
    }

    /// Collision worker-pool width (including the calling thread).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The autotuned collision kernel this topology runs.
    pub fn kernel_choice(&self) -> KernelChoice {
        self.kernel
    }
}

impl Topology for SerialTopology {
    fn reduce_moment(&self, _buf: &mut [Complex64]) {
        // Full nv is local: the partial sum is already complete.
    }

    fn collision_step(&mut self, h: &mut Tensor3<Complex64>) {
        let (nc, nv, nt) = h.shape();
        // Stage into the profile-contiguous layout: the str slice
        // `[ic][iv][it]` is exactly the full-range wire block, so one
        // unpack replaces the per-element strided gather.
        unpack_into_coll_profiles(h.as_slice(), 0..nv, 0, &mut self.cp_in);
        // Tile-granular panel loop: one task per (pair, row-tile), so the
        // pool stays busy even when pairs are few, and each panel tile is
        // streamed through its RHS while L2-resident. Bitwise independent
        // of the pool width and the tuned (level, tile) choice.
        let cmat = &self.cmat;
        let cp_in = &self.cp_in;
        let kernel = self.kernel;
        let tiles = nv.div_ceil(kernel.tile_rows.max(1));
        let out = SendPtr(self.cp_out.as_mut_slice().as_mut_ptr());
        self.pool.for_each_task(nc * nt * tiles, |t| {
            let (pair, tile) = (t / tiles, t % tiles);
            let (ic, it) = (pair / nt, pair % nt);
            let r0 = tile * kernel.tile_rows;
            let r1 = (r0 + kernel.tile_rows).min(nv);
            // SAFETY: each task writes rows r0..r1 of pair's disjoint
            // nv-sized output block; cp_out outlives the blocking round.
            unsafe {
                cmat.apply_multi_rows(
                    ic,
                    it,
                    cp_in.line(ic, it),
                    out.add(pair * nv),
                    1,
                    r0..r1,
                    kernel.level,
                );
            }
        });
        // Scatter back through the same wire format.
        self.rev_buf.clear();
        pack_coll_profiles_block(&self.cp_out, 0..nv, 0, &mut self.rev_buf);
        unpack_into_str(&self.rev_buf, 0..nc, h);
    }

    fn nl_term(
        &mut self,
        h: &Tensor3<Complex64>,
        phi: &[Complex64],
        out: &mut Tensor3<Complex64>,
    ) {
        if self.nl.is_disabled() {
            out.fill(Complex64::ZERO);
            return;
        }
        // Full nt is local: evaluate directly; phi already spans nc × nt.
        self.nl.eval(h, phi, 0, &mut self.nl_out);
        out.as_mut_slice().copy_from_slice(self.nl_out.as_slice());
    }

    fn reduce_sim_scalars(&self, _vals: &mut [f64]) {
        // Single rank: sums are already complete.
    }

    fn layout(&self) -> PhaseLayout {
        self.layout
    }
}

/// Convenience: build a serial simulation from a deck.
///
/// ```
/// use xg_sim::{serial_simulation, CgyroInput};
///
/// let mut sim = serial_simulation(&CgyroInput::test_small());
/// let d = sim.run_report_step();
/// assert!(d.time > 0.0 && d.field_energy.is_finite());
/// ```
pub fn serial_simulation(input: &CgyroInput) -> Simulation<SerialTopology> {
    Simulation::new(input.clone(), SerialTopology::new(input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_linalg::norms::max_abs_complex;

    #[test]
    fn serial_run_is_stable_and_nontrivial() {
        let mut input = CgyroInput::test_small();
        input.steps_per_report = 5;
        let mut sim = serial_simulation(&input);
        let d0 = sim.diagnostics();
        assert!(d0.h_norm2 > 0.0, "seeded IC must be nonzero");
        let d1 = sim.run_report_step();
        assert!(d1.time > 0.0);
        assert!(d1.field_energy.is_finite());
        assert!(d1.h_norm2.is_finite());
        assert!(max_abs_complex(sim.h().as_slice()) < 1.0, "amplitudes stay bounded");
        // Something actually happened.
        assert_ne!(d0.h_norm2, d1.h_norm2);
    }

    #[test]
    fn serial_run_is_deterministic() {
        let input = CgyroInput::test_small();
        let mut a = serial_simulation(&input);
        let mut b = serial_simulation(&input);
        a.run_steps(7);
        b.run_steps(7);
        assert_eq!(a.h().as_slice(), b.h().as_slice(), "bitwise reproducible");
    }

    #[test]
    fn different_seeds_different_trajectories() {
        let input = CgyroInput::test_small();
        let mut a = serial_simulation(&input);
        let mut b = serial_simulation(&input.with_seed(1234));
        a.run_steps(3);
        b.run_steps(3);
        assert_ne!(a.h().as_slice(), b.h().as_slice());
    }

    #[test]
    fn gradient_drive_changes_dynamics_not_cmat() {
        let input = CgyroInput::test_small();
        let hot = input.with_gradients(2.0, 6.0);
        let ta = SerialTopology::new(&input);
        let tb = SerialTopology::new(&hot);
        assert_eq!(ta.cmat_fingerprint(), tb.cmat_fingerprint());
        let mut a = Simulation::new(input, ta);
        let mut b = Simulation::new(hot, tb);
        a.run_steps(5);
        b.run_steps(5);
        assert_ne!(a.h().as_slice(), b.h().as_slice());
    }

    #[test]
    fn collisions_damp_the_distribution() {
        // With no drive and no collisions the norm is ~conserved (streaming
        // is non-dissipative up to the upwind term); with collisions it
        // decays faster.
        let mut base = CgyroInput::test_small();
        base.nonlinear_coupling = 0.0;
        for s in &mut base.species {
            s.rln = 0.0;
            s.rlt = 0.0;
        }
        let mut no_coll = base.clone();
        no_coll.nu_ee = 0.0;
        let mut with_coll = base.clone();
        with_coll.nu_ee = 1.0;

        let mut a = serial_simulation(&no_coll);
        let mut b = serial_simulation(&with_coll);
        a.run_steps(20);
        b.run_steps(20);
        let na = a.diagnostics().h_norm2;
        let nb = b.diagnostics().h_norm2;
        assert!(nb < na, "collisions must damp: {nb} !< {na}");
    }

    #[test]
    fn linear_mode_skips_nl_and_matches_disabled_kernel() {
        let mut lin = CgyroInput::test_small();
        lin.nonlinear_coupling = 0.0;
        let mut sim = serial_simulation(&lin);
        sim.run_steps(3);
        assert!(sim.h().as_slice().iter().all(|z| z.is_finite()));
    }
}
