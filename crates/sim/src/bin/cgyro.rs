//! `cgyro` — run a single CGYRO-class input deck, serially or distributed
//! over a thread-backed process grid (the baseline the paper compares
//! XGYRO against).
//!
//! ```text
//! cgyro [--grid N1xN2] [--reports R] SIM_DIR
//! ```
//!
//! `SIM_DIR` must contain `input.cgyro`; diagnostics are appended to
//! `SIM_DIR/out.diag.csv`.

use std::path::PathBuf;
use std::process::exit;
use xg_comm::World;
use xg_sim::{load_deck, serial_simulation, DistTopology, History, Simulation};
use xg_tensor::ProcGrid;

fn usage() -> ! {
    eprintln!("usage: cgyro [--grid N1xN2] [--reports R] SIM_DIR");
    exit(2)
}

fn main() {
    let mut grid: Option<ProcGrid> = None;
    let mut reports = 1usize;
    let mut dir: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => {
                let v = it.next().unwrap_or_else(|| usage());
                let Some((a, b)) = v.split_once('x') else { usage() };
                let (Ok(n1), Ok(n2)) = (a.parse(), b.parse()) else { usage() };
                grid = Some(ProcGrid::new(n1, n2));
            }
            "--reports" => {
                reports = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            d => dir = Some(PathBuf::from(d)),
        }
        let _ = &arg;
    }
    let dir = dir.unwrap_or_else(|| usage());
    let input = match load_deck(&dir.join("input.cgyro")) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("cgyro: {e}");
            exit(1);
        }
    };
    let start = std::time::Instant::now();
    let mut moments_table = String::new();
    let hist = match grid {
        None | Some(ProcGrid { n1: 1, n2: 1 }) => {
            let mut sim = serial_simulation(&input);
            let mut hist = History::new();
            for _ in 0..reports {
                hist.push(sim.run_report_step());
            }
            let m = xg_sim::species_moments(&mut sim);
            moments_table = xg_sim::moments_table(&m);
            hist
        }
        Some(grid) => {
            let input2 = input.clone();
            let results = World::new(grid.size()).run(move |comm| {
                let topo = DistTopology::cgyro(&input2, grid, comm);
                let lead = topo.sim_comm().rank() == 0;
                let mut sim = Simulation::new(input2.clone(), topo);
                let mut hist = History::new();
                for _ in 0..reports {
                    hist.push(sim.run_report_step());
                }
                (lead, hist)
            });
            results
                .into_iter()
                .find_map(|(lead, h)| lead.then_some(h))
                .expect("rank 0 exists")
        }
    };
    let wall = start.elapsed().as_secs_f64();
    let path = dir.join("out.diag.csv");
    if let Err(e) = std::fs::write(&path, hist.to_csv()) {
        eprintln!("cgyro: cannot write {}: {e}", path.display());
        exit(1);
    }
    let last = hist.entries().last().expect("at least one report");
    println!(
        "t={:8.3}  |phi|^2={:.4e}  Q={:+.4e}  ({} reports in {:.2}s) -> {}",
        last.time,
        last.field_energy,
        last.heat_flux,
        reports,
        wall,
        path.display()
    );
    if !moments_table.is_empty() {
        println!("\nper-species moments:\n{moments_table}");
    }
}
