//! Distributed topology over the `xg-comm` substrate.
//!
//! Implements the paper's two communicator wirings with one code path:
//!
//! * **CGYRO mode** ([`DistTopology::cgyro`]): the communicator that splits
//!   `nv` in the str phase is *reused* for the str↔coll AllToAll transpose
//!   (Figure 1) — `coll_comm` is literally a clone of `nv_comm`, and the
//!   `cmat` slice follows the per-simulation `nc` decomposition over the
//!   `n1` ranks.
//! * **Shared-coll (XGYRO) mode** ([`DistTopology::with_shared_coll`]): the
//!   coll communicator is a separate, wider group spanning the same
//!   toroidal slice of **all k simulations** (Figure 3); `cmat` follows the
//!   ensemble-wide `nc` decomposition over `k·n1` ranks, so each rank holds
//!   1/k of the per-simulation slice and applies it to all k simulations'
//!   buffers during the exchange.
//!
//! The collision exchange with `k = 1` degenerates exactly to CGYRO's
//! transpose — matching the paper's description of XGYRO as "a thin MPI
//! initialization and partitioning layer around the CGYRO codebase, with
//! minor changes to the latter".

use crate::cmat::CollisionConstants;
use crate::collision::CollisionOperator;
use crate::geometry::Geometry;
use crate::grid::{ConfigGrid, VelocityGrid};
use crate::input::{CgyroInput, ReduceAlgo};
use crate::nonlinear::NlKernel;
use crate::pool::{SendPtr, StepPool};
use crate::stepper::Topology;
use xg_comm::Communicator;
use xg_costmodel::{
    best_allreduce_algo, AllReduceAlgo, CollectiveShape, KernelChoice, MachineModel, Placement,
};
use xg_linalg::Complex64;
use xg_tensor::{
    pack_coll_profiles_block, pack_coll_profiles_slice, pack_nl_block, pack_str_block,
    pack_str_slice, unpack_into_coll_profiles, unpack_into_coll_profiles_slice, unpack_into_nl,
    unpack_into_str, unpack_into_str_from_nl, unpack_into_str_slice, Decomp1D, PhaseLayout,
    ProcGrid, RaggedDecomp, Tensor3,
};

/// The str-phase reduction algorithm a topology actually runs (the deck's
/// [`ReduceAlgo::Auto`] resolved against the cost model at build time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedReduceAlgo {
    /// One fused AllReduce over the packed moments per RK stage.
    Fused,
    /// Reduce-scatter the packed buffer, allgather the owned blocks.
    ReduceScatter,
    /// Legacy per-moment AllReduce calls.
    Unfused,
}

impl std::fmt::Display for ResolvedReduceAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResolvedReduceAlgo::Fused => "fused",
            ResolvedReduceAlgo::ReduceScatter => "reduce-scatter",
            ResolvedReduceAlgo::Unfused => "unfused",
        })
    }
}

/// Environment override for the str-phase reduction algorithm (same values
/// as the deck's `REDUCE_ALGO` key; takes precedence over the deck).
pub const REDUCE_ALGO_ENV: &str = "XGYRO_REDUCE_ALGO";

/// Environment switch for the pipelined (overlapped) collision exchange:
/// set to `0` to force the all-at-once transpose.
pub const COLL_PIPELINE_ENV: &str = "XGYRO_COLL_PIPELINE";

/// Distributed topology for one rank of one simulation.
pub struct DistTopology {
    layout: PhaseLayout,
    sim_comm: Communicator,
    nv_comm: Communicator,
    nt_comm: Communicator,
    coll_comm: Communicator,
    /// `nc` decomposition over the coll communicator (per-sim in CGYRO
    /// mode, ensemble-wide in XGYRO mode). Possibly ragged: a planner can
    /// assign uneven row counts to the coll positions (bitwise-neutral —
    /// each `(ic, it)` matvec is independent, only cut points move).
    coll_nc_decomp: RaggedDecomp,
    /// Number of simulations sharing the coll communicator (k).
    sims_in_coll: usize,
    cmat: CollisionConstants,
    nl: NlKernel,
    /// Profile-contiguous coll-side staging: shape `(my_nc, nt_loc, k·nv)`
    /// — the k members' velocity profiles at one `(ic, it)` stacked into
    /// one contiguous multi-RHS block.
    coll_in: Tensor3<Complex64>,
    coll_out: Tensor3<Complex64>,
    /// Persistent forward-transpose send buffers, recycled from the
    /// previous step's reverse-transpose receive blocks (per-peer sizes
    /// match exactly between the two directions).
    fwd_send: Vec<Vec<Complex64>>,
    /// Spare per-peer block sets for the pipelined exchange (slice `i+1`'s
    /// forward send is packed while slice `i` is still in flight, so two
    /// block sets rotate through the pipeline).
    spare_blocks: Vec<Vec<Vec<Complex64>>>,
    /// Worker pool for the panel loop over `(ic, it)`.
    pool: StepPool,
    /// Str-phase reduction algorithm resolved at build time (env >
    /// deck > cost model).
    reduce_algo: ResolvedReduceAlgo,
    /// Collision kernel (SIMD level + L2 row-tile height) autotuned at
    /// build time for this rank's (nv, k) shape; bitwise-neutral.
    kernel: KernelChoice,
    /// Second coll communicator for the pipelined exchange: the reverse
    /// transpose of slice `i` is in flight while the forward transpose of
    /// slice `i+1` runs on `coll_comm` (the rendezvous slots allow one
    /// outstanding op per communicator — the double-buffering trick real
    /// MPI codes implement with a second `MPI_Comm`).
    coll_rev_comm: Communicator,
    /// Overlap the per-slice collision exchange with panel compute.
    pipeline: bool,
}

impl DistTopology {
    /// CGYRO wiring: carve `nv`/`nt` communicators out of the simulation
    /// communicator and reuse the `nv` communicator for coll.
    pub fn cgyro(input: &CgyroInput, grid: ProcGrid, sim_comm: Communicator) -> Self {
        assert_eq!(
            sim_comm.size(),
            grid.size(),
            "simulation communicator must match the process grid"
        );
        let (i1, i2) = grid.coords(sim_comm.rank());
        let nv_comm = sim_comm.split(i2 as u64, i1 as u64, "nv");
        let nt_comm = sim_comm.split(i1 as u64, i2 as u64, "nt");
        // Figure 1: the same communicator serves the str AllReduce and the
        // str↔coll transpose.
        let coll_comm = nv_comm.clone();
        Self::build(input, grid, sim_comm, nv_comm, nt_comm, coll_comm, 1, None)
    }

    /// XGYRO wiring: the caller supplies the per-simulation communicators
    /// and a separate coll communicator spanning `k` simulations' rows
    /// (constructed by `xgyro-core::topology`). The coll communicator's
    /// rank order must be `(sim, i1)` lexicographic: `r = sim·n1 + i1`.
    pub fn with_shared_coll(
        input: &CgyroInput,
        grid: ProcGrid,
        sim_comm: Communicator,
        nv_comm: Communicator,
        nt_comm: Communicator,
        coll_comm: Communicator,
        sims_in_coll: usize,
    ) -> Self {
        Self::build(input, grid, sim_comm, nv_comm, nt_comm, coll_comm, sims_in_coll, None)
    }

    /// XGYRO wiring with planned (possibly unbalanced) coll-phase `nc`
    /// cuts: `coll_cuts[p]` rows of the shared constant tensor go to coll
    /// position `p` (`p = sim·n1 + i1`). `None` or balanced cuts reproduce
    /// [`DistTopology::with_shared_coll`] exactly. The cut list must have
    /// one entry per coll rank and sum to `nc`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_shared_coll_cuts(
        input: &CgyroInput,
        grid: ProcGrid,
        sim_comm: Communicator,
        nv_comm: Communicator,
        nt_comm: Communicator,
        coll_comm: Communicator,
        sims_in_coll: usize,
        coll_cuts: Option<&[usize]>,
    ) -> Self {
        Self::build(input, grid, sim_comm, nv_comm, nt_comm, coll_comm, sims_in_coll, coll_cuts)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        input: &CgyroInput,
        grid: ProcGrid,
        sim_comm: Communicator,
        nv_comm: Communicator,
        nt_comm: Communicator,
        coll_comm: Communicator,
        sims_in_coll: usize,
        coll_cuts: Option<&[usize]>,
    ) -> Self {
        let dims = input.dims();
        let layout = PhaseLayout::new(dims, grid, sim_comm.rank());
        let (i1, i2) = layout.coords();
        assert_eq!(nv_comm.size(), grid.n1, "nv communicator must have n1 ranks");
        assert_eq!(nt_comm.size(), grid.n2, "nt communicator must have n2 ranks");
        assert_eq!(nv_comm.rank(), i1, "nv communicator rank must equal i1");
        assert_eq!(nt_comm.rank(), i2, "nt communicator rank must equal i2");
        assert_eq!(
            coll_comm.size(),
            sims_in_coll * grid.n1,
            "coll communicator must span k·n1 ranks"
        );
        assert_eq!(
            coll_comm.rank() % grid.n1,
            i1,
            "coll communicator rank order must be (sim, i1) lexicographic"
        );

        let coll_nc_decomp = match coll_cuts {
            None => RaggedDecomp::balanced(dims.nc, coll_comm.size()),
            Some(cuts) => {
                assert_eq!(
                    cuts.len(),
                    coll_comm.size(),
                    "coll cuts must have one entry per coll rank"
                );
                let d = RaggedDecomp::from_counts(cuts);
                assert_eq!(d.total(), dims.nc, "coll cuts must sum to nc");
                d
            }
        };
        // This rank's cmat slice: ensemble nc block × local nt range.
        let v = VelocityGrid::new(input);
        let cfg = ConfigGrid::new(input);
        let geo = Geometry::new(input, &cfg);
        let op = CollisionOperator::build(input, &v);
        let cmat = CollisionConstants::build(
            input,
            &v,
            &cfg,
            &geo,
            &op,
            coll_nc_decomp.range(coll_comm.rank()),
            layout.nt_range(),
        );
        let nl = NlKernel::new(input);
        let my_nc = coll_nc_decomp.count(coll_comm.rank());
        let ntl = layout.nt_range().len();
        let lanes = sims_in_coll * dims.nv;
        let p = coll_comm.size();

        let reduce_algo = Self::resolve_reduce_algo(input, &nv_comm, ntl);
        // One-shot collision-kernel autotune for this rank's (nv, k)
        // shape — the compute-side analog of resolve_reduce_algo. Cached
        // per process, so k topologies of one ensemble tune once.
        let kernel = xg_costmodel::tune_collision_kernel(dims.nv, sims_in_coll);
        xg_obs::set_collision_kernel(&kernel.to_string());
        let pipeline = std::env::var(COLL_PIPELINE_ENV).map(|v| v != "0").unwrap_or(true);
        // The pipelined exchange double-buffers across two communicators
        // (one outstanding op each). Built unconditionally — split is a
        // collective over coll_comm, so every member must participate
        // regardless of its own pipeline setting; reusing the parent label
        // keeps trace-label assertions unchanged.
        let coll_rev_comm = coll_comm.split(0, coll_comm.rank() as u64, coll_comm.label());

        Self {
            layout,
            sim_comm,
            nv_comm,
            nt_comm,
            coll_comm,
            coll_nc_decomp,
            sims_in_coll,
            cmat,
            nl,
            coll_in: Tensor3::new(my_nc, ntl, lanes),
            coll_out: Tensor3::new(my_nc, ntl, lanes),
            fwd_send: (0..p).map(|_| Vec::new()).collect(),
            spare_blocks: Vec::new(),
            pool: StepPool::from_env(),
            reduce_algo,
            kernel,
            coll_rev_comm,
            pipeline,
        }
    }

    /// Resolve the str-phase reduction algorithm: environment override >
    /// deck request > cost-model auto-selection with the actual collective
    /// shape (the `nv` communicator's global members under the reference
    /// machine's placement) and the actual fused message size.
    fn resolve_reduce_algo(
        input: &CgyroInput,
        nv_comm: &Communicator,
        ntl: usize,
    ) -> ResolvedReduceAlgo {
        let requested = match std::env::var(REDUCE_ALGO_ENV) {
            Ok(v) => v
                .parse::<ReduceAlgo>()
                .unwrap_or_else(|e| panic!("{REDUCE_ALGO_ENV}: {e}")),
            Err(_) => input.reduce_algo,
        };
        match requested {
            ReduceAlgo::Fused => ResolvedReduceAlgo::Fused,
            ReduceAlgo::ReduceScatter => ResolvedReduceAlgo::ReduceScatter,
            ReduceAlgo::Unfused => ResolvedReduceAlgo::Unfused,
            ReduceAlgo::Auto => {
                if nv_comm.size() <= 1 {
                    // No communication either way; fused skips the split
                    // bookkeeping.
                    return ResolvedReduceAlgo::Fused;
                }
                let sections = if input.beta_e > 0.0 { 3 } else { 2 };
                let bytes =
                    (sections * input.dims().nc * ntl * std::mem::size_of::<Complex64>()) as u64;
                let m = MachineModel::frontier_like();
                let shape = CollectiveShape::from_members(
                    nv_comm.members(),
                    Placement { ranks_per_node: m.ranks_per_node },
                );
                // The ring model *is* reduce-scatter + allgather; the other
                // regimes favor a single fused collective.
                match best_allreduce_algo(&m, shape, bytes) {
                    AllReduceAlgo::Ring => ResolvedReduceAlgo::ReduceScatter,
                    _ => ResolvedReduceAlgo::Fused,
                }
            }
        }
    }

    /// The per-simulation communicator.
    pub fn sim_comm(&self) -> &Communicator {
        &self.sim_comm
    }

    /// The `nv`-splitting (str AllReduce) communicator.
    pub fn nv_comm(&self) -> &Communicator {
        &self.nv_comm
    }

    /// The toroidal communicator.
    pub fn nt_comm(&self) -> &Communicator {
        &self.nt_comm
    }

    /// The coll communicator (== `nv_comm` in CGYRO mode).
    pub fn coll_comm(&self) -> &Communicator {
        &self.coll_comm
    }

    /// Number of simulations sharing the coll exchange.
    pub fn sims_in_coll(&self) -> usize {
        self.sims_in_coll
    }

    /// This rank's slice of the constant tensor.
    pub fn cmat(&self) -> &CollisionConstants {
        &self.cmat
    }

    /// Resize the collision worker pool (output is bitwise independent of
    /// the width; used by determinism tests).
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = StepPool::new(threads);
    }

    /// Collision worker-pool width (including the calling thread).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The str-phase reduction algorithm this topology runs.
    pub fn reduce_algo(&self) -> ResolvedReduceAlgo {
        self.reduce_algo
    }

    /// The autotuned collision kernel this topology runs.
    pub fn kernel_choice(&self) -> KernelChoice {
        self.kernel
    }

    /// Pin the str-phase reduction algorithm (equivalence tests pin each
    /// variant explicitly instead of mutating process-global environment).
    pub fn set_reduce_algo(&mut self, algo: ResolvedReduceAlgo) {
        self.reduce_algo = algo;
    }

    /// Whether the collision exchange pipelines per toroidal slice.
    pub fn coll_pipeline(&self) -> bool {
        self.pipeline
    }

    /// Enable/disable the pipelined collision exchange (bitwise-neutral;
    /// tests compare both paths on the same deck).
    pub fn set_coll_pipeline(&mut self, on: bool) {
        self.pipeline = on;
    }

    /// Pipelined collision exchange: process one toroidal slice at a time,
    /// overlapping the forward transpose of slice `i+1` (on `coll_comm`)
    /// and the reverse transpose of slice `i−1` (on `coll_rev_comm`) with
    /// the panel application of slice `i`. Per-slice kernels are exact
    /// restrictions of the full-block wire format, and the panel loop
    /// partitions identically, so the result is bitwise equal to
    /// [`DistTopology::collision_step_blocked`].
    fn collision_step_pipelined(&mut self, h: &mut Tensor3<Complex64>) {
        let p = self.coll_comm.size();
        let n1 = self.nv_comm.size();
        let k = self.sims_in_coll;
        let dims = self.layout.dims();
        let nv_decomp = self.layout.nv_decomp();
        let ntl = self.layout.nt_range().len();
        let my_nc = self.coll_nc_decomp.count(self.coll_comm.rank());
        let lanes = k * dims.nv;
        let elem = std::mem::size_of::<Complex64>() as u64;
        let mut drained: u64 = 0;

        // Three per-peer block sets rotate through the pipeline: at the
        // moment slice `i+1`'s forward send is packed, one set is in the
        // in-flight reverse exchange of slice `i−1`, one holds slice `i`'s
        // just-received blocks, and one must be free to pack into. All
        // three persist across steps via `spare_blocks`/`fwd_send`.
        let mut spares = std::mem::take(&mut self.spare_blocks);
        spares.push(std::mem::take(&mut self.fwd_send));
        while spares.len() < 3 {
            spares.push((0..p).map(|_| Vec::new()).collect());
        }
        fn pack_fwd(
            h: &Tensor3<Complex64>,
            nc_decomp: &RaggedDecomp,
            itl: usize,
            spares: &mut Vec<Vec<Vec<Complex64>>>,
            drained: &mut u64,
            elem: u64,
        ) -> Vec<Vec<Complex64>> {
            let mut send = spares.pop().expect("pipeline block set available");
            for (q, buf) in send.iter_mut().enumerate() {
                *drained += buf.capacity() as u64 * elem;
                buf.clear();
                pack_str_slice(h, nc_decomp.range(q), itl, buf);
            }
            send
        }

        // Prologue: slice 0's forward exchange has nothing to overlap.
        let send0 = pack_fwd(h, &self.coll_nc_decomp, 0, &mut spares, &mut drained, elem);
        let mut fwd_pending = Some(self.coll_comm.start_all_to_all_v_take(send0));
        let mut rev_pending: Option<xg_comm::PendingOp<Vec<Vec<Complex64>>>> = None;
        let mut slice_in = Tensor3::new(my_nc, 1, lanes);
        let mut slice_out = Tensor3::new(my_nc, 1, lanes);

        for itl in 0..ntl {
            let recv = fwd_pending.take().expect("forward exchange in flight").wait();
            // Launch slice itl+1's forward transpose before computing on
            // slice itl, so the exchange rides under the panel loop.
            if itl + 1 < ntl {
                let send =
                    pack_fwd(h, &self.coll_nc_decomp, itl + 1, &mut spares, &mut drained, elem);
                fwd_pending = Some(self.coll_comm.start_all_to_all_v_take(send));
            }

            for (r, block) in recv.iter().enumerate() {
                unpack_into_coll_profiles_slice(
                    block,
                    nv_decomp.range(r % n1),
                    (r / n1) * dims.nv,
                    0,
                    &mut slice_in,
                );
            }
            let cmat = &self.cmat;
            let input_ref = &slice_in;
            let kernel = self.kernel;
            // Tile-granular: one task per (ic_loc, row-tile), the panel
            // addressed with the true toroidal slice. Even a single-slice
            // step with few ic pairs keeps every pool thread busy.
            let tiles = dims.nv.div_ceil(kernel.tile_rows.max(1));
            let out = SendPtr(slice_out.as_mut_slice().as_mut_ptr());
            self.pool.for_each_task(my_nc * tiles, |t| {
                let (ic, tile) = (t / tiles, t % tiles);
                let r0 = tile * kernel.tile_rows;
                let r1 = (r0 + kernel.tile_rows).min(dims.nv);
                // SAFETY: tasks write disjoint rows of disjoint per-ic
                // lane blocks; slice_out outlives the blocking round.
                unsafe {
                    cmat.apply_multi_rows(
                        ic,
                        itl,
                        input_ref.line(ic, 0),
                        out.add(ic * lanes),
                        k,
                        r0..r1,
                        kernel.level,
                    );
                }
            });

            // Recycle the forward receive blocks as the reverse send set
            // (per-peer sizes match exactly between directions).
            let mut send_back = recv;
            for (r, buf) in send_back.iter_mut().enumerate() {
                drained += buf.capacity() as u64 * elem;
                buf.clear();
                pack_coll_profiles_slice(
                    &slice_out,
                    nv_decomp.range(r % n1),
                    (r / n1) * dims.nv,
                    0,
                    buf,
                );
            }
            // Drain the previous slice's reverse exchange before launching
            // this one (one outstanding op on coll_rev_comm).
            if let Some(pending) = rev_pending.take() {
                let back = pending.wait();
                for (q, block) in back.iter().enumerate() {
                    unpack_into_str_slice(block, self.coll_nc_decomp.range(q), itl - 1, h);
                }
                spares.push(back);
            }
            rev_pending = Some(self.coll_rev_comm.start_all_to_all_v_take(send_back));
        }

        // Epilogue: the last slice's reverse exchange.
        let back = rev_pending.expect("ntl >= 1").wait();
        for (q, block) in back.iter().enumerate() {
            unpack_into_str_slice(block, self.coll_nc_decomp.range(q), ntl - 1, h);
        }
        self.fwd_send = back;
        self.spare_blocks = spares;
        self.coll_comm.log().note_drained_capacity(drained);
    }

    /// The all-at-once collision exchange (two full transposes bracketing
    /// one batched panel pass). Kept as the non-overlapped reference path;
    /// [`Topology::collision_step`] dispatches here when pipelining is off,
    /// `nt_loc == 1`, or the coll group is a single rank.
    fn collision_step_blocked(&mut self, h: &mut Tensor3<Complex64>) {
        let n1 = self.nv_comm.size();
        let k = self.sims_in_coll;
        let dims = self.layout.dims();
        let nv_decomp = self.layout.nv_decomp();
        let ntl = self.layout.nt_range().len();
        let elem = std::mem::size_of::<Complex64>() as u64;

        // Forward transpose: send my simulation's nc blocks to every coll
        // peer; receive all k simulations' nv blocks for my nc slice. The
        // send buffers are last step's reverse-receive blocks, drained and
        // refilled (per-peer sizes match exactly between directions).
        let mut send = std::mem::take(&mut self.fwd_send);
        let mut drained: u64 = 0;
        for (q, buf) in send.iter_mut().enumerate() {
            drained += buf.capacity() as u64 * elem;
            buf.clear();
            pack_str_block(h, self.coll_nc_decomp.range(q), buf);
        }
        let recv = self.coll_comm.all_to_all_v_take(send);

        // Unpack all k simulations' blocks into one profile-contiguous
        // tensor: member s's velocity profile occupies lanes
        // [s·nv, (s+1)·nv) of the contiguous line at each (ic, it).
        for (r, block) in recv.iter().enumerate() {
            unpack_into_coll_profiles(
                block,
                nv_decomp.range(r % n1),
                (r / n1) * dims.nv,
                &mut self.coll_in,
            );
        }

        // Apply this rank's cmat slice to every simulation's profile in
        // batched multi-RHS row tiles per (ic, it): each L2-sized panel
        // tile is streamed once through all k members' profiles (the
        // arithmetic-intensity bonus of sharing), and the (pair × tile)
        // tasks fan out over the worker pool so uneven pair counts no
        // longer strand threads.
        let cmat = &self.cmat;
        let coll_in = &self.coll_in;
        let kernel = self.kernel;
        let lanes = k * dims.nv;
        let my_nc = self.coll_nc_decomp.count(self.coll_comm.rank());
        let tiles = dims.nv.div_ceil(kernel.tile_rows.max(1));
        let out = SendPtr(self.coll_out.as_mut_slice().as_mut_ptr());
        self.pool.for_each_task(my_nc * ntl * tiles, |t| {
            let (pair, tile) = (t / tiles, t % tiles);
            let (ic, it) = (pair / ntl, pair % ntl);
            let r0 = tile * kernel.tile_rows;
            let r1 = (r0 + kernel.tile_rows).min(dims.nv);
            // SAFETY: tasks write disjoint rows of disjoint per-pair lane
            // blocks; coll_out outlives the blocking round.
            unsafe {
                cmat.apply_multi_rows(
                    ic,
                    it,
                    coll_in.line(ic, it),
                    out.add(pair * lanes),
                    k,
                    r0..r1,
                    kernel.level,
                );
            }
        });

        // Reverse transpose: return each simulation's blocks to its owners,
        // recycling the forward receive blocks as send buffers.
        let mut send_back = recv;
        for (r, buf) in send_back.iter_mut().enumerate() {
            drained += buf.capacity() as u64 * elem;
            buf.clear();
            pack_coll_profiles_block(
                &self.coll_out,
                nv_decomp.range(r % n1),
                (r / n1) * dims.nv,
                buf,
            );
        }
        let recv_back = self.coll_comm.all_to_all_v_take(send_back);
        for (q, block) in recv_back.iter().enumerate() {
            unpack_into_str(block, self.coll_nc_decomp.range(q), h);
        }
        // The reverse receive blocks become the next step's forward send
        // buffers; account the recycled capacity.
        self.fwd_send = recv_back;
        self.coll_comm.log().note_drained_capacity(drained);
    }
}

impl Topology for DistTopology {
    fn reduce_moment(&self, buf: &mut [Complex64]) {
        self.nv_comm
            .log()
            .note_unfused_reduction(std::mem::size_of_val::<[Complex64]>(buf) as u64);
        self.nv_comm.all_reduce_sum_complex(buf);
    }

    fn reduce_moment_block(&self, buf: &mut [Complex64], moments: usize) {
        let bytes = std::mem::size_of_val::<[Complex64]>(buf) as u64;
        match self.reduce_algo {
            ResolvedReduceAlgo::Fused => {
                // One collective per RK stage carrying every moment.
                self.nv_comm.log().note_fused_reduction(moments as u64, bytes);
                self.nv_comm.all_reduce_sum_complex(buf);
            }
            ResolvedReduceAlgo::ReduceScatter => {
                // Reduce-scatter the packed buffer so each nv rank sums only
                // its block, then allgather the blocks back — the assembled
                // result is the same rank-order sum, bitwise.
                self.nv_comm.log().note_fused_reduction(moments as u64, bytes);
                let p = self.nv_comm.size();
                let d = Decomp1D::new(buf.len(), p);
                let counts: Vec<usize> = (0..p).map(|r| d.count(r)).collect();
                let mine = self.nv_comm.reduce_scatter_sum_complex(buf, &counts);
                let full = self.nv_comm.all_gather_into_flat(&mine);
                buf.copy_from_slice(&full);
            }
            ResolvedReduceAlgo::Unfused => {
                // Legacy schedule: one AllReduce per moment.
                let n = buf.len() / moments.max(1);
                for chunk in buf.chunks_mut(n.max(1)).take(moments) {
                    self.reduce_moment(chunk);
                }
            }
        }
    }

    fn collision_step(&mut self, h: &mut Tensor3<Complex64>) {
        debug_assert_eq!(self.coll_comm.size(), self.sims_in_coll * self.nv_comm.size());
        let ntl = self.layout.nt_range().len();
        // Pipelining needs >1 slice to overlap and >1 rank to exchange
        // with; otherwise the blocked path is strictly cheaper.
        if self.pipeline && ntl > 1 && self.coll_comm.size() > 1 {
            self.collision_step_pipelined(h);
        } else {
            self.collision_step_blocked(h);
        }
    }

    fn nl_term(
        &mut self,
        h: &Tensor3<Complex64>,
        phi: &[Complex64],
        out: &mut Tensor3<Complex64>,
    ) {
        if self.nl.is_disabled() {
            out.fill(Complex64::ZERO);
            return;
        }
        let dims = self.layout.dims();
        let n2 = self.nt_comm.size();
        let nc2_decomp = Decomp1D::new(dims.nc, n2);
        let nt_decomp = self.layout.nt_decomp();
        let my_i2 = self.nt_comm.rank();
        let nvl = h.shape().1;

        // Transpose str -> nl over the toroidal communicator.
        let send: Vec<Vec<Complex64>> = (0..n2)
            .map(|j| {
                let mut buf = Vec::new();
                pack_str_block(h, nc2_decomp.range(j), &mut buf);
                buf
            })
            .collect();
        let recv = self.nt_comm.all_to_all_v(send);
        let mut h_nl = Tensor3::new(nc2_decomp.count(my_i2), nvl, dims.nt);
        for (j, block) in recv.iter().enumerate() {
            unpack_into_nl(block, nt_decomp.range(j), &mut h_nl);
        }

        // Complete phi in the toroidal dimension (small gather).
        let phi_blocks = self.nt_comm.all_gather(phi);
        let mut phi_full = vec![Complex64::ZERO; dims.nc * dims.nt];
        for (j, block) in phi_blocks.iter().enumerate() {
            let r = nt_decomp.range(j);
            let ntl_j = r.len();
            for ic in 0..dims.nc {
                for (itl, itor) in r.clone().enumerate() {
                    phi_full[ic * dims.nt + itor] = block[ic * ntl_j + itl];
                }
            }
        }

        // Evaluate and transpose back.
        let mut nl_out = Tensor3::new(nc2_decomp.count(my_i2), nvl, dims.nt);
        self.nl.eval(&h_nl, &phi_full, nc2_decomp.start(my_i2), &mut nl_out);
        let send_back: Vec<Vec<Complex64>> = (0..n2)
            .map(|j| {
                let mut buf = Vec::new();
                pack_nl_block(&nl_out, nt_decomp.range(j), &mut buf);
                buf
            })
            .collect();
        let recv_back = self.nt_comm.all_to_all_v(send_back);
        for (j, block) in recv_back.iter().enumerate() {
            unpack_into_str_from_nl(block, nc2_decomp.range(j), out);
        }
    }

    fn reduce_sim_scalars(&self, vals: &mut [f64]) {
        self.sim_comm.all_reduce_sum_f64(vals);
    }

    fn reduce_sim_max(&self, vals: &mut [f64]) {
        self.sim_comm.all_reduce_max_f64(vals);
    }

    fn nv_root(&self) -> bool {
        self.nv_comm.rank() == 0
    }

    fn set_phase(&self, phase: &str) {
        self.sim_comm.set_phase(phase);
    }

    fn layout(&self) -> PhaseLayout {
        self.layout
    }
}
