//! Distributed topology over the `xg-comm` substrate.
//!
//! Implements the paper's two communicator wirings with one code path:
//!
//! * **CGYRO mode** ([`DistTopology::cgyro`]): the communicator that splits
//!   `nv` in the str phase is *reused* for the str↔coll AllToAll transpose
//!   (Figure 1) — `coll_comm` is literally a clone of `nv_comm`, and the
//!   `cmat` slice follows the per-simulation `nc` decomposition over the
//!   `n1` ranks.
//! * **Shared-coll (XGYRO) mode** ([`DistTopology::with_shared_coll`]): the
//!   coll communicator is a separate, wider group spanning the same
//!   toroidal slice of **all k simulations** (Figure 3); `cmat` follows the
//!   ensemble-wide `nc` decomposition over `k·n1` ranks, so each rank holds
//!   1/k of the per-simulation slice and applies it to all k simulations'
//!   buffers during the exchange.
//!
//! The collision exchange with `k = 1` degenerates exactly to CGYRO's
//! transpose — matching the paper's description of XGYRO as "a thin MPI
//! initialization and partitioning layer around the CGYRO codebase, with
//! minor changes to the latter".

use crate::cmat::CollisionConstants;
use crate::collision::CollisionOperator;
use crate::geometry::Geometry;
use crate::grid::{ConfigGrid, VelocityGrid};
use crate::input::CgyroInput;
use crate::nonlinear::NlKernel;
use crate::stepper::Topology;
use xg_comm::Communicator;
use xg_linalg::Complex64;
use xg_tensor::{
    pack_coll_block, pack_nl_block, pack_str_block, unpack_into_coll, unpack_into_nl,
    unpack_into_str, unpack_into_str_from_nl, Decomp1D, PhaseLayout, ProcGrid, Tensor3,
};

/// Distributed topology for one rank of one simulation.
pub struct DistTopology {
    layout: PhaseLayout,
    sim_comm: Communicator,
    nv_comm: Communicator,
    nt_comm: Communicator,
    coll_comm: Communicator,
    /// `nc` decomposition over the coll communicator (per-sim in CGYRO
    /// mode, ensemble-wide in XGYRO mode).
    coll_nc_decomp: Decomp1D,
    /// Number of simulations sharing the coll communicator (k).
    sims_in_coll: usize,
    cmat: CollisionConstants,
    nl: NlKernel,
    profile: Vec<Complex64>,
    scratch: Vec<Complex64>,
}

impl DistTopology {
    /// CGYRO wiring: carve `nv`/`nt` communicators out of the simulation
    /// communicator and reuse the `nv` communicator for coll.
    pub fn cgyro(input: &CgyroInput, grid: ProcGrid, sim_comm: Communicator) -> Self {
        assert_eq!(
            sim_comm.size(),
            grid.size(),
            "simulation communicator must match the process grid"
        );
        let (i1, i2) = grid.coords(sim_comm.rank());
        let nv_comm = sim_comm.split(i2 as u64, i1 as u64, "nv");
        let nt_comm = sim_comm.split(i1 as u64, i2 as u64, "nt");
        // Figure 1: the same communicator serves the str AllReduce and the
        // str↔coll transpose.
        let coll_comm = nv_comm.clone();
        Self::build(input, grid, sim_comm, nv_comm, nt_comm, coll_comm, 1)
    }

    /// XGYRO wiring: the caller supplies the per-simulation communicators
    /// and a separate coll communicator spanning `k` simulations' rows
    /// (constructed by `xgyro-core::topology`). The coll communicator's
    /// rank order must be `(sim, i1)` lexicographic: `r = sim·n1 + i1`.
    pub fn with_shared_coll(
        input: &CgyroInput,
        grid: ProcGrid,
        sim_comm: Communicator,
        nv_comm: Communicator,
        nt_comm: Communicator,
        coll_comm: Communicator,
        sims_in_coll: usize,
    ) -> Self {
        Self::build(input, grid, sim_comm, nv_comm, nt_comm, coll_comm, sims_in_coll)
    }

    fn build(
        input: &CgyroInput,
        grid: ProcGrid,
        sim_comm: Communicator,
        nv_comm: Communicator,
        nt_comm: Communicator,
        coll_comm: Communicator,
        sims_in_coll: usize,
    ) -> Self {
        let dims = input.dims();
        let layout = PhaseLayout::new(dims, grid, sim_comm.rank());
        let (i1, i2) = layout.coords();
        assert_eq!(nv_comm.size(), grid.n1, "nv communicator must have n1 ranks");
        assert_eq!(nt_comm.size(), grid.n2, "nt communicator must have n2 ranks");
        assert_eq!(nv_comm.rank(), i1, "nv communicator rank must equal i1");
        assert_eq!(nt_comm.rank(), i2, "nt communicator rank must equal i2");
        assert_eq!(
            coll_comm.size(),
            sims_in_coll * grid.n1,
            "coll communicator must span k·n1 ranks"
        );
        assert_eq!(
            coll_comm.rank() % grid.n1,
            i1,
            "coll communicator rank order must be (sim, i1) lexicographic"
        );

        let coll_nc_decomp = Decomp1D::new(dims.nc, coll_comm.size());
        // This rank's cmat slice: ensemble nc block × local nt range.
        let v = VelocityGrid::new(input);
        let cfg = ConfigGrid::new(input);
        let geo = Geometry::new(input, &cfg);
        let op = CollisionOperator::build(input, &v);
        let cmat = CollisionConstants::build(
            input,
            &v,
            &cfg,
            &geo,
            &op,
            coll_nc_decomp.range(coll_comm.rank()),
            layout.nt_range(),
        );
        let nl = NlKernel::new(input);
        Self {
            layout,
            sim_comm,
            nv_comm,
            nt_comm,
            coll_comm,
            coll_nc_decomp,
            sims_in_coll,
            cmat,
            nl,
            profile: vec![Complex64::ZERO; dims.nv],
            scratch: vec![Complex64::ZERO; dims.nv],
        }
    }

    /// The per-simulation communicator.
    pub fn sim_comm(&self) -> &Communicator {
        &self.sim_comm
    }

    /// The `nv`-splitting (str AllReduce) communicator.
    pub fn nv_comm(&self) -> &Communicator {
        &self.nv_comm
    }

    /// The toroidal communicator.
    pub fn nt_comm(&self) -> &Communicator {
        &self.nt_comm
    }

    /// The coll communicator (== `nv_comm` in CGYRO mode).
    pub fn coll_comm(&self) -> &Communicator {
        &self.coll_comm
    }

    /// Number of simulations sharing the coll exchange.
    pub fn sims_in_coll(&self) -> usize {
        self.sims_in_coll
    }

    /// This rank's slice of the constant tensor.
    pub fn cmat(&self) -> &CollisionConstants {
        &self.cmat
    }
}

impl Topology for DistTopology {
    fn reduce_moment(&self, buf: &mut [Complex64]) {
        self.nv_comm.all_reduce_sum_complex(buf);
    }

    fn collision_step(&mut self, h: &mut Tensor3<Complex64>) {
        let p = self.coll_comm.size();
        let n1 = self.nv_comm.size();
        let k = self.sims_in_coll;
        debug_assert_eq!(p, k * n1);
        let dims = self.layout.dims();
        let nv_decomp = self.layout.nv_decomp();
        let ntl = self.layout.nt_range().len();
        let my_nc = self.coll_nc_decomp.count(self.coll_comm.rank());

        // Forward transpose: send my simulation's nc blocks to every coll
        // peer; receive all k simulations' nv blocks for my nc slice.
        let send: Vec<Vec<Complex64>> = (0..p)
            .map(|q| {
                let mut buf =
                    Vec::with_capacity(self.coll_nc_decomp.count(q) * h.shape().1 * ntl);
                pack_str_block(h, self.coll_nc_decomp.range(q), &mut buf);
                buf
            })
            .collect();
        let recv = self.coll_comm.all_to_all_v(send);

        let mut h_coll: Vec<Tensor3<Complex64>> =
            (0..k).map(|_| Tensor3::new(dims.nv, my_nc, ntl)).collect();
        for (r, block) in recv.iter().enumerate() {
            let s = r / n1;
            let i1 = r % n1;
            unpack_into_coll(block, nv_decomp.range(i1), &mut h_coll[s]);
        }

        // Apply this rank's cmat slice to every simulation's buffer — the
        // single stored tensor slice is reused k times (the arithmetic-
        // intensity bonus of sharing).
        for hc in h_coll.iter_mut() {
            for ic_loc in 0..my_nc {
                for itl in 0..ntl {
                    for iv in 0..dims.nv {
                        self.profile[iv] = hc[(iv, ic_loc, itl)];
                    }
                    self.cmat.apply(ic_loc, itl, &mut self.profile, &mut self.scratch);
                    for iv in 0..dims.nv {
                        hc[(iv, ic_loc, itl)] = self.profile[iv];
                    }
                }
            }
        }

        // Reverse transpose: return each simulation's blocks to its owners.
        let send_back: Vec<Vec<Complex64>> = (0..p)
            .map(|r| {
                let s = r / n1;
                let i1 = r % n1;
                let mut buf =
                    Vec::with_capacity(nv_decomp.count(i1) * my_nc * ntl);
                pack_coll_block(&h_coll[s], nv_decomp.range(i1), &mut buf);
                buf
            })
            .collect();
        let recv_back = self.coll_comm.all_to_all_v(send_back);
        for (q, block) in recv_back.iter().enumerate() {
            unpack_into_str(block, self.coll_nc_decomp.range(q), h);
        }
    }

    fn nl_term(
        &mut self,
        h: &Tensor3<Complex64>,
        phi: &[Complex64],
        out: &mut Tensor3<Complex64>,
    ) {
        if self.nl.is_disabled() {
            out.fill(Complex64::ZERO);
            return;
        }
        let dims = self.layout.dims();
        let n2 = self.nt_comm.size();
        let nc2_decomp = Decomp1D::new(dims.nc, n2);
        let nt_decomp = self.layout.nt_decomp();
        let my_i2 = self.nt_comm.rank();
        let nvl = h.shape().1;

        // Transpose str -> nl over the toroidal communicator.
        let send: Vec<Vec<Complex64>> = (0..n2)
            .map(|j| {
                let mut buf = Vec::new();
                pack_str_block(h, nc2_decomp.range(j), &mut buf);
                buf
            })
            .collect();
        let recv = self.nt_comm.all_to_all_v(send);
        let mut h_nl = Tensor3::new(nc2_decomp.count(my_i2), nvl, dims.nt);
        for (j, block) in recv.iter().enumerate() {
            unpack_into_nl(block, nt_decomp.range(j), &mut h_nl);
        }

        // Complete phi in the toroidal dimension (small gather).
        let phi_blocks = self.nt_comm.all_gather(phi);
        let mut phi_full = vec![Complex64::ZERO; dims.nc * dims.nt];
        for (j, block) in phi_blocks.iter().enumerate() {
            let r = nt_decomp.range(j);
            let ntl_j = r.len();
            for ic in 0..dims.nc {
                for (itl, itor) in r.clone().enumerate() {
                    phi_full[ic * dims.nt + itor] = block[ic * ntl_j + itl];
                }
            }
        }

        // Evaluate and transpose back.
        let mut nl_out = Tensor3::new(nc2_decomp.count(my_i2), nvl, dims.nt);
        self.nl.eval(&h_nl, &phi_full, nc2_decomp.start(my_i2), &mut nl_out);
        let send_back: Vec<Vec<Complex64>> = (0..n2)
            .map(|j| {
                let mut buf = Vec::new();
                pack_nl_block(&nl_out, nt_decomp.range(j), &mut buf);
                buf
            })
            .collect();
        let recv_back = self.nt_comm.all_to_all_v(send_back);
        for (j, block) in recv_back.iter().enumerate() {
            unpack_into_str_from_nl(block, nc2_decomp.range(j), out);
        }
    }

    fn reduce_sim_scalars(&self, vals: &mut [f64]) {
        self.sim_comm.all_reduce_sum_f64(vals);
    }

    fn reduce_sim_max(&self, vals: &mut [f64]) {
        self.sim_comm.all_reduce_max_f64(vals);
    }

    fn nv_root(&self) -> bool {
        self.nv_comm.rank() == 0
    }

    fn set_phase(&self, phase: &str) {
        self.sim_comm.set_phase(phase);
    }

    fn layout(&self) -> PhaseLayout {
        self.layout
    }
}
