//! Discretization grids: velocity space (pitch × energy × species),
//! configuration space (radial × poloidal), and toroidal mode numbers.
//!
//! The velocity grid flattens to the `nv` tensor dimension as
//! `iv = is·(n_xi·n_energy) + ie·n_xi + ix` and carries the quadrature
//! weights used by the field solve and by the collision operator's
//! conservation corrections. Pitch nodes/weights are Gauss–Legendre on
//! `ξ ∈ [−1, 1]`; energy nodes use a mapped Maxwellian-weighted quadrature
//! on `ε ∈ (0, ε_max)`.

use crate::input::CgyroInput;

/// Gauss–Legendre nodes and weights on `[-1, 1]` via Newton iteration on
/// the Legendre polynomial (standard Golub–Welsch-free construction).
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut x = vec![0.0; n];
    let mut w = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Initial guess (Chebyshev-like).
        let mut z = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        loop {
            // Evaluate P_n(z) and P'_n(z) by recurrence.
            let mut p0 = 1.0;
            let mut p1 = 0.0;
            for j in 0..n {
                let p2 = p1;
                p1 = p0;
                p0 = ((2 * j + 1) as f64 * z * p1 - j as f64 * p2) / (j + 1) as f64;
            }
            let dp = n as f64 * (z * p0 - p1) / (z * z - 1.0);
            let dz = p0 / dp;
            z -= dz;
            if dz.abs() < 1e-15 {
                let mut p0b = 1.0;
                let mut p1b = 0.0;
                for j in 0..n {
                    let p2 = p1b;
                    p1b = p0b;
                    p0b = ((2 * j + 1) as f64 * z * p1b - j as f64 * p2) / (j + 1) as f64;
                }
                let dpb = n as f64 * (z * p0b - p1b) / (z * z - 1.0);
                x[i] = -z;
                x[n - 1 - i] = z;
                w[i] = 2.0 / ((1.0 - z * z) * dpb * dpb);
                w[n - 1 - i] = w[i];
                break;
            }
        }
    }
    (x, w)
}

/// Velocity-space grid shared by all configuration points.
#[derive(Clone, Debug)]
pub struct VelocityGrid {
    /// Number of species.
    pub n_species: usize,
    /// Pitch-angle nodes `ξ_j ∈ (−1, 1)`.
    pub xi: Vec<f64>,
    /// Pitch quadrature weights (sum = 2).
    pub wxi: Vec<f64>,
    /// Energy nodes `ε_k` (units of T).
    pub energy: Vec<f64>,
    /// Energy quadrature weights including the Maxwellian factor, i.e.
    /// `Σ_k wen_k ≈ ∫ √ε e^{−ε} dε / Γ(3/2) = 1`.
    pub wen: Vec<f64>,
}

impl VelocityGrid {
    /// Build from an input deck.
    pub fn new(input: &CgyroInput) -> Self {
        let (xi, wxi) = gauss_legendre(input.n_xi);
        // Energy: Gauss-Legendre mapped to [0, e_max], weighted by the
        // normalized Maxwellian measure (2/√π)·√ε·e^{−ε}.
        let e_max = 8.0;
        let (t, wt) = gauss_legendre(input.n_energy);
        let mut energy = Vec::with_capacity(input.n_energy);
        let mut wen = Vec::with_capacity(input.n_energy);
        let norm = 2.0 / std::f64::consts::PI.sqrt();
        for (tk, wk) in t.iter().zip(&wt) {
            let e = 0.5 * e_max * (tk + 1.0);
            let jac = 0.5 * e_max;
            energy.push(e);
            wen.push(wk * jac * norm * e.sqrt() * (-e).exp());
        }
        // Renormalize the discrete Maxwellian measure exactly to 1, as
        // gyrokinetic codes do, so the discrete density of a Maxwellian is
        // exact regardless of quadrature order.
        let s: f64 = wen.iter().sum();
        for w in &mut wen {
            *w /= s;
        }
        Self { n_species: input.species.len(), xi, wxi, energy, wen }
    }

    /// Pitch count.
    pub fn n_xi(&self) -> usize {
        self.xi.len()
    }

    /// Energy count.
    pub fn n_energy(&self) -> usize {
        self.energy.len()
    }

    /// Velocity points per species.
    pub fn per_species(&self) -> usize {
        self.n_xi() * self.n_energy()
    }

    /// Total flattened velocity dimension `nv`.
    pub fn nv(&self) -> usize {
        self.n_species * self.per_species()
    }

    /// Flatten `(species, energy, pitch)` to `iv`.
    pub fn flatten(&self, is: usize, ie: usize, ix: usize) -> usize {
        debug_assert!(is < self.n_species && ie < self.n_energy() && ix < self.n_xi());
        is * self.per_species() + ie * self.n_xi() + ix
    }

    /// Unflatten `iv` to `(species, energy, pitch)`.
    pub fn unflatten(&self, iv: usize) -> (usize, usize, usize) {
        let ps = self.per_species();
        let is = iv / ps;
        let r = iv % ps;
        (is, r / self.n_xi(), r % self.n_xi())
    }

    /// Full quadrature weight of `iv` (pitch × energy, Maxwellian-weighted;
    /// `Σ_{iv per species} ≈ 2`, the pitch measure).
    pub fn weight(&self, iv: usize) -> f64 {
        let (_, ie, ix) = self.unflatten(iv);
        self.wxi[ix] * self.wen[ie]
    }

    /// Parallel velocity `v_∥ = ξ·√(2ε/m)` for `iv` given species masses.
    pub fn v_par(&self, iv: usize, masses: &[f64]) -> f64 {
        let (is, ie, ix) = self.unflatten(iv);
        self.xi[ix] * (2.0 * self.energy[ie] / masses[is]).sqrt()
    }

    /// Perpendicular speed `v_⊥ = √(1−ξ²)·√(2ε/m)`.
    pub fn v_perp(&self, iv: usize, masses: &[f64]) -> f64 {
        let (is, ie, ix) = self.unflatten(iv);
        (1.0 - self.xi[ix] * self.xi[ix]).sqrt() * (2.0 * self.energy[ie] / masses[is]).sqrt()
    }
}

/// Configuration-space grid: `ic = ir·n_theta + itheta`.
#[derive(Clone, Debug)]
pub struct ConfigGrid {
    /// Radial mode count.
    pub n_radial: usize,
    /// Poloidal points per field line.
    pub n_theta: usize,
    /// Poloidal angles `θ ∈ [−π, π)`.
    pub theta: Vec<f64>,
    /// Radial wavenumbers `k_x` (centered spectral layout).
    pub kx: Vec<f64>,
}

impl ConfigGrid {
    /// Build from an input deck.
    pub fn new(input: &CgyroInput) -> Self {
        let n_theta = input.n_theta;
        let theta = (0..n_theta)
            .map(|j| -std::f64::consts::PI + 2.0 * std::f64::consts::PI * j as f64 / n_theta as f64)
            .collect();
        // Centered radial modes: 0, 1, …, n/2, −n/2+1, …, −1 (FFT order).
        let n_radial = input.n_radial;
        let kx = (0..n_radial)
            .map(|p| {
                let m = if p <= n_radial / 2 { p as isize } else { p as isize - n_radial as isize };
                m as f64 * input.kx_min
            })
            .collect();
        Self { n_radial, n_theta, theta, kx }
    }

    /// Total configuration points `nc`.
    pub fn nc(&self) -> usize {
        self.n_radial * self.n_theta
    }

    /// Flatten `(radial, theta)` to `ic`.
    pub fn flatten(&self, ir: usize, it: usize) -> usize {
        debug_assert!(ir < self.n_radial && it < self.n_theta);
        ir * self.n_theta + it
    }

    /// Unflatten `ic` to `(radial, theta)`.
    pub fn unflatten(&self, ic: usize) -> (usize, usize) {
        (ic / self.n_theta, ic % self.n_theta)
    }
}

/// Toroidal mode wavenumbers `k_y(n) = (n+1)·ky_min` (mode 0 is the first
/// finite-`n` mode; the axisymmetric component is not evolved, as in
/// flux-tube CGYRO runs the signal lives in finite-n modes).
pub fn ky_modes(input: &CgyroInput) -> Vec<f64> {
    (0..input.n_toroidal).map(|n| (n + 1) as f64 * input.ky_min).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauss_legendre_low_orders_match_references() {
        let (x, w) = gauss_legendre(2);
        let r = 1.0 / 3.0_f64.sqrt();
        assert!((x[0] + r).abs() < 1e-14 && (x[1] - r).abs() < 1e-14);
        assert!((w[0] - 1.0).abs() < 1e-14 && (w[1] - 1.0).abs() < 1e-14);

        let (x, w) = gauss_legendre(3);
        assert!(x[1].abs() < 1e-14);
        assert!((w[1] - 8.0 / 9.0).abs() < 1e-14);
        assert!((x[2] - (3.0f64 / 5.0).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly() {
        // n-point rule is exact to degree 2n-1.
        for n in [4usize, 7, 12] {
            let (x, w) = gauss_legendre(n);
            for deg in 0..(2 * n) {
                let num: f64 = x.iter().zip(&w).map(|(xi, wi)| wi * xi.powi(deg as i32)).sum();
                let exact = if deg % 2 == 1 { 0.0 } else { 2.0 / (deg as f64 + 1.0) };
                assert!((num - exact).abs() < 1e-12, "n={n} deg={deg}: {num} vs {exact}");
            }
        }
    }

    #[test]
    fn velocity_grid_weights_normalized() {
        let input = CgyroInput::test_medium();
        let g = VelocityGrid::new(&input);
        // Maxwellian measure integrates to ~1 per species (ε_max truncation
        // costs ~3e-4), pitch measure to 2.
        let wsum: f64 = (0..g.per_species()).map(|iv| g.weight(iv)).sum();
        assert!((wsum - 2.0).abs() < 1e-12, "weight sum {wsum}");
    }

    #[test]
    fn velocity_flatten_roundtrip() {
        let input = CgyroInput::test_medium();
        let g = VelocityGrid::new(&input);
        for iv in 0..g.nv() {
            let (is, ie, ix) = g.unflatten(iv);
            assert_eq!(g.flatten(is, ie, ix), iv);
        }
        assert_eq!(g.nv(), input.dims().nv);
    }

    #[test]
    fn v_par_odd_in_xi() {
        let input = CgyroInput::test_small();
        let g = VelocityGrid::new(&input);
        let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
        // Gauss-Legendre nodes are symmetric: xi[j] = -xi[n-1-j].
        let nxi = g.n_xi();
        for ie in 0..g.n_energy() {
            for ix in 0..nxi / 2 {
                let a = g.v_par(g.flatten(0, ie, ix), &masses);
                let b = g.v_par(g.flatten(0, ie, nxi - 1 - ix), &masses);
                assert!((a + b).abs() < 1e-12);
            }
        }
        // Electrons are much faster than ions at the same energy.
        let vi = g.v_par(g.flatten(0, 1, 0), &masses).abs();
        let ve = g.v_par(g.flatten(1, 1, 0), &masses).abs();
        assert!(ve > 10.0 * vi);
    }

    #[test]
    fn config_grid_layout() {
        let input = CgyroInput::test_small();
        let g = ConfigGrid::new(&input);
        assert_eq!(g.nc(), input.dims().nc);
        for ic in 0..g.nc() {
            let (ir, it) = g.unflatten(ic);
            assert_eq!(g.flatten(ir, it), ic);
        }
        // Theta covers [-pi, pi).
        assert!((g.theta[0] + std::f64::consts::PI).abs() < 1e-14);
        assert!(g.theta[g.n_theta - 1] < std::f64::consts::PI);
        // kx is centered: contains both signs.
        assert!(g.kx.iter().any(|&k| k > 0.0) && g.kx.iter().any(|&k| k < 0.0));
        assert_eq!(g.kx[0], 0.0);
    }

    #[test]
    fn ky_modes_are_positive_multiples() {
        let input = CgyroInput::test_medium();
        let ky = ky_modes(&input);
        assert_eq!(ky.len(), input.n_toroidal);
        for (n, k) in ky.iter().enumerate() {
            assert!((k - (n as f64 + 1.0) * input.ky_min).abs() < 1e-15);
        }
    }
}
