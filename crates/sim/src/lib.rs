//! # xg-sim — mini-CGYRO
//!
//! A structurally faithful, laptop-scale reproduction of the CGYRO
//! gyrokinetic solver as characterized by the XGYRO paper: complex spectral
//! state over `(nc, nv, nt)`; three phases (str / nl / coll), each needing
//! one complete dimension; the two str-phase AllReduce call sites (field
//! solve and upwind moment) on the `nv`-splitting communicator; str↔coll
//! AllToAll transposes; and the pre-factored implicit collision step whose
//! constant tensor (`cmat`, `nv×nv×nc×nt` reals) dominates memory.
//!
//! The [`stepper::Topology`] seam lets the identical physics run serially
//! ([`serial::SerialTopology`]), distributed CGYRO-style
//! ([`dist::DistTopology::cgyro`], reusing the `nv` communicator for coll
//! as in the paper's Figure 1), or as an XGYRO ensemble member
//! ([`dist::DistTopology::with_shared_coll`], Figure 3).

#![warn(missing_docs)]

pub mod cmat;
pub mod collision;
pub mod deck;
pub mod diagnostics;
pub mod dist;
pub mod field;
pub mod geometry;
pub mod grid;
pub mod input;
pub mod moments;
pub mod nonlinear;
pub mod pool;
pub mod restart;
pub mod serial;
pub mod stepper;
pub mod streaming;

pub use cmat::{cmat_total_bytes, CollisionConstants};
pub use deck::{load_deck, parse_deck, save_deck, write_deck, DeckError};
pub use diagnostics::{ComplexTrace, History};
pub use restart::{RestartError, RestartImage};
pub use collision::CollisionOperator;
pub use dist::{DistTopology, ResolvedReduceAlgo, COLL_PIPELINE_ENV, REDUCE_ALGO_ENV};
pub use input::{CgyroInput, ReduceAlgo, Species};
pub use moments::{moments_table, species_moments, SpeciesMoments};
pub use pool::{SendPtr, StepPool, THREADS_ENV};
pub use serial::{serial_simulation, SerialTopology};
pub use stepper::{initial_value, Diagnostics, Simulation, Topology};
