//! CGYRO-style input deck files.
//!
//! The production code reads `input.cgyro`: one `KEY=VALUE` per line, `#`
//! comments, species blocks indexed by number. This module provides a
//! faithful-enough text format so ensembles can be described on disk the
//! way XGYRO consumes them (a list of per-simulation input directories):
//!
//! ```text
//! # input.cgyro
//! N_RADIAL=4
//! N_THETA=8
//! N_XI=4
//! N_ENERGY=3
//! N_TOROIDAL=2
//! NU_EE=0.1
//! Q=2.0
//! S=1.0
//! KY=0.3
//! KX=0.1
//! DELTA_T=0.01
//! STEPS_PER_REPORT=10
//! NL_COUPLING=0.05
//! UPWIND_DISS=0.1
//! SEED=1
//! N_SPECIES=2
//! SPECIES_1_NAME=D
//! SPECIES_1_MASS=1.0
//! SPECIES_1_Z=1.0
//! SPECIES_1_TEMP=1.0
//! SPECIES_1_DENS=1.0
//! SPECIES_1_DLNNDR=1.0
//! SPECIES_1_DLNTDR=2.5
//! ```

use crate::input::{CgyroInput, ReduceAlgo, Species};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A deck parse/validation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeckError {
    /// 1-based line number when applicable (0 = whole-file problem).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for DeckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "input deck line {}: {}", self.line, self.message)
        } else {
            write!(f, "input deck: {}", self.message)
        }
    }
}

impl std::error::Error for DeckError {}

fn err(line: usize, message: impl Into<String>) -> DeckError {
    DeckError { line, message: message.into() }
}

/// Parse an `input.cgyro`-style deck from text.
pub fn parse_deck(text: &str) -> Result<CgyroInput, DeckError> {
    let mut kv: BTreeMap<String, (usize, String)> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(err(line_no, format!("expected KEY=VALUE, got '{line}'")));
        };
        let key = k.trim().to_ascii_uppercase();
        if kv.insert(key.clone(), (line_no, v.trim().to_string())).is_some() {
            return Err(err(line_no, format!("duplicate key '{key}'")));
        }
    }

    fn get_num<T: std::str::FromStr>(
        kv: &BTreeMap<String, (usize, String)>,
        key: &str,
    ) -> Result<T, DeckError> {
        let (line, v) = kv
            .get(key)
            .ok_or_else(|| err(0, format!("missing required key '{key}'")))?;
        v.parse::<T>().map_err(|_| err(*line, format!("cannot parse '{v}' for '{key}'")))
    }
    fn get_num_or<T: std::str::FromStr>(
        kv: &BTreeMap<String, (usize, String)>,
        key: &str,
        default: T,
    ) -> Result<T, DeckError> {
        match kv.get(key) {
            None => Ok(default),
            Some((line, v)) => {
                v.parse::<T>().map_err(|_| err(*line, format!("cannot parse '{v}' for '{key}'")))
            }
        }
    }

    let n_species: usize = get_num(&kv, "N_SPECIES")?;
    if n_species == 0 {
        return Err(err(0, "N_SPECIES must be at least 1"));
    }
    let mut species = Vec::with_capacity(n_species);
    for s in 1..=n_species {
        let name = kv
            .get(&format!("SPECIES_{s}_NAME"))
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| format!("s{s}"));
        species.push(Species {
            name,
            mass: get_num(&kv, &format!("SPECIES_{s}_MASS"))?,
            z: get_num(&kv, &format!("SPECIES_{s}_Z"))?,
            temp: get_num(&kv, &format!("SPECIES_{s}_TEMP"))?,
            dens: get_num(&kv, &format!("SPECIES_{s}_DENS"))?,
            rln: get_num_or(&kv, &format!("SPECIES_{s}_DLNNDR"), 1.0)?,
            rlt: get_num_or(&kv, &format!("SPECIES_{s}_DLNTDR"), 2.5)?,
        });
    }

    let input = CgyroInput {
        n_radial: get_num(&kv, "N_RADIAL")?,
        n_theta: get_num(&kv, "N_THETA")?,
        n_xi: get_num(&kv, "N_XI")?,
        n_energy: get_num(&kv, "N_ENERGY")?,
        n_toroidal: get_num(&kv, "N_TOROIDAL")?,
        species,
        nu_ee: get_num(&kv, "NU_EE")?,
        q: get_num_or(&kv, "Q", 2.0)?,
        shear: get_num_or(&kv, "S", 1.0)?,
        kappa: get_num_or(&kv, "KAPPA", 1.0)?,
        delta: get_num_or(&kv, "DELTA", 0.0)?,
        ky_min: get_num_or(&kv, "KY", 0.3)?,
        kx_min: get_num_or(&kv, "KX", 0.1)?,
        delta_t: get_num(&kv, "DELTA_T")?,
        steps_per_report: get_num_or(&kv, "STEPS_PER_REPORT", 100)?,
        nonlinear_coupling: get_num_or(&kv, "NL_COUPLING", 0.0)?,
        beta_e: get_num_or(&kv, "BETAE", 0.0)?,
        upwind_diss: get_num_or(&kv, "UPWIND_DISS", 0.1)?,
        seed: get_num_or(&kv, "SEED", 1)?,
        reduce_algo: get_num_or(&kv, "REDUCE_ALGO", ReduceAlgo::default())?,
    };
    input.validate().map_err(|m| err(0, m))?;

    // Reject unknown keys (typos silently changing physics are the classic
    // deck bug).
    for (key, (line, _)) in &kv {
        let known = matches!(
            key.as_str(),
            "N_RADIAL" | "N_THETA" | "N_XI" | "N_ENERGY" | "N_TOROIDAL" | "NU_EE" | "Q" | "S"
                | "KAPPA" | "DELTA" | "KY" | "KX" | "DELTA_T" | "STEPS_PER_REPORT" | "NL_COUPLING" | "BETAE"
                | "UPWIND_DISS" | "SEED" | "REDUCE_ALGO" | "N_SPECIES"
        ) || key.starts_with("SPECIES_");
        if !known {
            return Err(err(*line, format!("unknown key '{key}'")));
        }
    }
    Ok(input)
}

/// Render an input back to deck text (round-trips through [`parse_deck`]).
pub fn write_deck(input: &CgyroInput) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# generated by xgyro-repro");
    let _ = writeln!(out, "N_RADIAL={}", input.n_radial);
    let _ = writeln!(out, "N_THETA={}", input.n_theta);
    let _ = writeln!(out, "N_XI={}", input.n_xi);
    let _ = writeln!(out, "N_ENERGY={}", input.n_energy);
    let _ = writeln!(out, "N_TOROIDAL={}", input.n_toroidal);
    let _ = writeln!(out, "NU_EE={}", input.nu_ee);
    let _ = writeln!(out, "Q={}", input.q);
    let _ = writeln!(out, "S={}", input.shear);
    let _ = writeln!(out, "KAPPA={}", input.kappa);
    let _ = writeln!(out, "DELTA={}", input.delta);
    let _ = writeln!(out, "KY={}", input.ky_min);
    let _ = writeln!(out, "KX={}", input.kx_min);
    let _ = writeln!(out, "DELTA_T={}", input.delta_t);
    let _ = writeln!(out, "STEPS_PER_REPORT={}", input.steps_per_report);
    let _ = writeln!(out, "NL_COUPLING={}", input.nonlinear_coupling);
    let _ = writeln!(out, "BETAE={}", input.beta_e);
    let _ = writeln!(out, "UPWIND_DISS={}", input.upwind_diss);
    let _ = writeln!(out, "SEED={}", input.seed);
    let _ = writeln!(out, "REDUCE_ALGO={}", input.reduce_algo);
    let _ = writeln!(out, "N_SPECIES={}", input.species.len());
    for (i, s) in input.species.iter().enumerate() {
        let n = i + 1;
        let _ = writeln!(out, "SPECIES_{n}_NAME={}", s.name);
        let _ = writeln!(out, "SPECIES_{n}_MASS={}", s.mass);
        let _ = writeln!(out, "SPECIES_{n}_Z={}", s.z);
        let _ = writeln!(out, "SPECIES_{n}_TEMP={}", s.temp);
        let _ = writeln!(out, "SPECIES_{n}_DENS={}", s.dens);
        let _ = writeln!(out, "SPECIES_{n}_DLNNDR={}", s.rln);
        let _ = writeln!(out, "SPECIES_{n}_DLNTDR={}", s.rlt);
    }
    out
}

/// Read a deck from a file path.
pub fn load_deck(path: &std::path::Path) -> Result<CgyroInput, DeckError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
    parse_deck(&text)
}

/// Save a deck to a file path.
pub fn save_deck(input: &CgyroInput, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, write_deck(input))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        for input in [
            CgyroInput::test_small(),
            CgyroInput::test_medium(),
            CgyroInput::nl03c_like(),
        ] {
            let text = write_deck(&input);
            let back = parse_deck(&text).unwrap();
            assert_eq!(back, input);
            assert_eq!(back.cmat_key(), input.cmat_key());
        }
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let base = CgyroInput::test_small();
        let mut text = write_deck(&base);
        text.push_str("\n# trailing comment\n   \n");
        let text = text.replace("NU_EE=0.1", "  NU_EE = 0.1   # collisions");
        assert_eq!(parse_deck(&text).unwrap(), base);
    }

    #[test]
    fn missing_key_reports_name() {
        let text = write_deck(&CgyroInput::test_small()).replace("DELTA_T=0.01\n", "");
        let e = parse_deck(&text).unwrap_err();
        assert!(e.message.contains("DELTA_T"), "{e}");
    }

    #[test]
    fn bad_value_reports_line() {
        let text = write_deck(&CgyroInput::test_small()).replace("NU_EE=0.1", "NU_EE=banana");
        let e = parse_deck(&text).unwrap_err();
        assert!(e.line > 0);
        assert!(e.message.contains("banana"), "{e}");
    }

    #[test]
    fn unknown_key_rejected() {
        let mut text = write_deck(&CgyroInput::test_small());
        text.push_str("N_RADIAL_TYPO=4\n");
        let e = parse_deck(&text).unwrap_err();
        assert!(e.message.contains("unknown key"), "{e}");
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut text = write_deck(&CgyroInput::test_small());
        text.push_str("NU_EE=0.2\n");
        let e = parse_deck(&text).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn malformed_line_rejected() {
        let mut text = write_deck(&CgyroInput::test_small());
        text.push_str("THIS IS NOT A KEY VALUE PAIR\n");
        let e = parse_deck(&text).unwrap_err();
        assert!(e.message.contains("KEY=VALUE"), "{e}");
    }

    #[test]
    fn invalid_physics_rejected_via_validate() {
        let text = write_deck(&CgyroInput::test_small()).replace("DELTA_T=0.01", "DELTA_T=-1");
        let e = parse_deck(&text).unwrap_err();
        assert!(e.message.contains("positive"), "{e}");
    }

    #[test]
    fn optional_keys_take_defaults() {
        let text = "\
N_RADIAL=4\nN_THETA=8\nN_XI=4\nN_ENERGY=3\nN_TOROIDAL=2\nNU_EE=0.1\nDELTA_T=0.01\n\
N_SPECIES=1\nSPECIES_1_MASS=1.0\nSPECIES_1_Z=1.0\nSPECIES_1_TEMP=1.0\nSPECIES_1_DENS=1.0\n";
        let input = parse_deck(text).unwrap();
        assert_eq!(input.q, 2.0);
        assert_eq!(input.steps_per_report, 100);
        assert_eq!(input.species[0].name, "s1");
        assert_eq!(input.species[0].rln, 1.0);
    }

    #[test]
    fn reduce_algo_key_roundtrips_and_validates() {
        let mut input = CgyroInput::test_small();
        input.reduce_algo = ReduceAlgo::ReduceScatter;
        let text = write_deck(&input);
        assert!(text.contains("REDUCE_ALGO=reduce-scatter"));
        assert_eq!(parse_deck(&text).unwrap(), input);
        // Omitting the key defaults to auto selection.
        let text = write_deck(&CgyroInput::test_small()).replace("REDUCE_ALGO=auto\n", "");
        assert_eq!(parse_deck(&text).unwrap().reduce_algo, ReduceAlgo::Auto);
        // Bad values are a deck error, not a silent default.
        let text = write_deck(&CgyroInput::test_small())
            .replace("REDUCE_ALGO=auto", "REDUCE_ALGO=ringy");
        let e = parse_deck(&text).unwrap_err();
        assert!(e.message.contains("REDUCE_ALGO"), "{e}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("xgyro_deck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("input.cgyro");
        let input = CgyroInput::test_medium();
        save_deck(&input, &path).unwrap();
        let back = load_deck(&path).unwrap();
        assert_eq!(back, input);
        std::fs::remove_dir_all(&dir).ok();
    }
}
