//! Sugama-like model collision operator.
//!
//! CGYRO implements the full Sugama electromagnetic gyrokinetic collision
//! operator, whose discretization is a dense `nv×nv` matrix per
//! configuration/toroidal point. This module builds a structurally
//! faithful model operator with the properties that matter for the paper:
//!
//! * **test-particle part**: Lorentz pitch-angle scattering + energy
//!   diffusion in flux-conservative form, with species- and
//!   energy-dependent frequencies `ν ~ ν_ee·f(ε, species)`;
//! * **conservation**: the operator is assembled in the Maxwellian-
//!   weighted symmetrized space (`S = W^{1/2} C W^{-1/2}`) and projected
//!   onto the orthogonal complement of the collisional invariants
//!   (per-species density, parallel momentum, energy) — so conservation is
//!   exact *and* the operator is symmetric negative-semidefinite by
//!   construction, which makes the Crank–Nicolson propagator a provable
//!   contraction (the projection plays the role of Sugama's field-particle
//!   terms and densifies the matrix);
//! * **cross-species friction**: a rank-1 `−ν_ab·d dᵀ` term per species
//!   pair with `d ∝ q̂_a/|q_a| − q̂_b/|q_b|` built from the momentum
//!   invariant directions: manifestly dissipative, exchanges momentum
//!   between species while conserving the total — this populates the
//!   off-diagonal species blocks, so the full `nv×nv` matrix (not a
//!   per-species block diagonal) is genuinely needed, matching `cmat`'s
//!   size law;
//! * **classical (FLR) diffusion**: a `−ν k⊥² ρ²` diagonal damping, which
//!   is what makes the operator — and therefore `cmat` — depend on the
//!   configuration and toroidal indices.
//!
//! The operator depends on grids, species parameters, `ν_ee` and geometry,
//! and on nothing a gradient-drive parameter sweep changes: the foundation
//! of XGYRO's sharing opportunity.

use crate::grid::VelocityGrid;
use crate::input::CgyroInput;
use xg_linalg::{matmul, RealMatrix};

/// The `k⊥`-independent pieces of the collision operator, from which the
/// per-(configuration, toroidal) matrix is assembled.
#[derive(Clone, Debug)]
pub struct CollisionOperator {
    /// Velocity-only part `C_v` (test particle, invariant-projected, plus
    /// cross-species friction): dense `nv×nv`.
    base: RealMatrix,
    /// FLR diagonal `d_iv` such that `C(k⊥²) = C_v − k⊥²·diag(d)`.
    flr: Vec<f64>,
    nv: usize,
}

/// Deflection frequency `ν_D(species, ε)`: Connor-like scaling
/// `ν_ee · z² · √(m_e/m_s) · (T_s)^{-3/2} · g(ε)` with `g(ε) ~ 1/ε^{3/2}`
/// softened at low energy.
fn nu_deflection(input: &CgyroInput, is: usize, energy: f64) -> f64 {
    let s = &input.species[is];
    let m_e = input.species.iter().map(|sp| sp.mass).fold(f64::INFINITY, f64::min);
    let scale = s.z * s.z * (m_e / s.mass).sqrt() * s.temp.powf(-1.5);
    input.nu_ee * scale / (energy.powf(1.5) + 0.25)
}

/// Energy-diffusion frequency `ν_E(species, ε)` (same scaling family,
/// smaller coefficient).
fn nu_energy(input: &CgyroInput, is: usize, energy: f64) -> f64 {
    0.5 * nu_deflection(input, is, energy)
}

impl CollisionOperator {
    /// Build the operator for an input deck.
    pub fn build(input: &CgyroInput, v: &VelocityGrid) -> Self {
        let nv = v.nv();
        let mut c_test = RealMatrix::zeros(nv, nv);
        Self::add_lorentz(input, v, &mut c_test);
        Self::add_energy_diffusion(input, v, &mut c_test);

        // Square roots of the quadrature weights: the similarity transform
        // into the space where the test-particle part is symmetric.
        let sqrt_w: Vec<f64> = (0..nv).map(|iv| v.weight(iv).sqrt()).collect();

        // S = W^{1/2} C W^{-1/2}; exactly symmetric up to roundoff by the
        // flux-conservative construction — symmetrize to kill the residue.
        let mut s = RealMatrix::from_fn(nv, nv, |i, j| {
            c_test[(i, j)] * sqrt_w[i] / sqrt_w[j]
        });
        for i in 0..nv {
            for j in (i + 1)..nv {
                let avg = 0.5 * (s[(i, j)] + s[(j, i)]);
                s[(i, j)] = avg;
                s[(j, i)] = avg;
            }
        }

        // Orthonormal invariant directions (per species: density, parallel
        // momentum, energy) in the symmetrized space.
        let invariants = invariant_basis(input, v, &sqrt_w);

        // Project: S' = Q S Q with Q = I − Σ q qᵀ. Symmetric nsd by
        // construction; the projection is what Sugama's field-particle
        // terms achieve and it densifies the species blocks.
        let mut q = RealMatrix::identity(nv);
        for inv in &invariants {
            for i in 0..nv {
                if inv.dir[i] == 0.0 {
                    continue;
                }
                for j in 0..nv {
                    q[(i, j)] -= inv.dir[i] * inv.dir[j];
                }
            }
        }
        let mut s_proj = matmul(&matmul(&q, &s), &q);

        // Cross-species momentum friction: −ν_ab d dᵀ with d orthogonal to
        // the total-momentum direction (disjoint supports make the algebra
        // exact). Dissipative and total-momentum conserving by
        // construction.
        let masses: Vec<f64> = input.species.iter().map(|sp| sp.mass).collect();
        let m_e = masses.iter().copied().fold(f64::INFINITY, f64::min);
        for a in 0..v.n_species {
            for b in (a + 1)..v.n_species {
                let sa = &input.species[a];
                let sb = &input.species[b];
                let m_ab = 0.5 * (sa.mass + sb.mass);
                let nu_ab = input.nu_ee
                    * sa.z * sa.z * sb.z * sb.z
                    * sa.dens.min(sb.dens)
                    * (m_e / m_ab).sqrt()
                    * 0.2;
                if nu_ab == 0.0 {
                    continue;
                }
                let qa = momentum_direction(input, v, &sqrt_w, a);
                let qb = momentum_direction(input, v, &sqrt_w, b);
                // d = q̂_a/|q_a| − q̂_b/|q_b| (un-normalized q's already
                // returned as (unit, norm) pairs).
                let d: Vec<f64> = (0..nv)
                    .map(|i| qa.0[i] / qa.1 - qb.0[i] / qb.1)
                    .collect();
                for i in 0..nv {
                    if d[i] == 0.0 {
                        continue;
                    }
                    for j in 0..nv {
                        s_proj[(i, j)] -= nu_ab * d[i] * d[j];
                    }
                }
            }
        }

        // Transform back: C = W^{-1/2} S' W^{1/2}.
        let base = RealMatrix::from_fn(nv, nv, |i, j| {
            s_proj[(i, j)] * sqrt_w[j] / sqrt_w[i]
        });
        let flr = Self::flr_diagonal(input, v);
        Self { base, flr, nv }
    }

    /// Velocity-space dimension.
    pub fn nv(&self) -> usize {
        self.nv
    }

    /// The `k⊥`-independent dense part (for tests/diagnostics).
    pub fn base(&self) -> &RealMatrix {
        &self.base
    }

    /// FLR damping diagonal (for tests/diagnostics).
    pub fn flr(&self) -> &[f64] {
        &self.flr
    }

    /// Assemble the full operator matrix at a given `k⊥²`.
    pub fn matrix_at(&self, kperp2: f64) -> RealMatrix {
        let mut m = self.base.clone();
        for iv in 0..self.nv {
            m[(iv, iv)] -= kperp2 * self.flr[iv];
        }
        m
    }

    /// Lorentz pitch-angle scattering: per (species, energy) block, a
    /// flux-conservative tridiagonal `d/dξ (1−ξ²) d/dξ` on the pitch grid,
    /// scaled by `ν_D/2`. Boundary fluxes vanish, so the weighted column
    /// sums are exactly zero (density conservation).
    fn add_lorentz(input: &CgyroInput, v: &VelocityGrid, c: &mut RealMatrix) {
        let nxi = v.n_xi();
        for is in 0..v.n_species {
            for ie in 0..v.n_energy() {
                let nu = 0.5 * nu_deflection(input, is, v.energy[ie]);
                for j in 0..nxi - 1 {
                    let xm = 0.5 * (v.xi[j] + v.xi[j + 1]);
                    let coef = nu * (1.0 - xm * xm) / (v.xi[j + 1] - v.xi[j]);
                    let a = v.flatten(is, ie, j);
                    let b = v.flatten(is, ie, j + 1);
                    let wj = v.wxi[j];
                    let wj1 = v.wxi[j + 1];
                    c[(a, b)] += coef / wj;
                    c[(a, a)] -= coef / wj;
                    c[(b, a)] += coef / wj1;
                    c[(b, b)] -= coef / wj1;
                }
            }
        }
    }

    /// Energy diffusion: per (species, pitch) a flux-conservative
    /// tridiagonal in energy with the Maxwellian-weighted measure; boundary
    /// fluxes vanish.
    fn add_energy_diffusion(input: &CgyroInput, v: &VelocityGrid, c: &mut RealMatrix) {
        let nen = v.n_energy();
        for is in 0..v.n_species {
            for ix in 0..v.n_xi() {
                for k in 0..nen - 1 {
                    let emid = 0.5 * (v.energy[k] + v.energy[k + 1]);
                    let nu = nu_energy(input, is, emid);
                    let wmid = 0.5 * (v.wen[k] + v.wen[k + 1]);
                    let coef = nu * emid * wmid / (v.energy[k + 1] - v.energy[k]);
                    let a = v.flatten(is, k, ix);
                    let b = v.flatten(is, k + 1, ix);
                    let wk = v.wen[k];
                    let wk1 = v.wen[k + 1];
                    c[(a, b)] += coef / wk;
                    c[(a, a)] -= coef / wk;
                    c[(b, a)] += coef / wk1;
                    c[(b, b)] -= coef / wk1;
                }
            }
        }
    }

    /// Classical-diffusion diagonal: `d_iv = ν_D(ε)·ρ_s²·(1+ε)` with
    /// `ρ_s ∝ √(m_s T_s)/z_s` (per-species gyroradius scale).
    fn flr_diagonal(input: &CgyroInput, v: &VelocityGrid) -> Vec<f64> {
        (0..v.nv())
            .map(|iv| {
                let (is, ie, _) = v.unflatten(iv);
                let s = &input.species[is];
                let rho2 = s.mass * s.temp / (s.z * s.z);
                nu_deflection(input, is, v.energy[ie]) * rho2 * (1.0 + v.energy[ie]) * 0.25
            })
            .collect()
    }
}

/// One orthonormal invariant direction in the symmetrized space.
struct Invariant {
    dir: Vec<f64>,
}

/// Per-species orthonormal invariant basis {density, parallel momentum,
/// energy} in the `W^{1/2}` space, Gram–Schmidt within each species
/// (cross-species vectors are disjoint-support, hence orthogonal).
fn invariant_basis(input: &CgyroInput, v: &VelocityGrid, sqrt_w: &[f64]) -> Vec<Invariant> {
    let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
    let nv = v.nv();
    let mut out = Vec::new();
    for is in 0..v.n_species {
        let raw: [Vec<f64>; 3] = [
            // density: μ = 1
            (0..nv)
                .map(|iv| if v.unflatten(iv).0 == is { sqrt_w[iv] } else { 0.0 })
                .collect(),
            // momentum: μ = m v∥ (odd in ξ)
            (0..nv)
                .map(|iv| {
                    if v.unflatten(iv).0 == is {
                        sqrt_w[iv] * masses[is] * v.v_par(iv, &masses)
                    } else {
                        0.0
                    }
                })
                .collect(),
            // energy: μ = ε
            (0..nv)
                .map(|iv| {
                    let (s, ie, _) = v.unflatten(iv);
                    if s == is {
                        sqrt_w[iv] * v.energy[ie]
                    } else {
                        0.0
                    }
                })
                .collect(),
        ];
        let mut basis: Vec<Vec<f64>> = Vec::new();
        for mut cand in raw {
            for b in &basis {
                let dot: f64 = cand.iter().zip(b).map(|(x, y)| x * y).sum();
                for (c, bb) in cand.iter_mut().zip(b) {
                    *c -= dot * bb;
                }
            }
            let norm: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-14 {
                for c in &mut cand {
                    *c /= norm;
                }
                basis.push(cand);
            }
        }
        out.extend(basis.into_iter().map(|dir| Invariant { dir }));
    }
    out
}

/// The unit momentum direction of species `is` in the symmetrized space,
/// together with the norm of the un-normalized vector.
fn momentum_direction(
    input: &CgyroInput,
    v: &VelocityGrid,
    sqrt_w: &[f64],
    is: usize,
) -> (Vec<f64>, f64) {
    let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
    let nv = v.nv();
    let raw: Vec<f64> = (0..nv)
        .map(|iv| {
            if v.unflatten(iv).0 == is {
                sqrt_w[iv] * masses[is] * v.v_par(iv, &masses)
            } else {
                0.0
            }
        })
        .collect();
    let norm: f64 = raw.iter().map(|x| x * x).sum::<f64>().sqrt();
    assert!(norm > 1e-14, "degenerate momentum direction");
    (raw.iter().map(|x| x / norm).collect(), norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CgyroInput;

    fn setup() -> (CgyroInput, VelocityGrid, CollisionOperator) {
        let input = CgyroInput::test_medium();
        let v = VelocityGrid::new(&input);
        let op = CollisionOperator::build(&input, &v);
        (input, v, op)
    }

    /// Weighted moment of `C·f` for a given kernel (kernel includes w).
    fn moment_of_cf(v: &VelocityGrid, c: &RealMatrix, f: &[f64], kernel: &[f64]) -> f64 {
        let mut cf = vec![0.0; v.nv()];
        xg_linalg::matvec(c, f, &mut cf);
        kernel.iter().zip(&cf).map(|(k, x)| k * x).sum()
    }

    fn weighted_kernel(v: &VelocityGrid, is: usize, mu: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..v.nv())
            .map(|iv| if v.unflatten(iv).0 == is { v.weight(iv) * mu(iv) } else { 0.0 })
            .collect()
    }

    fn test_fields(v: &VelocityGrid) -> Vec<Vec<f64>> {
        vec![
            vec![1.0; v.nv()],
            (0..v.nv()).map(|iv| (iv as f64 * 0.7).sin()).collect(),
            (0..v.nv()).map(|iv| v.weight(iv) + 0.3).collect(),
            (0..v.nv()).map(|iv| if iv % 3 == 0 { 1.0 } else { -0.5 }).collect(),
        ]
    }

    #[test]
    fn density_conserved_per_species_at_zero_kperp() {
        let (_, v, op) = setup();
        let c = op.matrix_at(0.0);
        for is in 0..v.n_species {
            let dens = weighted_kernel(&v, is, |_| 1.0);
            for f in test_fields(&v) {
                let d = moment_of_cf(&v, &c, &f, &dens);
                assert!(d.abs() < 1e-10, "species {is}: density moment {d}");
            }
        }
    }

    #[test]
    fn per_species_momentum_conserved_without_friction_direction() {
        // The projected test-particle part conserves per-species momentum;
        // only the explicit friction term exchanges it, and it conserves
        // the total. Check the total here.
        let (input, v, op) = setup();
        let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
        let c = op.matrix_at(0.0);
        let mut ptot = vec![0.0; v.nv()];
        for is in 0..v.n_species {
            let m = weighted_kernel(&v, is, |iv| masses[is] * v.v_par(iv, &masses));
            for (p, mi) in ptot.iter_mut().zip(&m) {
                *p += mi;
            }
        }
        for f in test_fields(&v) {
            let d = moment_of_cf(&v, &c, &f, &ptot);
            assert!(d.abs() < 1e-9, "total momentum moment {d}");
        }
    }

    #[test]
    fn energy_conserved_per_species() {
        let (_, v, op) = setup();
        let c = op.matrix_at(0.0);
        for is in 0..v.n_species {
            let m = weighted_kernel(&v, is, |iv| {
                let (_, ie, _) = v.unflatten(iv);
                v.energy[ie]
            });
            for f in test_fields(&v) {
                let d = moment_of_cf(&v, &c, &f, &m);
                assert!(d.abs() < 1e-9, "species {is}: energy moment {d}");
            }
        }
    }

    #[test]
    fn operator_is_negative_semidefinite() {
        // By construction the operator is symmetric nsd in the weighted
        // inner product: <f, C f>_w <= 0 for EVERY f.
        let (_, v, op) = setup();
        for kperp2 in [0.0, 0.5, 3.0] {
            let c = op.matrix_at(kperp2);
            for f in test_fields(&v) {
                let mut cf = vec![0.0; v.nv()];
                xg_linalg::matvec(&c, &f, &mut cf);
                let q: f64 = (0..v.nv()).map(|iv| v.weight(iv) * f[iv] * cf[iv]).sum();
                let scale: f64 = (0..v.nv()).map(|iv| v.weight(iv) * f[iv] * f[iv]).sum();
                assert!(q <= 1e-10 * scale.abs(), "quadratic form {q} at kperp2={kperp2}");
            }
        }
    }

    #[test]
    fn symmetrized_operator_is_symmetric() {
        let (_, v, op) = setup();
        let c = op.matrix_at(0.7);
        let nv = v.nv();
        let sw: Vec<f64> = (0..nv).map(|iv| v.weight(iv).sqrt()).collect();
        for i in 0..nv {
            for j in 0..nv {
                let sij = c[(i, j)] * sw[i] / sw[j];
                let sji = c[(j, i)] * sw[j] / sw[i];
                assert!(
                    (sij - sji).abs() < 1e-10 * (1.0 + sij.abs()),
                    "asymmetry at ({i},{j}): {sij} vs {sji}"
                );
            }
        }
    }

    #[test]
    fn kperp_enters_as_diagonal_damping() {
        let (_, _, op) = setup();
        let c0 = op.matrix_at(0.0);
        let c1 = op.matrix_at(2.0);
        let diff = &c0 - &c1;
        for i in 0..op.nv() {
            for j in 0..op.nv() {
                if i != j {
                    assert_eq!(diff[(i, j)], 0.0);
                }
            }
            assert!(diff[(i, i)] > 0.0);
        }
        let chalf = op.matrix_at(1.0);
        let dhalf = &c0 - &chalf;
        for i in 0..op.nv() {
            assert!((diff[(i, i)] - 2.0 * dhalf[(i, i)]).abs() < 1e-14);
        }
    }

    #[test]
    fn matrix_is_dense_across_species_blocks() {
        let (_, v, op) = setup();
        let c = op.matrix_at(0.0);
        let ps = v.per_species();
        let mut off_block_norm = 0.0;
        for i in 0..ps {
            for j in ps..2 * ps {
                off_block_norm += c[(i, j)].abs();
            }
        }
        assert!(off_block_norm > 1e-12, "species blocks must couple");
        let mut nnz = 0;
        for i in 0..ps {
            for j in 0..ps {
                if c[(i, j)].abs() > 1e-14 {
                    nnz += 1;
                }
            }
        }
        assert!(nnz > ps * ps / 2, "block should be dense, nnz = {nnz}/{}", ps * ps);
    }

    #[test]
    fn friction_exchanges_momentum_between_species() {
        // Give species 0 a parallel flow; friction must push momentum into
        // species 1 (total conserved, per-species not).
        let (input, v, op) = setup();
        let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
        let c = op.matrix_at(0.0);
        let f: Vec<f64> = (0..v.nv())
            .map(|iv| if v.unflatten(iv).0 == 0 { v.v_par(iv, &masses) } else { 0.0 })
            .collect();
        let p1 = weighted_kernel(&v, 1, |iv| masses[1] * v.v_par(iv, &masses));
        let dp1 = moment_of_cf(&v, &c, &f, &p1);
        assert!(dp1.abs() > 1e-12, "species 1 must receive momentum, got {dp1}");
    }

    #[test]
    fn no_collisions_means_zero_operator() {
        let mut input = CgyroInput::test_small();
        input.nu_ee = 0.0;
        let v = VelocityGrid::new(&input);
        let op = CollisionOperator::build(&input, &v);
        assert!(op.matrix_at(0.0).max_abs() < 1e-12);
        assert!(op.matrix_at(1.0).max_abs() < 1e-12);
    }

    #[test]
    fn frequencies_decrease_with_energy() {
        let input = CgyroInput::test_small();
        assert!(nu_deflection(&input, 0, 0.5) > nu_deflection(&input, 0, 4.0));
        assert!(nu_energy(&input, 0, 1.0) < nu_deflection(&input, 0, 1.0));
    }

    #[test]
    fn electrons_collide_faster_than_ions() {
        let input = CgyroInput::test_small();
        assert!(nu_deflection(&input, 1, 1.0) > nu_deflection(&input, 0, 1.0));
    }
}
