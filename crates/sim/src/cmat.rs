//! The collisional constant tensor (`cmat`).
//!
//! CGYRO pre-factors the implicit collision step: with the Crank–Nicolson
//! scheme `h⁺ = (I − Δt/2·C)⁻¹ (I + Δt/2·C) h`, the propagator matrix
//! `A(ic, itor)` is computed **once per simulation** and stored — a 4-D
//! real tensor of size `nv × nv × nc × nt` (paper §2). That trade of memory
//! for compute is what makes the collision step an order of magnitude
//! faster, and what makes `cmat` dominate the memory footprint (~10× all
//! other buffers for `nl03c`).
//!
//! [`CollisionConstants`] holds the slice of `cmat` owned by one rank: the
//! dense propagators for a contiguous `nc` range × `nt` range. In CGYRO
//! mode that range comes from the per-simulation `nc` decomposition over
//! `n1` ranks; in XGYRO mode from the **ensemble-wide** decomposition over
//! `k·n1` ranks — same type, same build code, different ranges: exactly the
//! paper's "minor changes to the CGYRO codebase".

use crate::collision::CollisionOperator;
use crate::geometry::Geometry;
use crate::grid::{ConfigGrid, VelocityGrid};
use crate::input::CgyroInput;
use std::ops::Range;
use xg_linalg::{Complex64, LuFactors, RealMatrix};
use xg_tensor::Tensor4;

/// One rank's slice of the collisional constant tensor.
///
/// Stored as a single contiguous 4-D tensor `(nc_loc, nt_loc, nv, nv)` —
/// the literal "4D tensor of size (nv × nv × nc × nt)" of paper §2 — so
/// the collision step streams one allocation panel by panel.
#[derive(Clone, Debug)]
pub struct CollisionConstants {
    nv: usize,
    nc_range: Range<usize>,
    nt_range: Range<usize>,
    /// Propagator panels: `tensor.panel(ic_loc, it_loc)` is one row-major
    /// `nv × nv` matrix.
    tensor: Tensor4<f64>,
}

impl CollisionConstants {
    /// Build the slice for `nc_range × nt_range`.
    ///
    /// For each local pair, assemble `C(k⊥²(ic, itor))`, factorize
    /// `(I − Δt/2·C)` and solve against `(I + Δt/2·C)`.
    pub fn build(
        input: &CgyroInput,
        v: &VelocityGrid,
        cfg: &ConfigGrid,
        geo: &Geometry,
        op: &CollisionOperator,
        nc_range: Range<usize>,
        nt_range: Range<usize>,
    ) -> Self {
        let nv = v.nv();
        let half_dt = 0.5 * input.delta_t;
        let mut tensor = Tensor4::new(nc_range.len(), nt_range.len(), nv, nv);
        for (icl, ic) in nc_range.clone().enumerate() {
            for (itl, itor) in nt_range.clone().enumerate() {
                let c = op.matrix_at(geo.kperp2(ic, itor));
                // lhs = I − Δt/2·C ; rhs = I + Δt/2·C.
                let mut lhs = c.clone();
                lhs.scale_inplace(-half_dt);
                lhs.add_scaled_identity(1.0);
                let mut rhs = c;
                rhs.scale_inplace(half_dt);
                rhs.add_scaled_identity(1.0);
                let lu = LuFactors::factorize(lhs)
                    .expect("I - dt/2 C must be invertible for a dissipative C");
                let a = lu.solve_matrix(&rhs);
                tensor.panel_mut(icl, itl).copy_from_slice(a.as_slice());
            }
        }
        let _ = cfg;
        Self { nv, nc_range, nt_range, tensor }
    }

    /// Velocity dimension.
    pub fn nv(&self) -> usize {
        self.nv
    }

    /// Owned configuration range.
    pub fn nc_range(&self) -> Range<usize> {
        self.nc_range.clone()
    }

    /// Owned toroidal range.
    pub fn nt_range(&self) -> Range<usize> {
        self.nt_range.clone()
    }

    /// The raw `nv × nv` propagator panel at local indices.
    pub fn panel(&self, ic_loc: usize, it_loc: usize) -> &[f64] {
        self.tensor.panel(ic_loc, it_loc)
    }

    /// The propagator at local indices as a matrix (copies; use
    /// [`Self::panel`] on hot paths).
    pub fn matrix(&self, ic_loc: usize, it_loc: usize) -> RealMatrix {
        RealMatrix::from_vec(self.nv, self.nv, self.panel(ic_loc, it_loc).to_vec())
    }

    /// Apply the propagator in place to the velocity profile at one local
    /// `(ic, itor)` pair: `x ← A·x`.
    pub fn apply(&self, ic_loc: usize, it_loc: usize, x: &mut [Complex64], scratch: &mut [Complex64]) {
        xg_linalg::matvec_complex_flat(self.panel(ic_loc, it_loc), self.nv, self.nv, x, scratch);
        x.copy_from_slice(scratch);
    }

    /// Out-of-place propagator apply: `y = A·x`. Same arithmetic as
    /// [`Self::apply`] without the scratch round-trip, for call sites that
    /// own separate input/output profiles.
    pub fn apply_into(&self, ic_loc: usize, it_loc: usize, x: &[Complex64], y: &mut [Complex64]) {
        xg_linalg::matvec_complex_flat_into(self.panel(ic_loc, it_loc), self.nv, x, y);
    }

    /// Batched multi-RHS propagator apply at one `(ic, itor)` pair:
    /// `Y = A·X` with `nrhs` stacked velocity profiles (`x[r·nv..(r+1)·nv]`
    /// is profile `r`). The shared panel is streamed once per call instead
    /// of once per profile; results are bitwise identical to `nrhs`
    /// single-RHS applies (see [`xg_linalg::apply_panel_multi`]).
    pub fn apply_multi(
        &self,
        ic_loc: usize,
        it_loc: usize,
        x: &[Complex64],
        y: &mut [Complex64],
        nrhs: usize,
    ) {
        xg_linalg::apply_panel_multi(self.panel(ic_loc, it_loc), self.nv, x, y, nrhs);
    }

    /// Like [`Self::apply_multi`] with an explicit kernel choice: SIMD
    /// level and L2 row-tile height from the autotuner
    /// ([`xg_costmodel::tuner::tune_collision_kernel`]) instead of the
    /// process defaults. Bitwise identical to every other apply variant.
    pub fn apply_multi_tiled(
        &self,
        ic_loc: usize,
        it_loc: usize,
        x: &[Complex64],
        y: &mut [Complex64],
        nrhs: usize,
        kernel: xg_costmodel::KernelChoice,
    ) {
        xg_linalg::apply_panel_multi_with(
            kernel.level,
            self.panel(ic_loc, it_loc),
            self.nv,
            x,
            y,
            nrhs,
            kernel.tile_rows,
        );
    }

    /// Row-tile-granular apply for worker-pool tasks: compute rows `rows`
    /// of `Y = A·X` at one `(ic, itor)` pair, writing `y[r·nv + i]` for
    /// `i ∈ rows` through a raw output pointer (the written elements are
    /// strided across the `nrhs` profiles, so no contiguous `&mut` split
    /// exists). Bitwise identical to the full apply for any tiling.
    ///
    /// # Safety
    /// `y` must be valid for `nv·nrhs` elements and outlive the call;
    /// concurrent calls on the same `y` must cover disjoint `rows`.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn apply_multi_rows(
        &self,
        ic_loc: usize,
        it_loc: usize,
        x: &[Complex64],
        y: *mut Complex64,
        nrhs: usize,
        rows: Range<usize>,
        level: xg_linalg::SimdLevel,
    ) {
        xg_linalg::apply_panel_rows_ptr(
            level,
            self.panel(ic_loc, it_loc),
            self.nv,
            x,
            y,
            nrhs,
            rows,
        );
    }

    /// Bytes of constant-tensor storage held by this slice.
    pub fn bytes(&self) -> u64 {
        (self.tensor.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Stable fingerprint of the numerical content (for verifying that
    /// independently built slices agree, and that sharing reproduces the
    /// per-simulation build bit for bit).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.nc_range.start as u64);
        mix(self.nc_range.end as u64);
        mix(self.nt_range.start as u64);
        mix(self.nt_range.end as u64);
        for x in self.tensor.as_slice() {
            mix(x.to_bits());
        }
        h
    }
}

/// Analytic size of the full constant tensor for an input deck (bytes):
/// `nv² · nc · nt · 8` — the law that drives the paper's memory argument.
/// Delegates to [`xg_costmodel::memory::cmat_total_bytes`] so the planner,
/// the serving metrics, and the simulation all quote one law.
pub fn cmat_total_bytes(input: &CgyroInput) -> u64 {
    xg_costmodel::memory::cmat_total_bytes(input.dims())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_linalg::norms::max_abs_complex;

    fn setup(input: &CgyroInput) -> (VelocityGrid, ConfigGrid, Geometry, CollisionOperator) {
        let v = VelocityGrid::new(input);
        let cfg = ConfigGrid::new(input);
        let geo = Geometry::new(input, &cfg);
        let op = CollisionOperator::build(input, &v);
        (v, cfg, geo, op)
    }

    #[test]
    fn propagator_equals_direct_crank_nicolson_solve() {
        let input = CgyroInput::test_small();
        let (v, cfg, geo, op) = setup(&input);
        let cm =
            CollisionConstants::build(&input, &v, &cfg, &geo, &op, 3..5, 0..input.n_toroidal);
        // Pick local pair (ic=4, itor=1): A·x must equal the direct solve
        // (I − dt/2 C) y = (I + dt/2 C) x.
        let nv = v.nv();
        let x: Vec<f64> = (0..nv).map(|i| ((i * 7 % 13) as f64 - 6.0) / 3.0).collect();
        let c = op.matrix_at(geo.kperp2(4, 1));
        let mut lhs = c.clone();
        lhs.scale_inplace(-0.5 * input.delta_t);
        lhs.add_scaled_identity(1.0);
        let mut rhs_m = c;
        rhs_m.scale_inplace(0.5 * input.delta_t);
        rhs_m.add_scaled_identity(1.0);
        let mut rhs = vec![0.0; nv];
        xg_linalg::matvec(&rhs_m, &x, &mut rhs);
        let y_direct = LuFactors::factorize(lhs).unwrap().solve(&rhs);

        let mut y = vec![0.0; nv];
        xg_linalg::matvec(&cm.matrix(1, 1), &x, &mut y);
        for (a, b) in y.iter().zip(&y_direct) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn propagator_is_identity_without_collisions() {
        let mut input = CgyroInput::test_small();
        input.nu_ee = 0.0;
        let (v, cfg, geo, op) = setup(&input);
        let cm = CollisionConstants::build(&input, &v, &cfg, &geo, &op, 0..2, 0..1);
        let id = RealMatrix::identity(v.nv());
        let diff = &cm.matrix(0, 0) - &id;
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn propagator_is_stable_contraction() {
        // Crank–Nicolson of an operator that is symmetric-nsd in the
        // Maxwellian-weighted inner product is a contraction in the
        // corresponding weighted L2 norm: ‖A x‖_w ≤ ‖x‖_w, with the
        // invariant subspace (density/momentum/energy) exactly preserved.
        let input = CgyroInput::test_medium();
        let (v, cfg, geo, op) = setup(&input);
        let cm = CollisionConstants::build(&input, &v, &cfg, &geo, &op, 7..8, 1..2);
        let nv = v.nv();
        let wnorm = |x: &[Complex64]| -> f64 {
            (0..nv).map(|iv| v.weight(iv) * x[iv].norm_sqr()).sum::<f64>().sqrt()
        };
        let mut x: Vec<Complex64> = (0..nv)
            .map(|i| Complex64::new((i * 13 % 7) as f64 - 3.0, (i * 5 % 11) as f64 - 5.0))
            .collect();
        let mut scratch = vec![Complex64::ZERO; nv];
        let mut prev = wnorm(&x);
        for it in 0..200 {
            cm.apply(0, 0, &mut x, &mut scratch);
            let now = wnorm(&x);
            assert!(
                now <= prev * (1.0 + 1e-12),
                "weighted norm grew at iteration {it}: {prev} -> {now}"
            );
            prev = now;
        }
        // The max-abs norm is also bounded over the run (no blow-up).
        assert!(max_abs_complex(&x).is_finite());
    }

    #[test]
    fn collision_step_preserves_species_density_at_kperp_zero() {
        // Build a deck whose first configuration point has k⊥ ≈ 0 (kx=0
        // exists; ky_min > 0 though, so use a tiny ky_min to approximate).
        let mut input = CgyroInput::test_small();
        input.ky_min = 1e-8;
        input.shear = 0.0;
        let (v, cfg, geo, op) = setup(&input);
        let cm = CollisionConstants::build(&input, &v, &cfg, &geo, &op, 0..1, 0..1);
        let nv = v.nv();
        let mut x: Vec<Complex64> =
            (0..nv).map(|i| Complex64::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos())).collect();
        let dens_before: Complex64 = (0..nv)
            .map(|iv| x[iv] * v.weight(iv))
            .take(v.per_species())
            .sum();
        let mut scratch = vec![Complex64::ZERO; nv];
        cm.apply(0, 0, &mut x, &mut scratch);
        let dens_after: Complex64 = (0..nv)
            .map(|iv| x[iv] * v.weight(iv))
            .take(v.per_species())
            .sum();
        assert!(
            (dens_before - dens_after).abs() < 1e-8 * (1.0 + dens_before.abs()),
            "{dens_before} vs {dens_after}"
        );
    }

    #[test]
    fn propagator_spectral_radius_at_most_one() {
        // A-stability check via power iteration: the Crank–Nicolson
        // propagator of the (dissipative) collision operator must have
        // spectral radius <= 1 at every sampled (ic, itor).
        let input = CgyroInput::test_medium();
        let (v, cfg, geo, op) = setup(&input);
        let cm = CollisionConstants::build(&input, &v, &cfg, &geo, &op, 10..12, 0..2);
        let nv = v.nv();
        let sw: Vec<f64> = (0..nv).map(|iv| v.weight(iv).sqrt()).collect();
        for ic in 0..2 {
            for it in 0..2 {
                // Measure in the sqrt-weight-symmetrized basis, where the
                // propagator is symmetric and power iteration is exact.
                let a = cm.matrix(ic, it);
                let a_sym =
                    RealMatrix::from_fn(nv, nv, |i, j| a[(i, j)] * sw[i] / sw[j]);
                let (rho, _) = xg_linalg::spectral_radius(&a_sym, 1e-10, 3000);
                assert!(rho <= 1.0 + 1e-8, "rho = {rho} at ({ic},{it})");
            }
        }
    }

    #[test]
    fn apply_variants_are_bitwise_equivalent() {
        let input = CgyroInput::test_small();
        let (v, cfg, geo, op) = setup(&input);
        let cm = CollisionConstants::build(&input, &v, &cfg, &geo, &op, 0..3, 0..2);
        let nv = v.nv();
        let nrhs = 5;
        let block: Vec<Complex64> = (0..nrhs * nv)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.53).cos()))
            .collect();
        for ic in 0..3 {
            for it in 0..2 {
                // Reference: in-place apply per profile.
                let mut want = block.clone();
                let mut scratch = vec![Complex64::ZERO; nv];
                for r in 0..nrhs {
                    cm.apply(ic, it, &mut want[r * nv..(r + 1) * nv], &mut scratch);
                }
                // Out-of-place single-RHS.
                for r in 0..nrhs {
                    let mut y = vec![Complex64::ZERO; nv];
                    cm.apply_into(ic, it, &block[r * nv..(r + 1) * nv], &mut y);
                    assert_eq!(&y, &want[r * nv..(r + 1) * nv]);
                }
                // Batched multi-RHS.
                let mut y = vec![Complex64::ZERO; nrhs * nv];
                cm.apply_multi(ic, it, &block, &mut y, nrhs);
                assert_eq!(y, want);
                // Explicitly-tuned kernels: every available level × odd
                // tile heights stay bitwise equal.
                for level in xg_linalg::simd::available_levels() {
                    for tile_rows in [1usize, 3, nv] {
                        let mut y = vec![Complex64::ZERO; nrhs * nv];
                        cm.apply_multi_tiled(
                            ic,
                            it,
                            &block,
                            &mut y,
                            nrhs,
                            xg_costmodel::KernelChoice { level, tile_rows },
                        );
                        assert_eq!(y, want, "level {level} tile {tile_rows}");
                    }
                    // Row-tile-granular entry, applied in uneven pieces.
                    let mut y = vec![Complex64::ZERO; nrhs * nv];
                    let mid = nv / 3;
                    for rows in [mid..nv, 0..mid] {
                        unsafe {
                            cm.apply_multi_rows(ic, it, &block, y.as_mut_ptr(), nrhs, rows, level);
                        }
                    }
                    assert_eq!(y, want, "row-granular level {level}");
                }
            }
        }
    }

    #[test]
    fn slices_tile_the_full_tensor() {
        // Two disjoint nc slices must produce the same matrices as one big
        // slice restricted to them — the property XGYRO's redistribution
        // relies on.
        let input = CgyroInput::test_small();
        let (v, cfg, geo, op) = setup(&input);
        let full =
            CollisionConstants::build(&input, &v, &cfg, &geo, &op, 0..6, 0..input.n_toroidal);
        let lo = CollisionConstants::build(&input, &v, &cfg, &geo, &op, 0..3, 0..input.n_toroidal);
        let hi = CollisionConstants::build(&input, &v, &cfg, &geo, &op, 3..6, 0..input.n_toroidal);
        for ic in 0..3 {
            for it in 0..input.n_toroidal {
                assert_eq!(full.matrix(ic, it), lo.matrix(ic, it));
                assert_eq!(full.matrix(ic + 3, it), hi.matrix(ic, it));
            }
        }
        assert_eq!(full.bytes(), lo.bytes() + hi.bytes());
    }

    #[test]
    fn gradient_sweeps_produce_identical_cmat() {
        // The paper's sharing condition, verified numerically: two inputs
        // differing only in gradient drives build bitwise-identical slices.
        let a = CgyroInput::test_small();
        let b = a.with_gradients(0.3, 5.0);
        let (va, cfga, geoa, opa) = setup(&a);
        let (vb, cfgb, geob, opb) = setup(&b);
        let ca = CollisionConstants::build(&a, &va, &cfga, &geoa, &opa, 0..4, 0..2);
        let cb = CollisionConstants::build(&b, &vb, &cfgb, &geob, &opb, 0..4, 0..2);
        assert_eq!(ca.fingerprint(), cb.fingerprint());
        // And a nu_ee change must not.
        let mut c = a.clone();
        c.nu_ee *= 1.5;
        let (vc, cfgc, geoc, opc) = setup(&c);
        let cc = CollisionConstants::build(&c, &vc, &cfgc, &geoc, &opc, 0..4, 0..2);
        assert_ne!(ca.fingerprint(), cc.fingerprint());
    }

    #[test]
    fn total_bytes_law() {
        let input = CgyroInput::test_small();
        let d = input.dims();
        assert_eq!(
            cmat_total_bytes(&input),
            (d.nv * d.nv * d.nc * d.nt * 8) as u64
        );
        // Per-slice bytes sum to the total when tiling nc × nt fully.
        let (v, cfg, geo, op) = setup(&input);
        let full = CollisionConstants::build(&input, &v, &cfg, &geo, &op, 0..d.nc, 0..d.nt);
        assert_eq!(full.bytes(), cmat_total_bytes(&input));
    }
}
