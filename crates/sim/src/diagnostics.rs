//! Time-trace diagnostics: history recording, CSV output, and the linear
//! growth-rate estimator used for physics validation (ITG-like drives must
//! destabilize; collisions must damp).

use crate::stepper::Diagnostics;
use std::fmt::Write as _;
use xg_linalg::Complex64;

/// A time series of one complex field amplitude (a φ probe), from which
/// the complex mode frequency `ω − iγ` is estimated: linear gyrokinetics'
/// standard eigenvalue diagnostic.
#[derive(Clone, Debug, Default)]
pub struct ComplexTrace {
    samples: Vec<(f64, Complex64)>,
}

impl ComplexTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `(time, amplitude)` sample.
    pub fn push(&mut self, time: f64, amp: Complex64) {
        self.samples.push((time, amp));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Estimate `(ω, γ)` from the trailing `window` samples: for
    /// `φ(t) ∝ e^{(γ − iω)t}`, each consecutive ratio gives
    /// `ln(φ_{j+1}/φ_j)/Δt = γ − iω`; the estimates are averaged.
    /// Returns `None` with fewer than two usable samples or vanishing
    /// amplitudes.
    pub fn frequency(&self, window: usize) -> Option<(f64, f64)> {
        let n = self.samples.len();
        let start = n.saturating_sub(window);
        let tail = &self.samples[start..];
        if tail.len() < 2 {
            return None;
        }
        let mut acc_gamma = 0.0;
        let mut acc_omega = 0.0;
        let mut count = 0usize;
        for pair in tail.windows(2) {
            let (t0, a0) = pair[0];
            let (t1, a1) = pair[1];
            let dt = t1 - t0;
            if dt <= 0.0 || a0.abs() < 1e-300 || a1.abs() < 1e-300 {
                continue;
            }
            let ratio = a1 / a0;
            acc_gamma += ratio.abs().ln() / dt;
            // φ ∝ e^{−iωt}: phase decreases at rate ω.
            acc_omega += -ratio.arg() / dt;
            count += 1;
        }
        if count == 0 {
            return None;
        }
        Some((acc_omega / count as f64, acc_gamma / count as f64))
    }
}

/// A recorded time history of per-report diagnostics for one simulation.
#[derive(Clone, Debug, Default)]
pub struct History {
    entries: Vec<Diagnostics>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one report.
    pub fn push(&mut self, d: Diagnostics) {
        self.entries.push(d);
    }

    /// Recorded entries in time order.
    pub fn entries(&self) -> &[Diagnostics] {
        &self.entries
    }

    /// Number of reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimate the exponential growth rate γ of the field energy from the
    /// trailing `window` entries via a least-squares fit of
    /// `ln|φ|²(t) ≈ 2γt + c`. Returns `None` with fewer than two usable
    /// points (or non-positive energies).
    pub fn growth_rate(&self, window: usize) -> Option<f64> {
        let n = self.entries.len();
        let start = n.saturating_sub(window);
        let pts: Vec<(f64, f64)> = self.entries[start..]
            .iter()
            .filter(|d| d.field_energy > 0.0 && d.field_energy.is_finite())
            .map(|d| (d.time, d.field_energy.ln()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let m = pts.len() as f64;
        let sx: f64 = pts.iter().map(|(t, _)| t).sum();
        let sy: f64 = pts.iter().map(|(_, y)| y).sum();
        let sxx: f64 = pts.iter().map(|(t, _)| t * t).sum();
        let sxy: f64 = pts.iter().map(|(t, y)| t * y).sum();
        let denom = m * sxx - sx * sx;
        if denom.abs() < 1e-300 {
            return None;
        }
        let slope = (m * sxy - sx * sy) / denom;
        Some(0.5 * slope) // |φ|² ~ e^{2γt}
    }

    /// Time-averaged heat flux over the trailing `window` entries.
    pub fn mean_heat_flux(&self, window: usize) -> Option<f64> {
        let n = self.entries.len();
        let start = n.saturating_sub(window);
        let tail = &self.entries[start..];
        if tail.is_empty() {
            return None;
        }
        Some(tail.iter().map(|d| d.heat_flux).sum::<f64>() / tail.len() as f64)
    }

    /// Render as CSV (`time,field_energy,heat_flux,h_norm2`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,field_energy,heat_flux,h_norm2\n");
        for d in &self.entries {
            let _ = writeln!(
                out,
                "{:.6},{:.9e},{:.9e},{:.9e}",
                d.time, d.field_energy, d.heat_flux, d.h_norm2
            );
        }
        out
    }

    /// Parse a CSV produced by [`Self::to_csv`].
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 {
                if line != "time,field_energy,heat_flux,h_norm2" {
                    return Err(format!("bad header: {line}"));
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 4 {
                return Err(format!("line {}: expected 4 columns", i + 1));
            }
            let parse =
                |s: &str| s.parse::<f64>().map_err(|e| format!("line {}: {e}", i + 1));
            entries.push(Diagnostics {
                time: parse(cols[0])?,
                field_energy: parse(cols[1])?,
                heat_flux: parse(cols[2])?,
                h_norm2: parse(cols[3])?,
            });
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_trace_recovers_frequency_and_growth() {
        let omega = 1.7;
        let gamma = 0.23;
        let mut tr = ComplexTrace::new();
        for i in 0..30 {
            let t = i as f64 * 0.1;
            let amp = Complex64::cis(-omega * t).scale((gamma * t).exp() * 1e-4);
            tr.push(t, amp);
        }
        let (w, g) = tr.frequency(30).unwrap();
        assert!((w - omega).abs() < 1e-10, "omega {w}");
        assert!((g - gamma).abs() < 1e-10, "gamma {g}");
    }

    #[test]
    fn complex_trace_degenerate_cases() {
        let mut tr = ComplexTrace::new();
        assert!(tr.frequency(5).is_none());
        tr.push(0.0, Complex64::ONE);
        assert!(tr.frequency(5).is_none());
        tr.push(0.0, Complex64::ONE); // zero dt pair skipped
        assert!(tr.frequency(5).is_none());
        tr.push(1.0, Complex64::ZERO); // zero amplitude skipped
        assert!(tr.frequency(5).is_none());
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn complex_trace_windowing_uses_tail() {
        // First half decays, second half grows: a tail window must report
        // the growth.
        let mut tr = ComplexTrace::new();
        for i in 0..10 {
            let t = i as f64;
            let g = if i < 5 { -0.5 } else { 0.5 };
            tr.push(t, Complex64::real((g * t).exp()));
        }
        let (_, g_tail) = tr.frequency(4).unwrap();
        assert!(g_tail > 0.0);
    }

    fn diag(time: f64, energy: f64) -> Diagnostics {
        Diagnostics { time, field_energy: energy, heat_flux: 0.1, h_norm2: energy * 2.0 }
    }

    #[test]
    fn growth_rate_of_exact_exponential() {
        let gamma = 0.37;
        let mut h = History::new();
        for i in 0..20 {
            let t = i as f64 * 0.5;
            h.push(diag(t, (2.0 * gamma * t).exp() * 1e-6));
        }
        let est = h.growth_rate(20).unwrap();
        assert!((est - gamma).abs() < 1e-12, "{est} vs {gamma}");
        // Windowed estimate over the tail agrees too.
        let est_tail = h.growth_rate(5).unwrap();
        assert!((est_tail - gamma).abs() < 1e-10);
    }

    #[test]
    fn decaying_signal_has_negative_rate() {
        let mut h = History::new();
        for i in 0..10 {
            let t = i as f64;
            h.push(diag(t, (-0.2 * t).exp()));
        }
        assert!(h.growth_rate(10).unwrap() < 0.0);
    }

    #[test]
    fn degenerate_histories_return_none() {
        let mut h = History::new();
        assert!(h.growth_rate(10).is_none());
        h.push(diag(0.0, 1.0));
        assert!(h.growth_rate(10).is_none(), "one point is not a trend");
        h.push(diag(0.0, 1.0)); // same time twice -> zero denominator
        assert!(h.growth_rate(10).is_none());
        let mut h = History::new();
        h.push(diag(0.0, -1.0));
        h.push(diag(1.0, 0.0));
        assert!(h.growth_rate(10).is_none(), "non-positive energies skipped");
    }

    #[test]
    fn csv_roundtrip() {
        let mut h = History::new();
        for i in 0..5 {
            h.push(Diagnostics {
                time: i as f64 * 0.1,
                field_energy: 1e-5 * (i + 1) as f64,
                heat_flux: -0.3 + i as f64,
                h_norm2: 2.0,
            });
        }
        let csv = h.to_csv();
        let back = History::from_csv(&csv).unwrap();
        assert_eq!(back.len(), 5);
        for (a, b) in h.entries().iter().zip(back.entries()) {
            assert!((a.time - b.time).abs() < 1e-12);
            assert!((a.field_energy - b.field_energy).abs() < 1e-12 * a.field_energy.abs());
            assert!((a.heat_flux - b.heat_flux).abs() < 1e-9);
        }
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(History::from_csv("wrong,header\n").is_err());
        assert!(History::from_csv("time,field_energy,heat_flux,h_norm2\n1,2,3\n").is_err());
        assert!(History::from_csv("time,field_energy,heat_flux,h_norm2\na,b,c,d\n").is_err());
    }

    #[test]
    fn mean_flux_windows() {
        let mut h = History::new();
        for i in 0..4 {
            h.push(Diagnostics {
                time: i as f64,
                field_energy: 1.0,
                heat_flux: i as f64,
                h_norm2: 1.0,
            });
        }
        assert_eq!(h.mean_heat_flux(2).unwrap(), 2.5);
        assert_eq!(h.mean_heat_flux(100).unwrap(), 1.5);
        assert!(History::new().mean_heat_flux(3).is_none());
    }
}
