//! The str (streaming) phase right-hand side.
//!
//! Operates in the str layout `(nc, nv_loc, nt_loc)` — the phase that needs
//! the **complete configuration dimension** locally, because the parallel
//! streaming term couples poloidal neighbours along the field line (paper
//! §2). Besides the stencil work this phase owns the two velocity-moment
//! AllReduce call sites of Figure 1: the field solve
//! ([`crate::field::FieldSolver`]) and the upwind moment computed here.

use crate::geometry::Geometry;
use crate::grid::{ky_modes, ConfigGrid, VelocityGrid};
use crate::input::CgyroInput;
use std::ops::Range;
use xg_linalg::Complex64;
use xg_tensor::{Tensor2, Tensor3};

/// Precomputed streaming-phase coefficients for one rank's slice.
#[derive(Clone, Debug)]
pub struct StrKernel {
    /// `v_∥` per local iv.
    vpar: Vec<f64>,
    /// Drift energy weight `(ε(1+ξ²))/2` per local iv.
    eps_d: Vec<f64>,
    /// Upwind moment weight `|v_∥|·w(iv)` per local iv (measure included).
    upw_w: Vec<f64>,
    /// Upwind response weight per local iv.
    upw_u: Vec<f64>,
    /// Gradient-drive coefficient per `(ic, iv_loc, it_loc)` (gyroaveraged
    /// and gradient-weighted; this is where `rln`/`rlt` — the ensemble
    /// sweep parameters — enter, and the only place).
    drive: Tensor3<f64>,
    /// Curvature-drift frequency `ω_d(ic, it_loc)` spatial part.
    omega_d: Tensor2<f64>,
    /// Parallel metric per ic.
    metric: Vec<f64>,
    /// `k_y` per local toroidal mode.
    ky_loc: Vec<f64>,
    n_theta: usize,
    dtheta_inv: f64,
    upwind_diss: f64,
    nv_range: Range<usize>,
    nt_range: Range<usize>,
}

impl StrKernel {
    /// Build coefficients for `nv_range × nt_range`.
    pub fn new(
        input: &CgyroInput,
        v: &VelocityGrid,
        cfg: &ConfigGrid,
        geo: &Geometry,
        nv_range: Range<usize>,
        nt_range: Range<usize>,
    ) -> Self {
        let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
        let ky = ky_modes(input);
        let nc = cfg.nc();
        let nvl = nv_range.len();
        let ntl = nt_range.len();

        let vpar: Vec<f64> = nv_range.clone().map(|iv| v.v_par(iv, &masses)).collect();
        let eps_d: Vec<f64> = nv_range
            .clone()
            .map(|iv| {
                let (_, ie, ix) = v.unflatten(iv);
                0.5 * v.energy[ie] * (1.0 + v.xi[ix] * v.xi[ix])
            })
            .collect();
        let upw_w: Vec<f64> =
            nv_range.clone().map(|iv| v.weight(iv) * v.v_par(iv, &masses).abs()).collect();
        // Response shape: normalized so a unit moment produces an O(1)
        // correction; thermal-speed scaled.
        let upw_u: Vec<f64> = nv_range
            .clone()
            .map(|iv| {
                let (is, _, _) = v.unflatten(iv);
                let s = &input.species[is];
                (s.temp / s.mass).sqrt()
            })
            .collect();

        let mut drive = Tensor3::new(nc, nvl, ntl);
        for ic in 0..nc {
            for (ivl, iv) in nv_range.clone().enumerate() {
                let (is, ie, _) = v.unflatten(iv);
                let s = &input.species[is];
                let grad = s.rln + (v.energy[ie] - 1.5) * s.rlt;
                let rho2 = crate::field::rho2_of(s.mass, s.temp, s.z, v.energy[ie]);
                for (itl, itor) in nt_range.clone().enumerate() {
                    let j0 = crate::field::gyroaverage(geo.kperp2(ic, itor), rho2);
                    drive[(ic, ivl, itl)] = grad * j0 * s.z / s.temp;
                }
            }
        }

        let mut omega_d = Tensor2::new(nc, ntl);
        for ic in 0..nc {
            for (itl, itor) in nt_range.clone().enumerate() {
                // c_drift keeps frequencies moderate relative to streaming.
                omega_d[(ic, itl)] = 0.2 * ky[itor] * geo.drift(ic);
            }
        }

        let metric: Vec<f64> = (0..nc).map(|ic| geo.parallel_metric(ic)).collect();
        let ky_loc: Vec<f64> = nt_range.clone().map(|itor| ky[itor]).collect();
        let dtheta = 2.0 * std::f64::consts::PI / input.n_theta as f64;

        Self {
            vpar,
            eps_d,
            upw_w,
            upw_u,
            drive,
            omega_d,
            metric,
            ky_loc,
            n_theta: input.n_theta,
            dtheta_inv: 1.0 / dtheta,
            upwind_diss: input.upwind_diss,
            nv_range,
            nt_range,
        }
    }

    /// Owned velocity range.
    pub fn nv_range(&self) -> Range<usize> {
        self.nv_range.clone()
    }

    /// Owned toroidal range.
    pub fn nt_range(&self) -> Range<usize> {
        self.nt_range.clone()
    }

    /// Accumulate this rank's partial upwind moment
    /// `U(ic, n) = Σ_iv |v_∥|·w·h` into `partial` (`nc × nt_loc`).
    /// Completed with the same `nv`-communicator AllReduce as the field
    /// solve (Figure 1's second AllReduce family).
    pub fn partial_upwind(&self, h: &Tensor3<Complex64>, partial: &mut [Complex64]) {
        let (nc, nvl, ntl) = h.shape();
        assert_eq!(partial.len(), nc * ntl);
        partial.iter_mut().for_each(|z| *z = Complex64::ZERO);
        for ic in 0..nc {
            for ivl in 0..nvl {
                let w = self.upw_w[ivl];
                let line = h.line(ic, ivl);
                for itl in 0..ntl {
                    partial[ic * ntl + itl] += line[itl] * w;
                }
            }
        }
    }

    /// Evaluate the streaming-phase RHS into `rhs` (same str layout as
    /// `h`): parallel streaming (4th-order centered + upwind biasing),
    /// curvature drift, gradient drive, and the upwind-moment correction.
    ///
    /// `phi`, `apar` and `upwind` are the completed (post-AllReduce)
    /// fields, `nc × nt_loc` row-major. The drive acts on the generalized
    /// potential `ψ = φ − v∥·A∥`; pass an all-zero `apar` for
    /// electrostatic runs (the electrostatic path is bit-identical).
    pub fn rhs(
        &self,
        h: &Tensor3<Complex64>,
        phi: &[Complex64],
        apar: &[Complex64],
        upwind: &[Complex64],
        rhs: &mut Tensor3<Complex64>,
    ) {
        let (nc, nvl, ntl) = h.shape();
        assert_eq!(rhs.shape(), h.shape());
        assert_eq!(phi.len(), nc * ntl);
        assert_eq!(apar.len(), nc * ntl);
        assert_eq!(upwind.len(), nc * ntl);
        let nth = self.n_theta;
        let nr = nc / nth;
        debug_assert_eq!(nr * nth, nc);

        for ir in 0..nr {
            let base = ir * nth;
            for jt in 0..nth {
                let ic = base + jt;
                // Periodic poloidal neighbours along the field line.
                let icm2 = base + (jt + nth - 2) % nth;
                let icm1 = base + (jt + nth - 1) % nth;
                let icp1 = base + (jt + 1) % nth;
                let icp2 = base + (jt + 2) % nth;
                let metric = self.metric[ic];
                for ivl in 0..nvl {
                    let vs = self.vpar[ivl] * metric;
                    let c1 = vs * self.dtheta_inv / 12.0;
                    let cd = self.vpar[ivl].abs() * metric * self.dtheta_inv / 16.0
                        * self.upwind_diss;
                    for itl in 0..ntl {
                        let hm2 = h[(icm2, ivl, itl)];
                        let hm1 = h[(icm1, ivl, itl)];
                        let h0 = h[(ic, ivl, itl)];
                        let hp1 = h[(icp1, ivl, itl)];
                        let hp2 = h[(icp2, ivl, itl)];
                        // 4th-order centered derivative.
                        let dh = (hp1 - hm1) * 8.0 - (hp2 - hm2);
                        // Upwind (hyper-)dissipation.
                        let diss = hp2 - hp1 * 4.0 + h0 * 6.0 - hm1 * 4.0 + hm2;
                        let f = ic * ntl + itl;
                        let wd = self.omega_d[(ic, itl)] * self.eps_d[ivl];
                        let drive = self.drive[(ic, ivl, itl)] * self.ky_loc[itl];
                        let upw =
                            self.upwind_diss * self.ky_loc[itl] * self.upw_u[ivl] * 0.05;
                        let psi = phi[f] - apar[f].scale(self.vpar[ivl]);
                        rhs[(ic, ivl, itl)] = -dh * c1 - diss * cd
                            - Complex64::new(0.0, wd) * h0
                            + Complex64::new(0.0, drive) * psi
                            - upwind[f] * upw;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(input: &CgyroInput) -> (VelocityGrid, ConfigGrid, Geometry) {
        let v = VelocityGrid::new(input);
        let cfg = ConfigGrid::new(input);
        let geo = Geometry::new(input, &cfg);
        (v, cfg, geo)
    }

    fn full_kernel(input: &CgyroInput) -> (StrKernel, VelocityGrid, ConfigGrid) {
        let (v, cfg, geo) = setup(input);
        let k = StrKernel::new(input, &v, &cfg, &geo, 0..v.nv(), 0..input.n_toroidal);
        (k, v, cfg)
    }

    #[test]
    fn streaming_derivative_is_exact_for_low_harmonics() {
        // h = exp(i m θ) per field line: the 4th-order stencil differentiates
        // low harmonics nearly exactly; with drift/drive/upwind zeroed the
        // rhs must be −v_∥·metric·(i m)·h.
        let mut input = CgyroInput::test_small();
        input.n_theta = 32;
        input.upwind_diss = 0.0;
        input.nu_ee = 0.0;
        let (k, v, cfg) = full_kernel(&input);
        let m = 2.0;
        let h = Tensor3::from_fn(cfg.nc(), v.nv(), input.n_toroidal, |ic, _, _| {
            let (_, ith) = cfg.unflatten(ic);
            Complex64::cis(m * cfg.theta[ith])
        });
        let phi = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
        let apar = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
        let upw = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
        let mut rhs = Tensor3::new(cfg.nc(), v.nv(), input.n_toroidal);
        k.rhs(&h, &phi, &apar, &upw, &mut rhs);
        let masses: Vec<f64> = input.species.iter().map(|s| s.mass).collect();
        // Check a sample of points (skip drift term by comparing the full
        // rhs against the analytic streaming+drift expectation).
        for iv in [0usize, 3, 7] {
            let vs = v.v_par(iv, &masses) / input.q;
            for ic in [0usize, 5, 17] {
                let expect = -Complex64::new(0.0, m * vs) * h[(ic, iv, 0)]
                    - Complex64::new(0.0, k.omega_d[(ic, 0)] * k.eps_d[iv]) * h[(ic, iv, 0)];
                let got = rhs[(ic, iv, 0)];
                assert!(
                    (got - expect).abs() < 3e-3 * (1.0 + expect.abs()),
                    "ic={ic} iv={iv}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn constant_in_theta_has_no_streaming() {
        let mut input = CgyroInput::test_small();
        input.upwind_diss = 0.0;
        let (k, v, cfg) = full_kernel(&input);
        let h = Tensor3::from_fn(cfg.nc(), v.nv(), input.n_toroidal, |ic, iv, _| {
            let (ir, _) = cfg.unflatten(ic);
            Complex64::new((ir * 3 + iv) as f64, 0.0) // constant along theta
        });
        let phi = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
        let apar = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
        let upw = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
        let mut rhs = Tensor3::new(cfg.nc(), v.nv(), input.n_toroidal);
        k.rhs(&h, &phi, &apar, &upw, &mut rhs);
        // Only the drift term (imaginary rotation) may remain: the real
        // part of rhs/h must vanish.
        for ic in 0..cfg.nc() {
            for iv in 0..v.nv() {
                let r = rhs[(ic, iv, 0)];
                assert!(r.re.abs() < 1e-10, "streaming of constant must vanish, got {r}");
            }
        }
    }

    #[test]
    fn drive_term_injects_phi() {
        let mut input = CgyroInput::test_small();
        input.upwind_diss = 0.0;
        let (k, v, cfg) = full_kernel(&input);
        let h = Tensor3::new(cfg.nc(), v.nv(), input.n_toroidal);
        let phi = vec![Complex64::ONE; cfg.nc() * input.n_toroidal];
        let apar = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
        let upw = vec![Complex64::ZERO; cfg.nc() * input.n_toroidal];
        let mut rhs = Tensor3::new(cfg.nc(), v.nv(), input.n_toroidal);
        k.rhs(&h, &phi, &apar, &upw, &mut rhs);
        // Nonzero somewhere, purely imaginary (i·drive·phi with real drive).
        let mut nonzero = false;
        for ic in 0..cfg.nc() {
            for iv in 0..v.nv() {
                let r = rhs[(ic, iv, 0)];
                assert!(r.re.abs() < 1e-12);
                if r.im.abs() > 1e-12 {
                    nonzero = true;
                }
            }
        }
        assert!(nonzero, "drive must act on phi");
    }

    #[test]
    fn gradients_enter_only_through_drive() {
        // Same deck, different gradients: kernels must differ only in the
        // drive table (the sweep-parameter isolation behind cmat sharing).
        let a = CgyroInput::test_small();
        let b = a.with_gradients(3.0, 0.2);
        let (ka, _, _) = full_kernel(&a);
        let (kb, _, _) = full_kernel(&b);
        assert_eq!(ka.vpar, kb.vpar);
        assert_eq!(ka.upw_w, kb.upw_w);
        assert_ne!(ka.drive.as_slice(), kb.drive.as_slice());
    }

    #[test]
    fn partial_upwind_sums_like_field_moment() {
        let input = CgyroInput::test_small();
        let (k, v, cfg) = full_kernel(&input);
        let ntl = input.n_toroidal;
        let h = Tensor3::from_fn(cfg.nc(), v.nv(), ntl, |ic, iv, it| {
            Complex64::new((ic + iv + it) as f64, (iv * 2) as f64)
        });
        let mut full = vec![Complex64::ZERO; cfg.nc() * ntl];
        k.partial_upwind(&h, &mut full);

        // Split in two nv ranges; partials must sum to the full moment.
        let (vg, cfgg, geo) = setup(&input);
        let half = v.nv() / 2;
        let mut acc = vec![Complex64::ZERO; cfg.nc() * ntl];
        for r in [0..half, half..v.nv()] {
            let kk = StrKernel::new(&input, &vg, &cfgg, &geo, r.clone(), 0..ntl);
            let hp = Tensor3::from_fn(cfg.nc(), r.len(), ntl, |ic, ivl, it| {
                h[(ic, r.start + ivl, it)]
            });
            let mut p = vec![Complex64::ZERO; cfg.nc() * ntl];
            kk.partial_upwind(&hp, &mut p);
            for (a, b) in acc.iter_mut().zip(&p) {
                *a += *b;
            }
        }
        for (a, b) in acc.iter().zip(&full) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }
}
