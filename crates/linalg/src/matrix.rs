//! Dense row-major real matrices.
//!
//! The collisional constant tensor is a stack of dense `nv × nv` *real*
//! matrices, one per (configuration point, toroidal mode). This module
//! provides the storage type plus the small set of operations the collision
//! pipeline needs: construction, element access, transpose, addition of
//! scaled identity, row/column extraction.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct RealMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RealMatrix {
    /// Allocate a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from an existing row-major buffer. Panics if the length does not
    /// match `rows × cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Diagonal matrix from a slice of diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row-major backing slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the row-major backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `self += s·I` (square only). Used to form `I ∓ Δt/2·C`.
    pub fn add_scaled_identity(&mut self, s: f64) {
        assert!(self.is_square(), "add_scaled_identity needs a square matrix");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += s;
        }
    }

    /// In-place scale by `s`.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self += s · other`, shapes must match.
    pub fn axpy(&mut self, s: f64, other: &Self) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Maximum absolute entry (∞-norm of the entries, not the operator norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of entries in row `i` — the density-conservation check for
    /// collision operators is "every row of `C` acting on a constant gives 0",
    /// i.e. row sums of the weighted operator vanish.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row(i).iter().sum()
    }

    /// Trace (square only).
    pub fn trace(&self) -> f64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }
}

impl Index<(usize, usize)> for RealMatrix {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RealMatrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&RealMatrix> for &RealMatrix {
    type Output = RealMatrix;
    fn add(self, rhs: &RealMatrix) -> RealMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        RealMatrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub<&RealMatrix> for &RealMatrix {
    type Output = RealMatrix;
    fn sub(self, rhs: &RealMatrix) -> RealMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        RealMatrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Mul<&RealMatrix> for &RealMatrix {
    type Output = RealMatrix;
    fn mul(self, rhs: &RealMatrix) -> RealMatrix {
        crate::gemm::matmul(self, rhs)
    }
}

impl fmt::Debug for RealMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RealMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = RealMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = RealMatrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = RealMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        let _ = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = RealMatrix::from_fn(3, 4, |i, j| (i + 2 * j) as f64);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn scaled_identity_and_axpy() {
        let mut m = RealMatrix::zeros(3, 3);
        m.add_scaled_identity(2.5);
        assert_eq!(m.trace(), 7.5);
        let id = RealMatrix::identity(3);
        m.axpy(-2.5, &id);
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    fn diagonal_and_row_sum() {
        let d = RealMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.row_sum(1), 2.0);
        assert_eq!(d.trace(), 6.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = RealMatrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = RealMatrix::from_fn(2, 2, |i, j| (i * j) as f64 + 1.0);
        let c = &(&a + &b) - &b;
        assert_eq!(c, a);
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let m = RealMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn scale_inplace_scales_everything() {
        let mut m = RealMatrix::from_fn(2, 2, |_, _| 2.0);
        m.scale_inplace(0.5);
        assert!(m.as_slice().iter().all(|&v| v == 1.0));
    }
}
