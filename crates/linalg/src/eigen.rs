//! Spectral estimation: power iteration for the dominant eigenvalue
//! magnitude. Used to verify the collision propagator is a contraction
//! (`ρ(A) ≤ 1`, the A-stability of Crank–Nicolson on a dissipative
//! operator).

use crate::matrix::RealMatrix;

/// Estimate the spectral radius of a square matrix by power iteration with
/// a deterministic start vector. Returns `(rho, iterations_used)`.
///
/// Converges linearly with ratio `|λ₂/λ₁|`; `tol` bounds the relative
/// change between iterations, `max_iter` caps the work.
pub fn spectral_radius(a: &RealMatrix, tol: f64, max_iter: usize) -> (f64, usize) {
    assert!(a.is_square(), "spectral radius needs a square matrix");
    let n = a.rows();
    assert!(n > 0);
    // Deterministic pseudo-random start to avoid orthogonality accidents.
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i as f64 + 1.0) * 0.7548776662466927; // plastic-ratio lattice
            2.0 * (x - x.floor()) - 1.0
        })
        .collect();
    let norm0 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    for x in &mut v {
        *x /= norm0;
    }
    let mut w = vec![0.0; n];
    let mut rho = 0.0;
    for it in 1..=max_iter {
        crate::gemm::matvec(a, &v, &mut w);
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return (0.0, it);
        }
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi = wi / norm;
        }
        let prev = rho;
        rho = norm;
        if it > 3 && (rho - prev).abs() <= tol * rho.max(1e-300) {
            return (rho, it);
        }
    }
    (rho, max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_dominant_entry() {
        let a = RealMatrix::from_diagonal(&[0.5, -3.0, 2.0]);
        let (rho, _) = spectral_radius(&a, 1e-12, 500);
        assert!((rho - 3.0).abs() < 1e-9, "{rho}");
    }

    #[test]
    fn rotation_scaled_matrix() {
        // 2x2 rotation scaled by 0.8: complex pair of modulus 0.8. Power
        // iteration on the norm still converges to |λ| for scaled
        // rotations because every vector is scaled by exactly 0.8.
        let s = 0.8;
        let (c, sn) = (0.3f64.cos() * s, 0.3f64.sin() * s);
        let a = RealMatrix::from_vec(2, 2, vec![c, -sn, sn, c]);
        let (rho, _) = spectral_radius(&a, 1e-13, 1000);
        assert!((rho - s).abs() < 1e-9, "{rho}");
    }

    #[test]
    fn zero_matrix_has_zero_radius() {
        let a = RealMatrix::zeros(4, 4);
        let (rho, it) = spectral_radius(&a, 1e-12, 100);
        assert_eq!(rho, 0.0);
        assert_eq!(it, 1);
    }

    #[test]
    fn identity_has_radius_one() {
        let a = RealMatrix::identity(6);
        let (rho, _) = spectral_radius(&a, 1e-14, 100);
        assert!((rho - 1.0).abs() < 1e-12);
    }
}
