//! SIMD micro-kernels and the runtime capability probe for the collision
//! panel apply.
//!
//! The collision step is a stream of real-panel × complex-multi-RHS
//! products. This module provides three interchangeable micro-kernels —
//! portable scalar, AVX2/FMA (f64x4) and AVX-512F (f64x8) — selected once
//! per process by a runtime CPUID probe (overridable via
//! [`SIMD_ENV`] = `XGYRO_SIMD={auto,avx512,avx2,scalar}`), plus the
//! L2-cache budget detection that sizes panel row tiles
//! ([`L2_ENV`] = `XGYRO_L2_KB` override).
//!
//! # Bitwise determinism contract
//!
//! Every kernel computes, for each `(row i, rhs r)` output component,
//!
//! ```text
//! acc ← 0;  for j in 0..n (ascending):  acc ← fma(a[i·n+j], x[r·n+j].{re,im}, acc)
//! ```
//!
//! — one accumulator per `(row, rhs, component)`, accumulated sequentially
//! over ascending `j` with a single fused multiply-add per term. The SIMD
//! variants vectorize across *right-hand sides* (each vector lane holds one
//! independent `(rhs, component)` accumulator), never across `j`, so the
//! per-lane operation sequence is exactly the scalar one. Since
//! [`f64::mul_add`] and the x86 `vfmadd` instructions are both
//! correctly-rounded IEEE 754 fused multiply-adds, all kernels — and any
//! row tiling of them — produce bitwise-identical results. The test suite
//! and the CI `kernel-matrix` job enforce this.

use crate::complex::Complex64;
use std::cell::RefCell;
use std::fmt;
use std::ops::Range;
use std::str::FromStr;
use std::sync::OnceLock;

/// Environment variable selecting the SIMD micro-kernel
/// (`auto`/`avx512`/`avx2`/`scalar`; default `auto`). Requests above the
/// hardware's capability are clamped down to the detected maximum.
pub const SIMD_ENV: &str = "XGYRO_SIMD";

/// Environment variable overriding the detected per-core L2 cache size
/// (in KiB) used to size collision panel row tiles.
pub const L2_ENV: &str = "XGYRO_L2_KB";

/// A SIMD capability level for the panel micro-kernels. Ordered by lane
/// width so levels can be clamped against the hardware probe with `min`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable register-blocked scalar kernel (FMA contraction via
    /// [`f64::mul_add`]; compiled with hardware FMA when available).
    Scalar,
    /// AVX2 + FMA: 4 × f64 lanes (2 complex RHS per vector).
    Avx2,
    /// AVX-512F: 8 × f64 lanes (4 complex RHS per vector).
    Avx512,
}

impl SimdLevel {
    /// All levels, narrowest first.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512];

    /// Stable lowercase name (`scalar`/`avx2`/`avx512`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// f64 lanes per vector register at this level.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Avx2 => 4,
            SimdLevel::Avx512 => 8,
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SimdLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(SimdLevel::Scalar),
            "avx2" => Ok(SimdLevel::Avx2),
            "avx512" => Ok(SimdLevel::Avx512),
            other => Err(format!(
                "unknown SIMD level {other:?} (expected auto, avx512, avx2 or scalar)"
            )),
        }
    }
}

/// Probe the hardware once: the widest level this CPU can execute.
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Whether the CPU has a hardware fused multiply-add (used to pick the
/// fast instantiation of the scalar kernels; the arithmetic is identical
/// either way because [`f64::mul_add`] is correctly rounded everywhere).
pub(crate) fn hw_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static HW: OnceLock<bool> = OnceLock::new();
        *HW.get_or_init(|| std::arch::is_x86_feature_detected!("fma"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolve a requested level string against the detected capability:
/// `None`/`"auto"` → detected; an explicit level is clamped down to the
/// detected maximum (asking for `avx512` on an AVX2 machine runs AVX2).
pub fn resolve_level(request: Option<&str>, detected: SimdLevel) -> Result<SimdLevel, String> {
    match request {
        None => Ok(detected),
        Some(s) if s.trim().is_empty() || s.trim().eq_ignore_ascii_case("auto") => Ok(detected),
        Some(s) => s.parse::<SimdLevel>().map(|l| l.min(detected)),
    }
}

/// The process-wide kernel level: [`SIMD_ENV`] resolved against the probe,
/// computed once at first use.
pub fn selected_level() -> SimdLevel {
    static SELECTED: OnceLock<SimdLevel> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        resolve_level(std::env::var(SIMD_ENV).ok().as_deref(), detected_level())
            .unwrap_or_else(|e| panic!("{SIMD_ENV}: {e}"))
    })
}

/// Levels usable in this process, narrowest first — the autotuner's
/// candidate set. Respects both the hardware probe and a [`SIMD_ENV`] cap
/// (under `XGYRO_SIMD=scalar` only the scalar kernel is a candidate).
pub fn available_levels() -> Vec<SimdLevel> {
    let top = selected_level();
    SimdLevel::ALL.iter().copied().filter(|l| *l <= top).collect()
}

/// Parse a sysfs cache-size string (`"2048K"`, `"1M"`, plain bytes) to KiB.
fn parse_cache_size_kb(s: &str) -> Option<usize> {
    let t = s.trim();
    if let Some(v) = t.strip_suffix(['K', 'k']) {
        v.parse::<usize>().ok()
    } else if let Some(v) = t.strip_suffix(['M', 'm']) {
        v.parse::<usize>().ok().map(|m| m * 1024)
    } else {
        t.parse::<usize>().ok().map(|b| b / 1024)
    }
}

/// Fallback L2 size when the platform exposes nothing.
const DEFAULT_L2_KB: usize = 512;

/// Detect the per-core L2 cache size in KiB from sysfs (`index2` is the
/// unified L2 on every Linux x86 layout); falls back to
/// [`DEFAULT_L2_KB`] KiB.
pub fn detect_l2_kb() -> usize {
    for idx in ["index2", "index1"] {
        let path = format!("/sys/devices/system/cpu/cpu0/cache/{idx}/size");
        let level_path = format!("/sys/devices/system/cpu/cpu0/cache/{idx}/level");
        let is_l2 = std::fs::read_to_string(&level_path)
            .map(|l| l.trim() == "2")
            .unwrap_or(false);
        if !is_l2 {
            continue;
        }
        if let Some(kb) = std::fs::read_to_string(&path).ok().and_then(|s| parse_cache_size_kb(&s))
        {
            if kb > 0 {
                return kb;
            }
        }
    }
    DEFAULT_L2_KB
}

/// The L2 budget (KiB) that sizes panel row tiles: [`L2_ENV`] override if
/// set, else the sysfs probe. Computed once per process.
pub fn l2_cache_kb() -> usize {
    static KB: OnceLock<usize> = OnceLock::new();
    *KB.get_or_init(|| {
        std::env::var(L2_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&kb| kb > 0)
            .unwrap_or_else(detect_l2_kb)
    })
}

/// Default row-tile height for an `n×n` panel under an `l2_kb` KiB budget:
/// half the L2 holds the resident panel tile (`tile_rows · n · 8` bytes),
/// leaving the rest for the streamed RHS block and outputs. Tiling changes
/// only which rows a kernel invocation covers, never the per-(row, rhs)
/// accumulation order, so any tile height is bitwise-neutral.
pub fn default_tile_rows(n: usize, l2_kb: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let budget_bytes = l2_kb * 1024 / 2;
    (budget_bytes / (n * 8)).clamp(8.min(n), n)
}

thread_local! {
    /// Per-thread packing scratch for the interleaved RHS block.
    static PACK_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Pack the RHS-major complex block into the j-major interleaved layout the
/// SIMD kernels stream: `xp[j·2k + 2r] = x[r·n + j].re`,
/// `xp[j·2k + 2r + 1] = x[r·n + j].im`. One panel column index `j` maps to
/// `2·nrhs` contiguous f64 lanes, so the inner kernel loop is one broadcast
/// plus contiguous FMAs.
fn pack_rhs(x: &[Complex64], n: usize, nrhs: usize, xp: &mut Vec<f64>) {
    let w = 2 * nrhs;
    xp.clear();
    xp.resize(n * w, 0.0);
    for r in 0..nrhs {
        let col = &x[r * n..(r + 1) * n];
        for (j, z) in col.iter().enumerate() {
            xp[j * w + 2 * r] = z.re;
            xp[j * w + 2 * r + 1] = z.im;
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar kernel (register-blocked 4/2/1 over RHS, FMA contraction).
// ---------------------------------------------------------------------------

/// Shared scalar body: instantiated twice, plain and under
/// `#[target_feature(enable = "fma")]`, so `mul_add` compiles to `vfmadd`
/// on FMA hardware (the default x86-64 target is SSE2-only) while staying
/// bit-identical to the software fallback.
///
/// # Safety
/// `y` must be valid for `n·nrhs` elements; `rows` must lie in `0..=n`.
#[allow(clippy::missing_safety_doc)]
#[inline(always)]
unsafe fn rows_scalar_body(
    a: &[f64],
    n: usize,
    x: &[Complex64],
    y: *mut Complex64,
    nrhs: usize,
    rows: Range<usize>,
) {
    let mut r = 0usize;
    while r + 4 <= nrhs {
        let (x0, x1, x2, x3) = (
            &x[r * n..(r + 1) * n],
            &x[(r + 1) * n..(r + 2) * n],
            &x[(r + 2) * n..(r + 3) * n],
            &x[(r + 3) * n..(r + 4) * n],
        );
        for i in rows.clone() {
            let row = &a[i * n..(i + 1) * n];
            let (mut re0, mut im0) = (0.0f64, 0.0f64);
            let (mut re1, mut im1) = (0.0f64, 0.0f64);
            let (mut re2, mut im2) = (0.0f64, 0.0f64);
            let (mut re3, mut im3) = (0.0f64, 0.0f64);
            for j in 0..n {
                let aij = row[j];
                re0 = aij.mul_add(x0[j].re, re0);
                im0 = aij.mul_add(x0[j].im, im0);
                re1 = aij.mul_add(x1[j].re, re1);
                im1 = aij.mul_add(x1[j].im, im1);
                re2 = aij.mul_add(x2[j].re, re2);
                im2 = aij.mul_add(x2[j].im, im2);
                re3 = aij.mul_add(x3[j].re, re3);
                im3 = aij.mul_add(x3[j].im, im3);
            }
            *y.add(r * n + i) = Complex64::new(re0, im0);
            *y.add((r + 1) * n + i) = Complex64::new(re1, im1);
            *y.add((r + 2) * n + i) = Complex64::new(re2, im2);
            *y.add((r + 3) * n + i) = Complex64::new(re3, im3);
        }
        r += 4;
    }
    if r + 2 <= nrhs {
        let (x0, x1) = (&x[r * n..(r + 1) * n], &x[(r + 1) * n..(r + 2) * n]);
        for i in rows.clone() {
            let row = &a[i * n..(i + 1) * n];
            let (mut re0, mut im0) = (0.0f64, 0.0f64);
            let (mut re1, mut im1) = (0.0f64, 0.0f64);
            for j in 0..n {
                let aij = row[j];
                re0 = aij.mul_add(x0[j].re, re0);
                im0 = aij.mul_add(x0[j].im, im0);
                re1 = aij.mul_add(x1[j].re, re1);
                im1 = aij.mul_add(x1[j].im, im1);
            }
            *y.add(r * n + i) = Complex64::new(re0, im0);
            *y.add((r + 1) * n + i) = Complex64::new(re1, im1);
        }
        r += 2;
    }
    if r < nrhs {
        let x0 = &x[r * n..(r + 1) * n];
        for i in rows.clone() {
            let row = &a[i * n..(i + 1) * n];
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for j in 0..n {
                let aij = row[j];
                re = aij.mul_add(x0[j].re, re);
                im = aij.mul_add(x0[j].im, im);
            }
            *y.add(r * n + i) = Complex64::new(re, im);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
unsafe fn rows_scalar_fma(
    a: &[f64],
    n: usize,
    x: &[Complex64],
    y: *mut Complex64,
    nrhs: usize,
    rows: Range<usize>,
) {
    rows_scalar_body(a, n, x, y, nrhs, rows)
}

/// # Safety
/// `y` must be valid for `n·nrhs` elements; `rows` must lie in `0..=n`.
unsafe fn rows_scalar(
    a: &[f64],
    n: usize,
    x: &[Complex64],
    y: *mut Complex64,
    nrhs: usize,
    rows: Range<usize>,
) {
    #[cfg(target_arch = "x86_64")]
    if hw_fma() {
        return rows_scalar_fma(a, n, x, y, nrhs, rows);
    }
    rows_scalar_body(a, n, x, y, nrhs, rows)
}

// ---------------------------------------------------------------------------
// x86 vector kernels over the packed interleaved RHS block.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Complex64;
    use std::arch::x86_64::*;
    use std::ops::Range;

    /// Store one ymm of 2 complex accumulators to `y[(r..r+2)·n + i]`.
    #[inline(always)]
    unsafe fn store2(y: *mut Complex64, n: usize, r: usize, i: usize, v: __m256d) {
        let mut t = [0.0f64; 4];
        _mm256_storeu_pd(t.as_mut_ptr(), v);
        *y.add(r * n + i) = Complex64::new(t[0], t[1]);
        *y.add((r + 1) * n + i) = Complex64::new(t[2], t[3]);
    }

    /// 2-RHS remainder (one ymm accumulator per row) at lane column `c = 2r`.
    #[inline(always)]
    unsafe fn tail2(
        a: &[f64],
        n: usize,
        xp: &[f64],
        w: usize,
        y: *mut Complex64,
        r: usize,
        rows: Range<usize>,
    ) {
        let c = 2 * r;
        for i in rows {
            let row = a.as_ptr().add(i * n);
            let mut acc = _mm256_setzero_pd();
            for j in 0..n {
                let xv = _mm256_loadu_pd(xp.as_ptr().add(j * w + c));
                acc = _mm256_fmadd_pd(_mm256_set1_pd(*row.add(j)), xv, acc);
            }
            store2(y, n, r, i, acc);
        }
    }

    /// 1-RHS remainder (one xmm accumulator per row) at lane column `c = 2r`.
    #[inline(always)]
    unsafe fn tail1(
        a: &[f64],
        n: usize,
        xp: &[f64],
        w: usize,
        y: *mut Complex64,
        r: usize,
        rows: Range<usize>,
    ) {
        let c = 2 * r;
        for i in rows {
            let row = a.as_ptr().add(i * n);
            let mut acc = _mm_setzero_pd();
            for j in 0..n {
                let xv = _mm_loadu_pd(xp.as_ptr().add(j * w + c));
                acc = _mm_fmadd_pd(_mm_set1_pd(*row.add(j)), xv, acc);
            }
            let mut t = [0.0f64; 2];
            _mm_storeu_pd(t.as_mut_ptr(), acc);
            *y.add(r * n + i) = Complex64::new(t[0], t[1]);
        }
    }

    /// AVX2/FMA kernel: 4 RHS (8 f64 lanes = 2 ymm) per group, rows in
    /// pairs so each packed x load feeds two broadcast·fma streams.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA; `xp` is the packed block of width
    /// `w = 2·nrhs`; `y` valid for `n·nrhs`; `rows ⊆ 0..n`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn rows_avx2(
        a: &[f64],
        n: usize,
        xp: &[f64],
        y: *mut Complex64,
        nrhs: usize,
        rows: Range<usize>,
    ) {
        let w = 2 * nrhs;
        let mut r = 0usize;
        while r + 4 <= nrhs {
            let c = 2 * r;
            let mut i = rows.start;
            while i + 2 <= rows.end {
                let row0 = a.as_ptr().add(i * n);
                let row1 = a.as_ptr().add((i + 1) * n);
                let mut acc00 = _mm256_setzero_pd();
                let mut acc01 = _mm256_setzero_pd();
                let mut acc10 = _mm256_setzero_pd();
                let mut acc11 = _mm256_setzero_pd();
                for j in 0..n {
                    let xlo = _mm256_loadu_pd(xp.as_ptr().add(j * w + c));
                    let xhi = _mm256_loadu_pd(xp.as_ptr().add(j * w + c + 4));
                    let a0 = _mm256_set1_pd(*row0.add(j));
                    let a1 = _mm256_set1_pd(*row1.add(j));
                    acc00 = _mm256_fmadd_pd(a0, xlo, acc00);
                    acc01 = _mm256_fmadd_pd(a0, xhi, acc01);
                    acc10 = _mm256_fmadd_pd(a1, xlo, acc10);
                    acc11 = _mm256_fmadd_pd(a1, xhi, acc11);
                }
                store2(y, n, r, i, acc00);
                store2(y, n, r + 2, i, acc01);
                store2(y, n, r, i + 1, acc10);
                store2(y, n, r + 2, i + 1, acc11);
                i += 2;
            }
            if i < rows.end {
                let row0 = a.as_ptr().add(i * n);
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                for j in 0..n {
                    let a0 = _mm256_set1_pd(*row0.add(j));
                    acc0 = _mm256_fmadd_pd(a0, _mm256_loadu_pd(xp.as_ptr().add(j * w + c)), acc0);
                    acc1 =
                        _mm256_fmadd_pd(a0, _mm256_loadu_pd(xp.as_ptr().add(j * w + c + 4)), acc1);
                }
                store2(y, n, r, i, acc0);
                store2(y, n, r + 2, i, acc1);
            }
            r += 4;
        }
        if r + 2 <= nrhs {
            tail2(a, n, xp, w, y, r, rows.clone());
            r += 2;
        }
        if r < nrhs {
            tail1(a, n, xp, w, y, r, rows);
        }
    }

    /// AVX-512F kernel: 8 RHS (16 f64 lanes = 2 zmm) per group, rows in
    /// pairs; remainders fall through to one zmm, then the ymm/xmm tails.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F (+AVX2/FMA for the tails); same
    /// contracts as [`rows_avx2`].
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub(super) unsafe fn rows_avx512(
        a: &[f64],
        n: usize,
        xp: &[f64],
        y: *mut Complex64,
        nrhs: usize,
        rows: Range<usize>,
    ) {
        let w = 2 * nrhs;
        let mut r = 0usize;
        while r + 8 <= nrhs {
            let c = 2 * r;
            let mut i = rows.start;
            while i + 2 <= rows.end {
                let row0 = a.as_ptr().add(i * n);
                let row1 = a.as_ptr().add((i + 1) * n);
                let mut acc00 = _mm512_setzero_pd();
                let mut acc01 = _mm512_setzero_pd();
                let mut acc10 = _mm512_setzero_pd();
                let mut acc11 = _mm512_setzero_pd();
                for j in 0..n {
                    let xlo = _mm512_loadu_pd(xp.as_ptr().add(j * w + c));
                    let xhi = _mm512_loadu_pd(xp.as_ptr().add(j * w + c + 8));
                    let a0 = _mm512_set1_pd(*row0.add(j));
                    let a1 = _mm512_set1_pd(*row1.add(j));
                    acc00 = _mm512_fmadd_pd(a0, xlo, acc00);
                    acc01 = _mm512_fmadd_pd(a0, xhi, acc01);
                    acc10 = _mm512_fmadd_pd(a1, xlo, acc10);
                    acc11 = _mm512_fmadd_pd(a1, xhi, acc11);
                }
                store8(y, n, r, i, acc00, acc01);
                store8(y, n, r, i + 1, acc10, acc11);
                i += 2;
            }
            if i < rows.end {
                let row0 = a.as_ptr().add(i * n);
                let mut acc0 = _mm512_setzero_pd();
                let mut acc1 = _mm512_setzero_pd();
                for j in 0..n {
                    let a0 = _mm512_set1_pd(*row0.add(j));
                    acc0 = _mm512_fmadd_pd(a0, _mm512_loadu_pd(xp.as_ptr().add(j * w + c)), acc0);
                    acc1 =
                        _mm512_fmadd_pd(a0, _mm512_loadu_pd(xp.as_ptr().add(j * w + c + 8)), acc1);
                }
                store8(y, n, r, i, acc0, acc1);
            }
            r += 8;
        }
        if r + 4 <= nrhs {
            let c = 2 * r;
            for i in rows.clone() {
                let row = a.as_ptr().add(i * n);
                let mut acc = _mm512_setzero_pd();
                for j in 0..n {
                    let xv = _mm512_loadu_pd(xp.as_ptr().add(j * w + c));
                    acc = _mm512_fmadd_pd(_mm512_set1_pd(*row.add(j)), xv, acc);
                }
                let mut t = [0.0f64; 8];
                _mm512_storeu_pd(t.as_mut_ptr(), acc);
                for m in 0..4 {
                    *y.add((r + m) * n + i) = Complex64::new(t[2 * m], t[2 * m + 1]);
                }
            }
            r += 4;
        }
        if r + 2 <= nrhs {
            tail2(a, n, xp, w, y, r, rows.clone());
            r += 2;
        }
        if r < nrhs {
            tail1(a, n, xp, w, y, r, rows);
        }
    }

    /// Store two zmm of 4 complex accumulators each to
    /// `y[(r..r+8)·n + i]`.
    #[inline(always)]
    unsafe fn store8(y: *mut Complex64, n: usize, r: usize, i: usize, lo: __m512d, hi: __m512d) {
        let mut t = [0.0f64; 16];
        _mm512_storeu_pd(t.as_mut_ptr(), lo);
        _mm512_storeu_pd(t.as_mut_ptr().add(8), hi);
        for m in 0..8 {
            *y.add((r + m) * n + i) = Complex64::new(t[2 * m], t[2 * m + 1]);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch entry points.
// ---------------------------------------------------------------------------

/// Clamp a requested level to what this CPU can actually execute (passing
/// `Avx512` on an AVX2-only machine must not fault).
#[inline]
fn effective(level: SimdLevel) -> SimdLevel {
    level.min(detected_level())
}

/// Apply rows `rows` of the `n×n` panel `a` to all `nrhs` right-hand sides
/// with the given kernel level, writing `y[r·n + i]` for `i ∈ rows`.
///
/// This is the tile-granular entry point the sim-layer worker-pool tasks
/// call: each task owns a disjoint `(panel, row-tile)` and the writes never
/// overlap. Bitwise identical to the scalar path for every level and row
/// range (see the module docs).
///
/// # Safety
/// `y` must be valid for `n·nrhs` writes. Concurrent calls on the same `y`
/// must target disjoint `rows` (same panel) or disjoint `y` regions.
pub unsafe fn apply_panel_rows_ptr(
    level: SimdLevel,
    a: &[f64],
    n: usize,
    x: &[Complex64],
    y: *mut Complex64,
    nrhs: usize,
    rows: Range<usize>,
) {
    debug_assert_eq!(a.len(), n * n, "apply_panel_rows_ptr: a.len() must be n*n");
    debug_assert_eq!(x.len(), n * nrhs, "apply_panel_rows_ptr: x.len() must be n*nrhs");
    debug_assert!(rows.end <= n, "apply_panel_rows_ptr: row range out of bounds");
    if nrhs == 0 || rows.is_empty() {
        return;
    }
    match effective(level) {
        SimdLevel::Scalar => rows_scalar(a, n, x, y, nrhs, rows),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => PACK_SCRATCH.with(|s| {
            let xp = &mut *s.borrow_mut();
            pack_rhs(x, n, nrhs, xp);
            x86::rows_avx2(a, n, xp, y, nrhs, rows)
        }),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => PACK_SCRATCH.with(|s| {
            let xp = &mut *s.borrow_mut();
            pack_rhs(x, n, nrhs, xp);
            x86::rows_avx512(a, n, xp, y, nrhs, rows)
        }),
        #[cfg(not(target_arch = "x86_64"))]
        _ => rows_scalar(a, n, x, y, nrhs, rows),
    }
}

/// Full panel apply with an explicit kernel level and row-tile height:
/// `Y = A·X` over row tiles of height `tile_rows`, each tile streamed
/// through all `nrhs` right-hand sides while L2-resident. The RHS block is
/// packed once per call (not once per tile).
///
/// Bitwise identical to [`crate::gemm::apply_panel_multi`] (and to the
/// per-column naive kernel) for every `(level, tile_rows)` — the autotuner
/// may pick any candidate without perturbing trajectories.
pub fn apply_panel_multi_with(
    level: SimdLevel,
    a: &[f64],
    n: usize,
    x: &[Complex64],
    y: &mut [Complex64],
    nrhs: usize,
    tile_rows: usize,
) {
    debug_assert_eq!(a.len(), n * n, "apply_panel_multi: a.len() must be n*n");
    debug_assert_eq!(x.len(), n * nrhs, "apply_panel_multi: x.len() must be n*nrhs");
    debug_assert_eq!(y.len(), n * nrhs, "apply_panel_multi: y.len() must be n*nrhs");
    if nrhs == 0 || n == 0 {
        return;
    }
    let tile = tile_rows.max(1);
    let yp = y.as_mut_ptr();
    let level = effective(level);
    match level {
        SimdLevel::Scalar => {
            let mut i0 = 0usize;
            while i0 < n {
                let i1 = (i0 + tile).min(n);
                // SAFETY: y is a live &mut of n·nrhs elements; tiles are
                // sequential and disjoint.
                unsafe { rows_scalar(a, n, x, yp, nrhs, i0..i1) };
                i0 = i1;
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => PACK_SCRATCH.with(|s| {
            let xp = &mut *s.borrow_mut();
            pack_rhs(x, n, nrhs, xp);
            let mut i0 = 0usize;
            while i0 < n {
                let i1 = (i0 + tile).min(n);
                // SAFETY: level ≤ detected_level() guarantees the ISA; y is
                // a live &mut; tiles are sequential and disjoint.
                unsafe {
                    match level {
                        SimdLevel::Avx2 => x86::rows_avx2(a, n, xp, yp, nrhs, i0..i1),
                        _ => x86::rows_avx512(a, n, xp, yp, nrhs, i0..i1),
                    }
                }
                i0 = i1;
            }
        }),
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("effective() clamps to Scalar off x86_64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matvec_complex_flat;

    fn panel(n: usize) -> Vec<f64> {
        (0..n * n).map(|i| ((i as f64) * 0.137).sin() * 2.0 - 0.3).collect()
    }

    fn rhs(n: usize, nrhs: usize) -> Vec<Complex64> {
        (0..n * nrhs)
            .map(|i| Complex64::new(((i * 7) as f64).cos(), ((i * 3) as f64).sin()))
            .collect()
    }

    #[test]
    fn level_round_trips_through_strings() {
        for l in SimdLevel::ALL {
            assert_eq!(l.name().parse::<SimdLevel>().unwrap(), l);
        }
        assert!("neon".parse::<SimdLevel>().is_err());
    }

    #[test]
    fn resolve_level_clamps_and_defaults() {
        assert_eq!(resolve_level(None, SimdLevel::Avx2).unwrap(), SimdLevel::Avx2);
        assert_eq!(resolve_level(Some("auto"), SimdLevel::Avx512).unwrap(), SimdLevel::Avx512);
        assert_eq!(resolve_level(Some("scalar"), SimdLevel::Avx512).unwrap(), SimdLevel::Scalar);
        // Requests above capability clamp down instead of faulting.
        assert_eq!(resolve_level(Some("avx512"), SimdLevel::Avx2).unwrap(), SimdLevel::Avx2);
        assert!(resolve_level(Some("sse9"), SimdLevel::Avx2).is_err());
    }

    #[test]
    fn cache_size_parser_handles_sysfs_forms() {
        assert_eq!(parse_cache_size_kb("2048K"), Some(2048));
        assert_eq!(parse_cache_size_kb("1M\n"), Some(1024));
        assert_eq!(parse_cache_size_kb("524288"), Some(512));
        assert_eq!(parse_cache_size_kb("bogus"), None);
    }

    #[test]
    fn tile_rows_respect_budget_and_bounds() {
        // 512 KiB budget / 2 → 256 KiB panel tile; n=256 rows of 2 KiB → 128.
        assert_eq!(default_tile_rows(256, 512), 128);
        // Tiny panels: never below min(8, n), never above n.
        assert_eq!(default_tile_rows(4, 512), 4);
        assert!(default_tile_rows(4096, 512) >= 8);
        assert_eq!(default_tile_rows(0, 512), 1);
    }

    #[test]
    fn every_available_level_is_bitwise_equal_to_naive() {
        // Shapes straddling every lane-width remainder (1..9 RHS covers the
        // 8/4/2/1 AVX-512 tails and the 4/2/1 AVX2 tails) and odd n.
        for &nrhs in &[1usize, 2, 3, 4, 5, 6, 7, 8, 9, 11] {
            for &n in &[1usize, 2, 5, 16, 33] {
                let a = panel(n);
                let x = rhs(n, nrhs);
                let mut want = vec![Complex64::ZERO; n * nrhs];
                for r in 0..nrhs {
                    matvec_complex_flat(
                        &a,
                        n,
                        n,
                        &x[r * n..(r + 1) * n],
                        &mut want[r * n..(r + 1) * n],
                    );
                }
                for level in available_levels() {
                    for tile in [1usize, 3, 8, n.max(1)] {
                        let mut y = vec![Complex64::ZERO; n * nrhs];
                        apply_panel_multi_with(level, &a, n, &x, &mut y, nrhs, tile);
                        for (got, exp) in y.iter().zip(&want) {
                            assert_eq!(
                                got.re.to_bits(),
                                exp.re.to_bits(),
                                "level {level} tile {tile} n {n} nrhs {nrhs}"
                            );
                            assert_eq!(got.im.to_bits(), exp.im.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn row_range_entry_matches_full_apply() {
        let (n, nrhs) = (19, 6);
        let a = panel(n);
        let x = rhs(n, nrhs);
        let mut want = vec![Complex64::ZERO; n * nrhs];
        apply_panel_multi_with(SimdLevel::Scalar, &a, n, &x, &mut want, nrhs, n);
        for level in available_levels() {
            let mut y = vec![Complex64::ZERO; n * nrhs];
            // Uneven hand-picked tile boundaries, applied out of order.
            for rows in [7..n, 0..3, 3..7] {
                unsafe {
                    apply_panel_rows_ptr(level, &a, n, &x, y.as_mut_ptr(), nrhs, rows);
                }
            }
            assert_eq!(y, want, "level {level}");
        }
    }

    #[test]
    fn zero_shapes_are_noops() {
        for level in available_levels() {
            apply_panel_multi_with(level, &[], 0, &[], &mut [], 0, 8);
            let a = panel(3);
            apply_panel_multi_with(level, &a, 3, &[], &mut [], 0, 8);
        }
    }
}
