//! LU factorization with partial pivoting.
//!
//! Used once per simulation setup to pre-factor the implicit collision
//! operator: `cmat(ic, itor) = (I − Δt/2·C)⁻¹ (I + Δt/2·C)` is formed by one
//! LU factorization of `(I − Δt/2·C)` followed by `nv` triangular solves
//! against the columns of `(I + Δt/2·C)`. This trades setup compute for a
//! dense constant tensor — exactly the memory/compute trade the paper
//! describes for CGYRO's collision step.

use crate::matrix::RealMatrix;

/// Error type for singular or near-singular factorizations.
#[derive(Debug, Clone, PartialEq)]
pub struct SingularMatrix {
    /// Pivot column at which factorization broke down.
    pub at_column: usize,
    /// Magnitude of the best available pivot.
    pub pivot_magnitude: f64,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is singular to working precision at column {} (pivot {:.3e})",
            self.at_column, self.pivot_magnitude
        )
    }
}

impl std::error::Error for SingularMatrix {}

/// LU factorization `P·A = L·U` of a square matrix, stored compactly
/// (strictly-lower `L` with implicit unit diagonal, upper `U`).
#[derive(Clone, Debug)]
pub struct LuFactors {
    lu: RealMatrix,
    /// Row permutation: row `i` of `U`/`L` came from row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Number of row swaps (determinant sign).
    swaps: usize,
}

impl LuFactors {
    /// Factorize `a` (consumed) with partial pivoting.
    pub fn factorize(mut a: RealMatrix) -> Result<Self, SingularMatrix> {
        assert!(a.is_square(), "LU factorization needs a square matrix");
        let n = a.rows();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;
        for k in 0..n {
            // Pivot search in column k, rows k..n.
            let mut p = k;
            let mut pmax = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < f64::MIN_POSITIVE * 1e4 {
                return Err(SingularMatrix { at_column: k, pivot_magnitude: pmax });
            }
            if p != k {
                perm.swap(k, p);
                swaps += 1;
                // Swap full rows k and p.
                for j in 0..n {
                    let t = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = t;
                }
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let m = a[(i, k)] / pivot;
                a[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = a[(k, j)];
                        a[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(Self { lu: a, perm, swaps })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A·x = b` in place: `b` enters as the right-hand side and leaves
    /// as the solution.
    pub fn solve_inplace(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation: y = P·b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = b[self.perm[i]];
        }
        // Forward substitution L·z = y (unit diagonal).
        for i in 1..n {
            let row = self.lu.row(i);
            let mut acc = y[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                acc -= row[j] * yj;
            }
            y[i] = acc;
        }
        // Back substitution U·x = z.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = y[i];
            for (j, yj) in y.iter().enumerate().skip(i + 1) {
                acc -= row[j] * yj;
            }
            y[i] = acc / row[i];
        }
        b.copy_from_slice(&y);
    }

    /// Solve `A·x = b` returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_inplace(&mut x);
        x
    }

    /// Solve against every column of `b` (multiple right-hand sides),
    /// returning `X` with `A·X = B`.
    pub fn solve_matrix(&self, b: &RealMatrix) -> RealMatrix {
        assert_eq!(b.rows(), self.dim(), "rhs row count mismatch");
        let n = self.dim();
        let ncols = b.cols();
        let mut x = RealMatrix::zeros(n, ncols);
        let mut col = vec![0.0; n];
        for j in 0..ncols {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_inplace(&mut col);
            for i in 0..n {
                x[(i, j)] = col[i];
            }
        }
        x
    }

    /// Explicit inverse `A⁻¹` (only used in tests and diagnostics; the
    /// production path uses [`Self::solve_matrix`] directly).
    pub fn inverse(&self) -> RealMatrix {
        self.solve_matrix(&RealMatrix::identity(self.dim()))
    }

    /// Determinant, as `sign · Π diag(U)`.
    pub fn determinant(&self) -> f64 {
        let sign = if self.swaps.is_multiple_of(2) { 1.0 } else { -1.0 };
        (0..self.dim()).map(|i| self.lu[(i, i)]).product::<f64>() * sign
    }

    /// An estimate of the reciprocal condition number based on pivot
    /// magnitudes (cheap; adequate for sanity checks on collision matrices,
    /// which are well conditioned by construction).
    pub fn rcond_estimate(&self) -> f64 {
        let mut dmin = f64::INFINITY;
        let mut dmax = 0.0_f64;
        for i in 0..self.dim() {
            let d = self.lu[(i, i)].abs();
            dmin = dmin.min(d);
            dmax = dmax.max(d);
        }
        if dmax == 0.0 {
            0.0
        } else {
            dmin / dmax
        }
    }
}

/// Convenience: `A⁻¹·B` via a single factorization of `A`.
pub fn solve_into(a: RealMatrix, b: &RealMatrix) -> Result<RealMatrix, SingularMatrix> {
    Ok(LuFactors::factorize(a)?.solve_matrix(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matvec};

    fn residual(a: &RealMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut ax = vec![0.0; b.len()];
        matvec(a, x, &mut ax);
        ax.iter().zip(b).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn solve_small_hand_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = RealMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let f = LuFactors::factorize(a).unwrap();
        let x = f.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = RealMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let f = LuFactors::factorize(a.clone()).unwrap();
        let x = f.solve(&[7.0, 9.0]);
        assert!(residual(&a, &x, &[7.0, 9.0]) < 1e-14);
        assert_eq!(f.determinant(), -1.0);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let err = LuFactors::factorize(a).unwrap_err();
        assert_eq!(err.at_column, 1);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let n = 12;
        // Diagonally dominant -> well conditioned.
        let a = RealMatrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                ((i * 7 + j * 3) as f64).sin() * 0.5
            }
        });
        let f = LuFactors::factorize(a.clone()).unwrap();
        let inv = f.inverse();
        let prod = matmul(&a, &inv);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (prod[(i, j)] - expect).abs() < 1e-10,
                    "({i},{j}) = {}",
                    prod[(i, j)]
                );
            }
        }
    }

    #[test]
    fn solve_matrix_matches_columnwise_solves() {
        let n = 6;
        let a = RealMatrix::from_fn(n, n, |i, j| {
            if i == j { 5.0 } else { 1.0 / (1.0 + (i as f64 - j as f64).abs()) }
        });
        let b = RealMatrix::from_fn(n, 3, |i, j| (i + j) as f64);
        let f = LuFactors::factorize(a).unwrap();
        let x = f.solve_matrix(&b);
        for j in 0..3 {
            let bj = b.col(j);
            let xj = f.solve(&bj);
            for i in 0..n {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn determinant_of_triangular() {
        let a = RealMatrix::from_vec(3, 3, vec![2.0, 1.0, 0.0, 0.0, 3.0, 1.0, 0.0, 0.0, 4.0]);
        let f = LuFactors::factorize(a).unwrap();
        assert!((f.determinant() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn rcond_identity_is_one() {
        let f = LuFactors::factorize(RealMatrix::identity(5)).unwrap();
        assert_eq!(f.rcond_estimate(), 1.0);
    }

    #[test]
    fn solve_into_convenience() {
        let a = RealMatrix::from_vec(2, 2, vec![4.0, 0.0, 0.0, 2.0]);
        let b = RealMatrix::identity(2);
        let x = solve_into(a, &b).unwrap();
        assert!((x[(0, 0)] - 0.25).abs() < 1e-15);
        assert!((x[(1, 1)] - 0.5).abs() < 1e-15);
    }
}
