//! A minimal, dependency-free double-precision complex number.
//!
//! CGYRO-class codes evolve complex spectral amplitudes; the collisional
//! constant tensor itself is real, so the hot kernel is `real matrix ×
//! complex vector`. This type is `#[repr(C)]` and `Copy` so buffers of it can
//! be packed/unpacked and sent through the communication substrate as plain
//! old data.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Double-precision complex number (`re + i·im`).
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The imaginary unit `i`.
pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

impl Complex64 {
    /// Complex zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Construct a purely real value.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Construct a purely imaginary value.
    #[inline(always)]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// `exp(i·theta)` — unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|²` (avoids the square root).
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed robustly via `hypot`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self { re: self.re / d, im: -self.im / d }
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::cis(self.im).scale(self.re.exp())
    }

    /// Fused multiply-add `self + a·b`, written for the hot reduction loops.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        Self {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w⁻¹ by definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        Self { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex64 {
    fn sum<It: Iterator<Item = Self>>(iter: It) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(Complex64::real(2.0), Complex64::new(2.0, 0.0));
        assert_eq!(Complex64::imag(2.0), Complex64::new(0.0, 2.0));
        assert_eq!(Complex64::from(5.0), Complex64::real(5.0));
    }

    #[test]
    fn modulus_and_argument() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!((Complex64::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.5, 3.0);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * a.inv(), Complex64::ONE));
        assert!(close(-(-a), a));
        assert!(close(a * Complex64::ONE, a));
        assert!(close(a + Complex64::ZERO, a));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!(close(a * a.conj(), Complex64::real(a.norm_sqr())));
    }

    #[test]
    fn cis_and_exp() {
        use std::f64::consts::PI;
        assert!(close(Complex64::cis(0.0), Complex64::ONE));
        assert!(close(Complex64::cis(PI / 2.0), I));
        // Euler: exp(iπ) = −1.
        assert!(close(Complex64::new(0.0, PI).exp(), -Complex64::ONE));
        // exp(a+b) = exp(a)·exp(b)
        let a = Complex64::new(0.3, -0.7);
        let b = Complex64::new(-0.2, 1.1);
        assert!(close((a + b).exp(), a.exp() * b.exp()));
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = Complex64::new(0.5, 0.5);
        let a = Complex64::new(1.0, -2.0);
        let b = Complex64::new(3.0, 4.0);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }

    #[test]
    fn real_scalar_ops() {
        let a = Complex64::new(2.0, -6.0);
        assert!(close(a * 0.5, Complex64::new(1.0, -3.0)));
        assert!(close(0.5 * a, a * 0.5));
        assert!(close(a / 2.0, Complex64::new(1.0, -3.0)));
        let mut m = a;
        m *= 2.0;
        assert!(close(m, Complex64::new(4.0, -12.0)));
    }

    #[test]
    fn sum_iterator() {
        let v = [
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -1.0),
            Complex64::new(-3.0, 0.5),
        ];
        let s: Complex64 = v.iter().copied().sum();
        assert!(close(s, Complex64::new(0.0, 0.5)));
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{:?}", Complex64::new(1.0, 2.0)), "(1+2i)");
    }
}
