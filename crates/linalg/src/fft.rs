//! Iterative radix-2 complex FFT.
//!
//! CGYRO's nonlinear phase is FFT-based (pseudo-spectral Poisson
//! brackets); this module supplies the transform for the equivalent path
//! in `xg-sim::nonlinear`. Plan-style API: twiddles are precomputed once
//! per length, transforms are in-place and allocation-free.

use crate::complex::Complex64;

/// A precomputed FFT plan for a power-of-two length.
#[derive(Clone, Debug)]
pub struct Fft {
    n: usize,
    /// Twiddle factors `e^{-2πi k / n}` for `k < n/2`.
    twiddles: Vec<Complex64>,
}

impl Fft {
    /// Plan a transform of length `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        let twiddles = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Self { n, twiddles }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn bit_reverse_permute(buf: &mut [Complex64]) {
        let n = buf.len();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    /// In-place forward DFT: `X_k = Σ_j x_j e^{-2πi jk/n}`.
    pub fn forward(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "buffer length mismatch");
        if self.n <= 1 {
            return;
        }
        Self::bit_reverse_permute(buf);
        let mut len = 2;
        while len <= self.n {
            let stride = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..len / 2 {
                    let w = self.twiddles[k * stride];
                    let a = buf[start + k];
                    let b = buf[start + k + len / 2] * w;
                    buf[start + k] = a + b;
                    buf[start + k + len / 2] = a - b;
                }
            }
            len <<= 1;
        }
    }

    /// In-place inverse DFT (normalized: `ifft(fft(x)) = x`).
    pub fn inverse(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "buffer length mismatch");
        if self.n <= 1 {
            return;
        }
        for z in buf.iter_mut() {
            *z = z.conj();
        }
        self.forward(buf);
        let scale = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = z.conj().scale(scale);
        }
    }
}

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    acc += xj
                        * Complex64::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos() * 0.5))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = test_signal(n);
            let mut fast = x.clone();
            Fft::new(n).forward(&mut fast);
            let slow = naive_dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-10 * (n as f64), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let n = 128;
        let x = test_signal(n);
        let plan = Fft::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval() {
        let n = 64;
        let x = test_signal(n);
        let mut y = x.clone();
        Fft::new(n).forward(&mut y);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn impulse_is_flat_spectrum() {
        let n = 16;
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        Fft::new(n).forward(&mut x);
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_theorem() {
        // Circular convolution via FFT equals the direct sum.
        let n = 32;
        let a = test_signal(n);
        let b: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).cos(), 0.1 * i as f64)).collect();
        let plan = Fft::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let mut prod: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
        plan.inverse(&mut prod);
        for k in 0..n {
            let mut direct = Complex64::ZERO;
            for j in 0..n {
                direct += a[j] * b[(n + k - j) % n];
            }
            assert!((prod[k] - direct).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let _ = Fft::new(12);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(64), 64);
        assert_eq!(next_pow2(65), 128);
    }
}
