//! Matrix–matrix and matrix–vector kernels.
//!
//! These are the compute kernels behind the collision step: the constant
//! tensor application is `y = A·x` with `A` real `nv×nv` and `x` complex,
//! which we evaluate as two fused real matvecs over the interleaved
//! `(re, im)` layout of [`Complex64`].

use crate::complex::Complex64;
use crate::matrix::RealMatrix;

/// Dense `C = A·B`. Loop order `i-k-j` over row-major data so the inner loop
/// streams both `B`'s row and `C`'s row. No sparsity short-circuit: the
/// matrices this feeds (collision propagator panels) are dense, so a
/// zero-test in the inner loop only costs branch mispredicts.
pub fn matmul(a: &RealMatrix, b: &RealMatrix) -> RealMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = RealMatrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (kk, &aik) in arow.iter().enumerate().take(k) {
            let brow = b.row(kk);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    c
}

/// Real matvec `y = A·x`.
pub fn matvec(a: &RealMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "matvec: x length mismatch");
    assert_eq!(a.rows(), y.len(), "matvec: y length mismatch");
    for (i, yi) in y.iter_mut().enumerate() {
        let row = a.row(i);
        let mut acc = 0.0;
        for (aij, xj) in row.iter().zip(x) {
            acc += aij * xj;
        }
        *yi = acc;
    }
}

/// Real-matrix × complex-vector: `y = A·x` with `A ∈ ℝ^{m×n}`, `x ∈ ℂ^n`.
///
/// This is the collision-step hot kernel (`cmat` slice applied to the
/// velocity profile of `h` at one configuration/toroidal point). 8·m·n flops.
pub fn matvec_complex(a: &RealMatrix, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(a.cols(), x.len(), "matvec_complex: x length mismatch");
    assert_eq!(a.rows(), y.len(), "matvec_complex: y length mismatch");
    matvec_complex_flat(a.as_slice(), a.rows(), a.cols(), x, y);
}

/// Shared contraction body for the flat matvec, instantiated plain and
/// under `target_feature(enable = "fma")` so `mul_add` lowers to `vfmadd`
/// on FMA hardware while staying bit-identical to the software fallback
/// (both are correctly-rounded IEEE 754 fused multiply-adds). Every
/// collision kernel — this one, the register-blocked scalar path and the
/// SIMD micro-kernels in [`crate::simd`] — uses this same per-(row, rhs)
/// FMA contraction over ascending `j`, which is what makes them mutually
/// bitwise identical.
#[inline(always)]
fn matvec_flat_body(a: &[f64], rows: usize, cols: usize, x: &[Complex64], y: &mut [Complex64]) {
    let _ = rows;
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &a[i * cols..(i + 1) * cols];
        let mut re = 0.0;
        let mut im = 0.0;
        for (aij, xj) in row.iter().zip(x) {
            re = aij.mul_add(xj.re, re);
            im = aij.mul_add(xj.im, im);
        }
        *yi = Complex64::new(re, im);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
unsafe fn matvec_flat_fma(a: &[f64], rows: usize, cols: usize, x: &[Complex64], y: &mut [Complex64]) {
    matvec_flat_body(a, rows, cols, x, y)
}

/// Real-matrix × complex-vector over a raw row-major panel (no
/// `RealMatrix` wrapper): the collision step streams its constant tensor
/// as one contiguous 4-D allocation and applies per-(ic, itor) `nv×nv`
/// panels through this kernel. The contraction is one fused multiply-add
/// per term over ascending `j` — the reference order every blocked and
/// SIMD variant reproduces bitwise.
pub fn matvec_complex_flat(
    a: &[f64],
    rows: usize,
    cols: usize,
    x: &[Complex64],
    y: &mut [Complex64],
) {
    assert_eq!(a.len(), rows * cols, "panel size mismatch");
    assert_eq!(x.len(), cols, "x length mismatch");
    assert_eq!(y.len(), rows, "y length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::simd::hw_fma() {
        // SAFETY: hw_fma() checked the CPU supports the enabled feature.
        unsafe { matvec_flat_fma(a, rows, cols, x, y) };
        return;
    }
    matvec_flat_body(a, rows, cols, x, y);
}

/// In-place variant of [`matvec_complex`] using a caller-provided scratch
/// buffer, so steady-state stepping performs zero allocations.
pub fn matvec_complex_inplace(a: &RealMatrix, x: &mut [Complex64], scratch: &mut [Complex64]) {
    assert!(a.is_square(), "in-place matvec needs a square matrix");
    assert_eq!(scratch.len(), x.len(), "scratch length mismatch");
    matvec_complex(a, x, scratch);
    x.copy_from_slice(scratch);
}

/// Out-of-place flat-panel matvec: `y = A·x` with `A` a raw row-major
/// `n×n` panel. Same arithmetic as [`matvec_complex_flat`]; exists so call
/// sites that already own a destination buffer avoid the
/// `matvec → copy_from_slice` round-trip of the in-place form.
///
/// Slice-length preconditions are debug-asserted up front (with messages
/// naming this function) so a mis-sized panel fails loudly at the call
/// boundary instead of as an index panic deep in the contraction.
#[inline]
pub fn matvec_complex_flat_into(a: &[f64], n: usize, x: &[Complex64], y: &mut [Complex64]) {
    debug_assert_eq!(a.len(), n * n, "matvec_complex_flat_into: a.len() must be n*n");
    debug_assert_eq!(y.len(), n, "matvec_complex_flat_into: y.len() must be n");
    matvec_complex_flat(a, n, n, x, y);
}

/// Batched multi-RHS panel apply: `Y = A·X` with `A` a real row-major
/// `n×n` panel and `X`, `Y` blocks of `nrhs` complex vectors stored
/// RHS-major (`x[r*n..(r+1)*n]` is right-hand side `r`).
///
/// This is the ensemble collision kernel: k members share one `cmat`
/// panel, so each panel row tile is loaded once and reused across all
/// right-hand sides. Dispatches to the process-selected SIMD micro-kernel
/// ([`crate::simd::selected_level`], overridable via `XGYRO_SIMD`) with
/// the default L2-derived row-tile height. Per (row, rhs) the accumulation
/// is one FMA accumulator pair over ascending `j` — exactly the sequence
/// [`matvec_complex_flat`] performs — so results are bitwise identical to
/// applying the naive kernel per column, independent of `nrhs`, the
/// kernel level and the tiling.
///
/// Slice-length preconditions are debug-asserted with messages naming this
/// function, so mis-sized blocks fail loudly at the call boundary.
pub fn apply_panel_multi(a: &[f64], n: usize, x: &[Complex64], y: &mut [Complex64], nrhs: usize) {
    debug_assert_eq!(a.len(), n * n, "apply_panel_multi: a.len() must be n*n");
    debug_assert_eq!(x.len(), n * nrhs, "apply_panel_multi: x.len() must be n*nrhs");
    debug_assert_eq!(y.len(), n * nrhs, "apply_panel_multi: y.len() must be n*nrhs");
    crate::simd::apply_panel_multi_with(
        crate::simd::selected_level(),
        a,
        n,
        x,
        y,
        nrhs,
        crate::simd::default_tile_rows(n, crate::simd::l2_cache_kb()),
    );
}

/// Number of floating-point operations for one real×complex matvec of size
/// `m×n` (used by the performance model; counts mul+add on both components).
#[inline]
pub const fn matvec_complex_flops(m: usize, n: usize) -> u64 {
    4 * (m as u64) * (n as u64)
}

/// Flop count for one multi-RHS panel apply of `nrhs` right-hand sides.
#[inline]
pub const fn apply_panel_multi_flops(n: usize, nrhs: usize) -> u64 {
    matvec_complex_flops(n, n) * (nrhs as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = RealMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let id = RealMatrix::identity(3);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    fn matmul_rectangular_hand_checked() {
        let a = RealMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = RealMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = RealMatrix::zeros(2, 3);
        let b = RealMatrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_associativity() {
        let a = RealMatrix::from_fn(3, 3, |i, j| ((i + 1) * (j + 2)) as f64 / 7.0);
        let b = RealMatrix::from_fn(3, 3, |i, j| (i as f64 - j as f64) / 3.0);
        let c = RealMatrix::from_fn(3, 3, |i, j| ((i * j) as f64).sin());
        let lhs = matmul(&matmul(&a, &b), &c);
        let rhs = matmul(&a, &matmul(&b, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_hand_checked() {
        let a = RealMatrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.0]);
        let x = [3.0, 4.0, 5.0];
        let mut y = [0.0; 2];
        matvec(&a, &x, &mut y);
        assert_eq!(y, [-2.0, 10.0]);
    }

    #[test]
    fn complex_matvec_matches_componentwise_real_matvec() {
        let a = RealMatrix::from_fn(4, 4, |i, j| ((i * 4 + j) as f64).cos());
        let x: Vec<Complex64> =
            (0..4).map(|i| Complex64::new(i as f64, -(i as f64) * 0.5)).collect();
        let mut y = vec![Complex64::ZERO; 4];
        matvec_complex(&a, &x, &mut y);

        let xr: Vec<f64> = x.iter().map(|z| z.re).collect();
        let xi: Vec<f64> = x.iter().map(|z| z.im).collect();
        let mut yr = vec![0.0; 4];
        let mut yi = vec![0.0; 4];
        matvec(&a, &xr, &mut yr);
        matvec(&a, &xi, &mut yi);
        for k in 0..4 {
            assert!((y[k].re - yr[k]).abs() < 1e-14);
            assert!((y[k].im - yi[k]).abs() < 1e-14);
        }
    }

    #[test]
    fn flat_matvec_matches_matrix_form() {
        let a = RealMatrix::from_fn(6, 6, |i, j| ((i * 6 + j) as f64).sin());
        let x: Vec<Complex64> =
            (0..6).map(|i| Complex64::new(i as f64, -0.5 * i as f64)).collect();
        let mut y1 = vec![Complex64::ZERO; 6];
        let mut y2 = vec![Complex64::ZERO; 6];
        matvec_complex(&a, &x, &mut y1);
        matvec_complex_flat(a.as_slice(), 6, 6, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn inplace_matvec_matches_out_of_place() {
        let a = RealMatrix::from_fn(5, 5, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let x: Vec<Complex64> =
            (0..5).map(|i| Complex64::new((i as f64).sin(), (i as f64).cos())).collect();
        let mut y = vec![Complex64::ZERO; 5];
        matvec_complex(&a, &x, &mut y);
        let mut x2 = x.clone();
        let mut scratch = vec![Complex64::ZERO; 5];
        matvec_complex_inplace(&a, &mut x2, &mut scratch);
        assert_eq!(x2, y);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(matvec_complex_flops(10, 20), 800);
        assert_eq!(apply_panel_multi_flops(8, 3), 4 * 8 * 8 * 3);
    }

    #[test]
    fn flat_into_matches_inplace_path() {
        let n = 7;
        let a: Vec<f64> = (0..n * n).map(|i| ((i * i) as f64).cos()).collect();
        let x: Vec<Complex64> =
            (0..n).map(|i| Complex64::new(i as f64 * 0.3, 1.0 - i as f64)).collect();
        let mut y1 = vec![Complex64::ZERO; n];
        let mut y2 = vec![Complex64::ZERO; n];
        matvec_complex_flat(&a, n, n, &x, &mut y1);
        matvec_complex_flat_into(&a, n, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn multi_rhs_bitwise_matches_naive_per_column() {
        // Every remainder path: nrhs covering 4-wide, 2-wide and 1-wide tails.
        for &nrhs in &[1usize, 2, 3, 4, 5, 6, 7, 8, 9] {
            for &n in &[1usize, 2, 5, 16, 33] {
                let a: Vec<f64> =
                    (0..n * n).map(|i| ((i as f64) * 0.137).sin() * 2.0 - 0.3).collect();
                let x: Vec<Complex64> = (0..n * nrhs)
                    .map(|i| Complex64::new(((i * 7) as f64).cos(), ((i * 3) as f64).sin()))
                    .collect();
                let mut y = vec![Complex64::ZERO; n * nrhs];
                apply_panel_multi(&a, n, &x, &mut y, nrhs);
                for r in 0..nrhs {
                    let mut yr = vec![Complex64::ZERO; n];
                    matvec_complex_flat(&a, n, n, &x[r * n..(r + 1) * n], &mut yr);
                    // Bitwise, not approximate: the blocked kernel keeps one
                    // accumulator pair per (row, rhs) in the same order.
                    for i in 0..n {
                        assert_eq!(y[r * n + i].re.to_bits(), yr[i].re.to_bits());
                        assert_eq!(y[r * n + i].im.to_bits(), yr[i].im.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn multi_rhs_zero_rhs_is_noop() {
        let a = vec![1.0; 9];
        let x: Vec<Complex64> = vec![];
        let mut y: Vec<Complex64> = vec![];
        apply_panel_multi(&a, 3, &x, &mut y, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "matvec_complex_flat_into: a.len() must be n*n")]
    fn flat_into_short_panel_panics_with_named_precondition() {
        let a = vec![0.0; 8]; // one element short of 3*3
        let x = vec![Complex64::ZERO; 3];
        let mut y = vec![Complex64::ZERO; 3];
        matvec_complex_flat_into(&a, 3, &x, &mut y);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "matvec_complex_flat_into: y.len() must be n")]
    fn flat_into_short_output_panics_with_named_precondition() {
        let a = vec![0.0; 9];
        let x = vec![Complex64::ZERO; 3];
        let mut y = vec![Complex64::ZERO; 2];
        matvec_complex_flat_into(&a, 3, &x, &mut y);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "apply_panel_multi: y.len() must be n*nrhs")]
    fn multi_rhs_short_output_panics_with_named_precondition() {
        let a = vec![0.0; 9];
        let x = vec![Complex64::ZERO; 6];
        let mut y = vec![Complex64::ZERO; 5]; // one short of 3*2
        apply_panel_multi(&a, 3, &x, &mut y, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "apply_panel_multi: a.len() must be n*n")]
    fn multi_rhs_short_panel_panics_with_named_precondition() {
        let a = vec![0.0; 8];
        let x = vec![Complex64::ZERO; 3];
        let mut y = vec![Complex64::ZERO; 3];
        apply_panel_multi(&a, 3, &x, &mut y, 1);
    }
}
