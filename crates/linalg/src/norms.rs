//! Vector norms and comparison helpers shared across the workspace,
//! including the deterministic pairwise summation used when bitwise
//! reproducibility between serial and distributed runs is required.

use crate::complex::Complex64;

/// Maximum absolute entry of a real slice.
pub fn max_abs(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Maximum modulus of a complex slice.
pub fn max_abs_complex(v: &[Complex64]) -> f64 {
    v.iter().fold(0.0_f64, |m, z| m.max(z.abs()))
}

/// Euclidean norm of a real slice.
pub fn l2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Euclidean norm of a complex slice.
pub fn l2_complex(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Maximum componentwise deviation between two complex slices.
///
/// This is the metric reported by the equivalence experiment (T-correct):
/// independent CGYRO runs vs. the XGYRO ensemble.
pub fn max_deviation(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_deviation: length mismatch");
    a.iter().zip(b).fold(0.0_f64, |m, (x, y)| m.max((*x - *y).abs()))
}

/// Pairwise (cascade) summation of real values.
///
/// Summation order is a deterministic function of the *global* length only,
/// so a distributed reduction that reassembles per-rank partial vectors and
/// then calls this produces bitwise-identical results to the serial code.
pub fn pairwise_sum(v: &[f64]) -> f64 {
    const BASE: usize = 32;
    if v.len() <= BASE {
        return v.iter().sum();
    }
    let mid = v.len() / 2;
    pairwise_sum(&v[..mid]) + pairwise_sum(&v[mid..])
}

/// Pairwise summation of complex values (componentwise cascade).
pub fn pairwise_sum_complex(v: &[Complex64]) -> Complex64 {
    const BASE: usize = 32;
    if v.len() <= BASE {
        return v.iter().copied().sum();
    }
    let mid = v.len() / 2;
    pairwise_sum_complex(&v[..mid]) + pairwise_sum_complex(&v[mid..])
}

/// Relative difference `|a−b| / max(|a|, |b|, floor)`.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_and_l2() {
        assert_eq!(max_abs(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(l2(&[3.0, 4.0]), 5.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn complex_norms() {
        let v = [Complex64::new(3.0, 4.0), Complex64::new(0.0, 1.0)];
        assert_eq!(max_abs_complex(&v), 5.0);
        assert!((l2_complex(&v) - 26.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn deviation_of_identical_is_zero() {
        let v = [Complex64::new(1.0, 2.0); 8];
        assert_eq!(max_deviation(&v, &v), 0.0);
    }

    #[test]
    fn pairwise_sum_matches_naive_for_small() {
        let v: Vec<f64> = (0..17).map(|i| i as f64).collect();
        assert_eq!(pairwise_sum(&v), v.iter().sum::<f64>());
    }

    #[test]
    fn pairwise_sum_is_deterministic_and_accurate() {
        // Large alternating series where naive summation accumulates error.
        let v: Vec<f64> = (0..10_000)
            .map(|i| if i % 2 == 0 { 1.0 + 1e-13 } else { -1.0 })
            .collect();
        let s1 = pairwise_sum(&v);
        let s2 = pairwise_sum(&v);
        assert_eq!(s1, s2);
        assert!((s1 - 5_000.0 * 1e-13).abs() < 1e-12);
    }

    #[test]
    fn pairwise_complex_matches_componentwise() {
        let v: Vec<Complex64> =
            (0..500).map(|i| Complex64::new((i as f64).sin(), (i as f64).cos())).collect();
        let s = pairwise_sum_complex(&v);
        let re: Vec<f64> = v.iter().map(|z| z.re).collect();
        let im: Vec<f64> = v.iter().map(|z| z.im).collect();
        assert_eq!(s.re, pairwise_sum(&re));
        assert_eq!(s.im, pairwise_sum(&im));
    }

    #[test]
    fn rel_diff_basic() {
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert!((rel_diff(1.0, 1.1) - 0.1 / 1.1).abs() < 1e-15);
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
    }
}
