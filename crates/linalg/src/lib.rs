//! # xg-linalg
//!
//! Dependency-free dense linear algebra substrate for the XGYRO
//! reproduction: double-precision complex numbers, row-major real matrices,
//! LU factorization with partial pivoting, GEMM/matvec kernels, and the
//! deterministic summation primitives used for bitwise-reproducible
//! distributed reductions.
//!
//! The production fusion code this reproduces (CGYRO) leans on
//! LAPACK/cuBLAS; here the same roles are filled by a small, fully-tested
//! pure-Rust implementation, which is all the collision pipeline needs:
//! the constant tensor build is `LU((I − Δt/2·C))` + triangular solves, and
//! the collision step itself is a stack of real×complex matvecs.

#![warn(missing_docs)]

pub mod complex;
pub mod eigen;
pub mod fft;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod simd;

pub use complex::{Complex64, I};
pub use eigen::spectral_radius;
pub use fft::{next_pow2, Fft};
pub use gemm::{
    apply_panel_multi, apply_panel_multi_flops, matmul, matvec, matvec_complex,
    matvec_complex_flat, matvec_complex_flat_into, matvec_complex_flops, matvec_complex_inplace,
};
pub use lu::{solve_into, LuFactors, SingularMatrix};
pub use matrix::RealMatrix;
pub use simd::{
    apply_panel_multi_with, apply_panel_rows_ptr, available_levels, default_tile_rows,
    detected_level, l2_cache_kb, selected_level, SimdLevel, L2_ENV, SIMD_ENV,
};
