//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use xg_linalg::{
    apply_panel_multi, matmul, matvec, matvec_complex, matvec_complex_flat, Complex64, LuFactors,
    RealMatrix,
};

/// Strategy: a well-conditioned (diagonally dominant) n×n matrix.
fn dominant_matrix(n: usize) -> impl Strategy<Value = RealMatrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = RealMatrix::from_vec(n, n, vals);
        for i in 0..n {
            let row_abs: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] = row_abs + 1.0;
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

fn cvector(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_has_small_residual(a in dominant_matrix(8), b in vector(8)) {
        let f = LuFactors::factorize(a.clone()).unwrap();
        let x = f.solve(&b);
        let mut ax = vec![0.0; 8];
        matvec(&a, &x, &mut ax);
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-9, "residual too large: {p} vs {q}");
        }
    }

    #[test]
    fn lu_inverse_roundtrip(a in dominant_matrix(6)) {
        let f = LuFactors::factorize(a.clone()).unwrap();
        let inv = f.inverse();
        let prod = matmul(&a, &inv);
        for i in 0..6 {
            for j in 0..6 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in dominant_matrix(5),
        b in dominant_matrix(5),
        c in dominant_matrix(5),
    ) {
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_reverses_product(a in dominant_matrix(5), b in dominant_matrix(5)) {
        let lhs = matmul(&a, &b).transposed();
        let rhs = matmul(&b.transposed(), &a.transposed());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn complex_matvec_is_linear(a in dominant_matrix(7), x in cvector(7), y in cvector(7)) {
        let mut ax = vec![Complex64::ZERO; 7];
        let mut ay = vec![Complex64::ZERO; 7];
        let sum: Vec<Complex64> = x.iter().zip(&y).map(|(p, q)| *p + *q).collect();
        let mut asum = vec![Complex64::ZERO; 7];
        matvec_complex(&a, &x, &mut ax);
        matvec_complex(&a, &y, &mut ay);
        matvec_complex(&a, &sum, &mut asum);
        for k in 0..7 {
            prop_assert!((asum[k] - (ax[k] + ay[k])).abs() < 1e-9);
        }
    }

    #[test]
    fn complex_field_axioms(
        (ar, ai) in (-100.0f64..100.0, -100.0f64..100.0),
        (br, bi) in (-100.0f64..100.0, -100.0f64..100.0),
        (cr, ci) in (-100.0f64..100.0, -100.0f64..100.0),
    ) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        let c = Complex64::new(cr, ci);
        // Commutativity and associativity (to roundoff).
        prop_assert!(((a * b) - (b * a)).abs() < 1e-9);
        let scale = a.abs().max(b.abs()).max(c.abs()).max(1.0).powi(3);
        prop_assert!((((a * b) * c) - (a * (b * c))).abs() / scale < 1e-12);
        // |ab| = |a||b| (relative).
        let lhs = (a * b).abs();
        let rhs = a.abs() * b.abs();
        prop_assert!((lhs - rhs).abs() <= 1e-10 * (1.0 + rhs));
    }

    #[test]
    fn pairwise_sum_close_to_naive(v in prop::collection::vec(-1e3f64..1e3, 1..2000)) {
        let p = xg_linalg::norms::pairwise_sum(&v);
        let n: f64 = v.iter().sum();
        prop_assert!((p - n).abs() < 1e-6 * (1.0 + n.abs()));
    }

    #[test]
    fn blocked_multi_rhs_equals_naive_per_column(
        n in 1usize..40,
        nrhs in 0usize..10,
        seed in -1.0f64..1.0,
    ) {
        // The blocked kernel must be *bitwise* equal to running the naive
        // single-RHS reference once per column, for every (n, nrhs) shape
        // (exercising the 4-wide body and the 2-/1-wide remainders).
        let a: Vec<f64> = (0..n * n)
            .map(|i| ((i as f64 + seed) * 0.61803).sin() * 3.0)
            .collect();
        let x: Vec<Complex64> = (0..n * nrhs)
            .map(|i| {
                Complex64::new(((i as f64 - seed) * 1.417).cos(), ((i as f64) * 0.271).sin())
            })
            .collect();
        let mut y = vec![Complex64::ZERO; n * nrhs];
        apply_panel_multi(&a, n, &x, &mut y, nrhs);
        for r in 0..nrhs {
            let mut yr = vec![Complex64::ZERO; n];
            matvec_complex_flat(&a, n, n, &x[r * n..(r + 1) * n], &mut yr);
            for i in 0..n {
                prop_assert_eq!(y[r * n + i].re.to_bits(), yr[i].re.to_bits());
                prop_assert_eq!(y[r * n + i].im.to_bits(), yr[i].im.to_bits());
            }
        }
    }

    #[test]
    fn determinant_multiplicative(a in dominant_matrix(4), b in dominant_matrix(4)) {
        let da = LuFactors::factorize(a.clone()).unwrap().determinant();
        let db = LuFactors::factorize(b.clone()).unwrap().determinant();
        let dab = LuFactors::factorize(matmul(&a, &b)).unwrap().determinant();
        prop_assert!((dab - da * db).abs() < 1e-6 * (1.0 + (da * db).abs()));
    }
}
