//! Machine models: node topology, memory budgets, link speeds, throughputs.
//!
//! The paper's evaluation ran on OLCF Frontier: 8 GPU dies (GCDs) per node,
//! 64 GB HBM per GCD, one CGYRO MPI rank per GCD, Slingshot interconnect.
//! We cannot measure that machine, so [`MachineModel`] captures it as a
//! small set of constants. The `frontier_like` preset is calibrated once so
//! that the *CGYRO* column of Figure 2 lands near the paper's numbers; the
//! XGYRO column is then a prediction of the model (see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// Constants describing a homogeneous GPU cluster.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: String,
    /// MPI ranks (GPU dies) per node.
    pub ranks_per_node: usize,
    /// Memory per rank in bytes (HBM per GCD).
    pub mem_per_rank: u64,
    /// Fraction of `mem_per_rank` usable for simulation buffers (the rest
    /// goes to the runtime, FFT plans, MPI bounce buffers, …).
    pub usable_mem_fraction: f64,
    /// Point-to-point latency between ranks on the same node (seconds).
    pub alpha_intra: f64,
    /// Point-to-point latency between ranks on different nodes (seconds).
    pub alpha_inter: f64,
    /// Per-rank bandwidth for intra-node transfers (bytes/second).
    pub beta_intra: f64,
    /// Per-rank bandwidth for inter-node transfers (bytes/second).
    pub beta_inter: f64,
    /// Node injection (NIC) bandwidth shared by all ranks on a node (B/s).
    pub nic_bw: f64,
    /// Empirical AllReduce congestion coefficient: the per-participant
    /// bandwidth penalty that makes large-communicator AllReduce cost grow
    /// ~linearly with the participant count (paper §2.1: "the overall cost
    /// of AllReduce is proportional with the number of participating
    /// processes").
    pub allreduce_congestion: f64,
    /// Fixed per-collective synchronization overhead (seconds): jitter /
    /// desynchronization absorbed inside blocking collectives, which on
    /// GPU-resident codes is large compared to pure wire time and is why
    /// even tiny-communicator collectives are not free.
    pub sync_overhead: f64,
    /// Achieved double-precision throughput per rank (FLOP/s).
    pub flops_per_rank: f64,
    /// Achieved memory (HBM) bandwidth per rank (bytes/second).
    pub mem_bw_per_rank: f64,
    /// Relative per-node speed factors, cycled over the node index
    /// (`node_speeds[node % len]`). Empty means homogeneous (all 1.0).
    /// A factor of 0.5 means that node's ranks deliver half the model's
    /// `flops_per_rank`/`mem_bw_per_rank` — thermally throttled, an older
    /// hardware generation in a mixed machine, or a straggler node.
    pub node_speeds: Vec<f64>,
}

impl MachineModel {
    /// Usable memory per rank in bytes.
    pub fn usable_mem_per_rank(&self) -> u64 {
        (self.mem_per_rank as f64 * self.usable_mem_fraction) as u64
    }

    /// Usable memory on `nodes` nodes in bytes.
    pub fn usable_mem_total(&self, nodes: usize) -> u64 {
        self.usable_mem_per_rank() * (self.ranks_per_node * nodes) as u64
    }

    /// Number of ranks on `nodes` nodes.
    pub fn ranks(&self, nodes: usize) -> usize {
        self.ranks_per_node * nodes
    }

    /// Nodes needed to host `ranks` ranks (rounded up).
    pub fn nodes_for_ranks(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.ranks_per_node)
    }

    /// Relative speed of node `node` (1.0 when homogeneous). The speed
    /// pattern cycles, so a model describes machines of any size.
    pub fn speed_of_node(&self, node: usize) -> f64 {
        if self.node_speeds.is_empty() {
            1.0
        } else {
            self.node_speeds[node % self.node_speeds.len()]
        }
    }

    /// Relative speed of the node hosting global `rank` under block
    /// placement (`ranks_per_node` consecutive ranks per node).
    pub fn speed_of_rank(&self, rank: usize) -> f64 {
        self.speed_of_node(rank / self.ranks_per_node)
    }

    /// Slowest node speed in the cycle (1.0 when homogeneous).
    pub fn min_speed(&self) -> f64 {
        self.node_speeds.iter().copied().fold(1.0f64, f64::min)
    }

    /// True when any node runs at a non-unit speed.
    pub fn is_heterogeneous(&self) -> bool {
        self.node_speeds.iter().any(|&s| s != 1.0)
    }

    /// A Frontier-like system: 8 GCDs/node with 64 GB HBM each.
    ///
    /// Latency/bandwidth/congestion/throughput constants are *calibrated*,
    /// not measured: they are chosen so the simulated CGYRO `nl03c` run on
    /// 32 nodes reproduces the paper's reported per-reporting-step times
    /// (375 s total, 145 s str communication for the 8-run sum).
    pub fn frontier_like() -> Self {
        Self {
            name: "frontier-like".to_string(),
            ranks_per_node: 8,
            mem_per_rank: 64 << 30,
            usable_mem_fraction: 0.65,
            alpha_intra: 3e-6,
            alpha_inter: 12e-6,
            beta_intra: 90e9,
            beta_inter: 24e9,
            nic_bw: 100e9,
            allreduce_congestion: 0.31,
            sync_overhead: 60e-6,
            flops_per_rank: 6.0e12,
            mem_bw_per_rank: 1.3e12,
            node_speeds: Vec::new(),
        }
    }

    /// A Perlmutter-like system: 4 GPUs/node with 40 GB HBM each, dual-NIC
    /// Slingshot. Less HBM per rank than the Frontier model (memory
    /// minimums move up), comparable fabric.
    pub fn perlmutter_like() -> Self {
        Self {
            name: "perlmutter-like".to_string(),
            ranks_per_node: 4,
            mem_per_rank: 40 << 30,
            usable_mem_fraction: 0.65,
            alpha_intra: 3e-6,
            alpha_inter: 11e-6,
            beta_intra: 80e9,
            beta_inter: 22e9,
            nic_bw: 50e9,
            allreduce_congestion: 0.31,
            sync_overhead: 55e-6,
            flops_per_rank: 4.5e12,
            mem_bw_per_rank: 1.5e12,
            node_speeds: Vec::new(),
        }
    }

    /// A commodity cluster with a slow fabric (100 Gb Ethernet-class):
    /// communication-dominated regime where ensemble sharing helps most.
    pub fn slow_fabric_cluster() -> Self {
        Self {
            name: "slow-fabric".to_string(),
            ranks_per_node: 8,
            mem_per_rank: 64 << 30,
            usable_mem_fraction: 0.65,
            alpha_intra: 3e-6,
            alpha_inter: 30e-6,
            beta_intra: 90e9,
            beta_inter: 5e9,
            nic_bw: 12e9,
            allreduce_congestion: 0.4,
            sync_overhead: 100e-6,
            flops_per_rank: 6.0e12,
            mem_bw_per_rank: 1.3e12,
            node_speeds: Vec::new(),
        }
    }

    /// A small generic CPU cluster, handy for laptop-scale what-ifs.
    pub fn small_cluster() -> Self {
        Self {
            name: "small-cluster".to_string(),
            ranks_per_node: 4,
            mem_per_rank: 8 << 30,
            usable_mem_fraction: 0.8,
            alpha_intra: 1e-6,
            alpha_inter: 20e-6,
            beta_intra: 20e9,
            beta_inter: 5e9,
            nic_bw: 12e9,
            allreduce_congestion: 0.3,
            sync_overhead: 20e-6,
            flops_per_rank: 5.0e10,
            mem_bw_per_rank: 2.0e10,
            node_speeds: Vec::new(),
        }
    }

    /// The Frontier-like system with one straggler node per 8: every 8th
    /// node delivers half throughput (throttled or degraded hardware). The
    /// canonical heterogeneous target for the unbalanced-decomposition
    /// planner — a balanced split runs at the straggler's pace, a
    /// capacity-weighted split recovers most of the loss.
    pub fn slow_node_like() -> Self {
        Self {
            name: "slow-node".to_string(),
            node_speeds: vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.5],
            ..Self::frontier_like()
        }
    }

    /// A mixed machine: alternating *pairs* of full-speed and
    /// older-generation nodes at 0.7× throughput (clusters upgraded an
    /// enclosure at a time keep whole node pairs on the old generation).
    pub fn mixed_machine_like() -> Self {
        Self {
            name: "mixed-machine".to_string(),
            node_speeds: vec![1.0, 1.0, 0.7, 0.7],
            ..Self::frontier_like()
        }
    }
}

/// Mapping of a set of ranks onto nodes: block placement, `ranks_per_node`
/// consecutive ranks per node (how `srun` lays out one rank per GCD).
#[derive(Clone, Copy, Debug)]
pub struct Placement {
    /// Ranks per node.
    pub ranks_per_node: usize,
}

impl Placement {
    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Statistics of a communicator whose members are the given *global*
    /// ranks: `(participants, nodes_spanned, max_ranks_on_one_node)`.
    pub fn span(&self, members: &[usize]) -> (usize, usize, usize) {
        use std::collections::HashMap;
        let mut per_node: HashMap<usize, usize> = HashMap::new();
        for &r in members {
            *per_node.entry(self.node_of(r)).or_insert(0) += 1;
        }
        let max_local = per_node.values().copied().max().unwrap_or(0);
        (members.len(), per_node.len(), max_local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_preset_basics() {
        let m = MachineModel::frontier_like();
        assert_eq!(m.ranks(32), 256);
        assert_eq!(m.nodes_for_ranks(256), 32);
        assert_eq!(m.nodes_for_ranks(257), 33);
        assert!(m.usable_mem_per_rank() < m.mem_per_rank);
        let total = m.usable_mem_total(32);
        assert_eq!(total, m.usable_mem_per_rank() * 256);
    }

    #[test]
    fn placement_block_layout() {
        let p = Placement { ranks_per_node: 8 };
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(7), 0);
        assert_eq!(p.node_of(8), 1);
        let (n, nodes, maxl) = p.span(&[0, 1, 8, 9, 10]);
        assert_eq!((n, nodes, maxl), (5, 2, 3));
    }

    #[test]
    fn span_of_single_node_group() {
        let p = Placement { ranks_per_node: 4 };
        let (n, nodes, maxl) = p.span(&[4, 5, 6, 7]);
        assert_eq!((n, nodes, maxl), (4, 1, 4));
    }

    #[test]
    fn presets_are_distinct_and_cloneable() {
        let a = MachineModel::frontier_like();
        let b = MachineModel::small_cluster();
        assert_ne!(a, b);
        assert_eq!(a.clone(), a);
        assert!(a.flops_per_rank > b.flops_per_rank);
    }

    #[test]
    fn homogeneous_speeds_are_unit() {
        let m = MachineModel::frontier_like();
        assert!(!m.is_heterogeneous());
        assert_eq!(m.speed_of_node(0), 1.0);
        assert_eq!(m.speed_of_node(123), 1.0);
        assert_eq!(m.speed_of_rank(999), 1.0);
        assert_eq!(m.min_speed(), 1.0);
    }

    #[test]
    fn slow_node_cycle_and_rank_mapping() {
        let m = MachineModel::slow_node_like();
        assert!(m.is_heterogeneous());
        assert_eq!(m.min_speed(), 0.5);
        // Nodes 0..6 full speed, node 7 (and 15, 23, ...) at half.
        assert_eq!(m.speed_of_node(6), 1.0);
        assert_eq!(m.speed_of_node(7), 0.5);
        assert_eq!(m.speed_of_node(15), 0.5);
        // 8 ranks/node: ranks 56..64 live on node 7.
        assert_eq!(m.speed_of_rank(55), 1.0);
        assert_eq!(m.speed_of_rank(56), 0.5);
        assert_eq!(m.speed_of_rank(63), 0.5);
        assert_eq!(m.speed_of_rank(64), 1.0);
    }

    #[test]
    fn mixed_machine_alternates() {
        let m = MachineModel::mixed_machine_like();
        assert!(m.is_heterogeneous());
        assert_eq!(m.speed_of_node(0), 1.0);
        assert_eq!(m.speed_of_node(1), 1.0);
        assert_eq!(m.speed_of_node(2), 0.7);
        assert_eq!(m.speed_of_node(3), 0.7);
        assert_eq!(m.speed_of_node(4), 1.0);
        assert_eq!(m.min_speed(), 0.7);
        // Heterogeneous presets share the Frontier fabric constants.
        let f = MachineModel::frontier_like();
        assert_eq!(m.alpha_inter, f.alpha_inter);
        assert_eq!(m.flops_per_rank, f.flops_per_rank);
    }
}
