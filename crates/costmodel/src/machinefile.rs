//! Machine-description files.
//!
//! Users planning campaigns for their own cluster describe it in a small
//! `KEY=VALUE` file (same conventions as `input.cgyro`): either a preset
//! reference or explicit constants. Consumed by the `xgplan` CLI.
//!
//! ```text
//! # machine.xg
//! PRESET=frontier-like      # optional starting point
//! RANKS_PER_NODE=8
//! MEM_PER_RANK_GB=64
//! USABLE_MEM_FRACTION=0.65
//! ALPHA_INTRA_US=3
//! ALPHA_INTER_US=12
//! BETA_INTRA_GBS=90
//! BETA_INTER_GBS=24
//! NIC_GBS=100
//! ALLREDUCE_CONGESTION=0.31
//! SYNC_OVERHEAD_US=60
//! FLOPS_PER_RANK_TF=6.0
//! MEM_BW_PER_RANK_TBS=1.3
//! ```

use crate::machine::MachineModel;
use std::collections::BTreeMap;

/// Parse failure with line context.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineFileError {
    /// 1-based line (0 = file-level).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for MachineFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MachineFileError {}

/// Resolve a preset by name.
pub fn preset(name: &str) -> Option<MachineModel> {
    match name {
        "frontier-like" | "frontier" => Some(MachineModel::frontier_like()),
        "perlmutter-like" | "perlmutter" => Some(MachineModel::perlmutter_like()),
        "slow-fabric" => Some(MachineModel::slow_fabric_cluster()),
        "small-cluster" => Some(MachineModel::small_cluster()),
        "slow-node" => Some(MachineModel::slow_node_like()),
        "mixed-machine" => Some(MachineModel::mixed_machine_like()),
        _ => None,
    }
}

/// Names of all built-in presets.
pub const PRESET_NAMES: [&str; 6] = [
    "frontier-like",
    "perlmutter-like",
    "slow-fabric",
    "small-cluster",
    "slow-node",
    "mixed-machine",
];

/// Parse a machine description, starting from `PRESET` (default
/// `frontier-like`) and overriding any explicitly given constants.
pub fn parse_machine(text: &str) -> Result<MachineModel, MachineFileError> {
    let mut kv: BTreeMap<String, (usize, String)> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(MachineFileError {
                line: line_no,
                message: format!("expected KEY=VALUE, got '{line}'"),
            });
        };
        kv.insert(k.trim().to_ascii_uppercase(), (line_no, v.trim().to_string()));
    }

    let mut m = match kv.get("PRESET") {
        None => MachineModel::frontier_like(),
        Some((line, name)) => preset(name).ok_or_else(|| MachineFileError {
            line: *line,
            message: format!(
                "unknown preset '{name}' (available: {})",
                PRESET_NAMES.join(", ")
            ),
        })?,
    };

    let parse_f64 = |key: &str| -> Result<Option<f64>, MachineFileError> {
        match kv.get(key) {
            None => Ok(None),
            Some((line, v)) => v
                .parse::<f64>()
                .map(Some)
                .map_err(|_| MachineFileError {
                    line: *line,
                    message: format!("cannot parse '{v}' for {key}"),
                }),
        }
    };

    if let Some(v) = parse_f64("RANKS_PER_NODE")? {
        m.ranks_per_node = v as usize;
    }
    if let Some(v) = parse_f64("MEM_PER_RANK_GB")? {
        m.mem_per_rank = (v * (1u64 << 30) as f64) as u64;
    }
    if let Some(v) = parse_f64("USABLE_MEM_FRACTION")? {
        m.usable_mem_fraction = v;
    }
    if let Some(v) = parse_f64("ALPHA_INTRA_US")? {
        m.alpha_intra = v * 1e-6;
    }
    if let Some(v) = parse_f64("ALPHA_INTER_US")? {
        m.alpha_inter = v * 1e-6;
    }
    if let Some(v) = parse_f64("BETA_INTRA_GBS")? {
        m.beta_intra = v * 1e9;
    }
    if let Some(v) = parse_f64("BETA_INTER_GBS")? {
        m.beta_inter = v * 1e9;
    }
    if let Some(v) = parse_f64("NIC_GBS")? {
        m.nic_bw = v * 1e9;
    }
    if let Some(v) = parse_f64("ALLREDUCE_CONGESTION")? {
        m.allreduce_congestion = v;
    }
    if let Some(v) = parse_f64("SYNC_OVERHEAD_US")? {
        m.sync_overhead = v * 1e-6;
    }
    if let Some(v) = parse_f64("FLOPS_PER_RANK_TF")? {
        m.flops_per_rank = v * 1e12;
    }
    if let Some(v) = parse_f64("MEM_BW_PER_RANK_TBS")? {
        m.mem_bw_per_rank = v * 1e12;
    }
    if let Some((line, v)) = kv.get("NODE_SPEEDS") {
        let speeds = v
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect::<Result<Vec<f64>, _>>()
            .map_err(|_| MachineFileError {
                line: *line,
                message: format!("cannot parse '{v}' for NODE_SPEEDS (comma-separated floats)"),
            })?;
        if speeds.is_empty() || speeds.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(MachineFileError {
                line: *line,
                message: "NODE_SPEEDS entries must be positive".into(),
            });
        }
        m.node_speeds = speeds;
    }
    if let Some((_, name)) = kv.get("NAME") {
        m.name = name.clone();
    }

    // Sanity.
    if m.ranks_per_node == 0 {
        return Err(MachineFileError {
            line: 0,
            message: "RANKS_PER_NODE must be at least 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&m.usable_mem_fraction) {
        return Err(MachineFileError {
            line: 0,
            message: "USABLE_MEM_FRACTION must be in [0, 1]".into(),
        });
    }
    for (label, v) in [
        ("BETA_INTRA_GBS", m.beta_intra),
        ("BETA_INTER_GBS", m.beta_inter),
        ("NIC_GBS", m.nic_bw),
        ("FLOPS_PER_RANK_TF", m.flops_per_rank),
        ("MEM_BW_PER_RANK_TBS", m.mem_bw_per_rank),
    ] {
        if v <= 0.0 {
            return Err(MachineFileError {
                line: 0,
                message: format!("{label} must be positive"),
            });
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_file_is_the_default_preset() {
        let m = parse_machine("").unwrap();
        assert_eq!(m, MachineModel::frontier_like());
    }

    #[test]
    fn preset_reference_resolves() {
        let m = parse_machine("PRESET=slow-fabric\n").unwrap();
        assert_eq!(m, MachineModel::slow_fabric_cluster());
        assert!(parse_machine("PRESET=does-not-exist\n").is_err());
    }

    #[test]
    fn overrides_apply_on_top_of_preset() {
        let m = parse_machine(
            "PRESET=frontier-like\nRANKS_PER_NODE=4\nBETA_INTER_GBS=10\nNAME=mycluster\n",
        )
        .unwrap();
        assert_eq!(m.ranks_per_node, 4);
        assert_eq!(m.beta_inter, 10e9);
        assert_eq!(m.name, "mycluster");
        // Untouched fields keep the preset values.
        assert_eq!(m.nic_bw, MachineModel::frontier_like().nic_bw);
    }

    #[test]
    fn units_convert_correctly() {
        let m = parse_machine(
            "MEM_PER_RANK_GB=32\nALPHA_INTER_US=25\nSYNC_OVERHEAD_US=80\nFLOPS_PER_RANK_TF=2\n",
        )
        .unwrap();
        assert_eq!(m.mem_per_rank, 32 << 30);
        assert!((m.alpha_inter - 25e-6).abs() < 1e-15);
        assert!((m.sync_overhead - 80e-6).abs() < 1e-15);
        assert!((m.flops_per_rank - 2e12).abs() < 1.0);
    }

    #[test]
    fn bad_values_report_line_numbers() {
        let e = parse_machine("RANKS_PER_NODE=eight\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_machine("\n\nNOT A KV LINE\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn sanity_checks_fire() {
        assert!(parse_machine("USABLE_MEM_FRACTION=1.5\n").is_err());
        assert!(parse_machine("BETA_INTER_GBS=0\n").is_err());
        assert!(parse_machine("RANKS_PER_NODE=0\n").is_err());
    }

    #[test]
    fn heterogeneous_presets_resolve() {
        let m = parse_machine("PRESET=slow-node\n").unwrap();
        assert_eq!(m, MachineModel::slow_node_like());
        let m = parse_machine("PRESET=mixed-machine\n").unwrap();
        assert_eq!(m, MachineModel::mixed_machine_like());
    }

    #[test]
    fn node_speeds_key_parses_and_validates() {
        let m = parse_machine("NODE_SPEEDS=1.0, 0.8, 0.5\n").unwrap();
        assert_eq!(m.node_speeds, vec![1.0, 0.8, 0.5]);
        assert!(m.is_heterogeneous());
        // Overrides the preset's own cycle.
        let m = parse_machine("PRESET=slow-node\nNODE_SPEEDS=1.0\n").unwrap();
        assert_eq!(m.node_speeds, vec![1.0]);
        assert!(!m.is_heterogeneous());
        // Bad values report the line.
        let e = parse_machine("NODE_SPEEDS=1.0,fast\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(parse_machine("NODE_SPEEDS=1.0,0\n").is_err());
        assert!(parse_machine("NODE_SPEEDS=-1\n").is_err());
    }
}
