//! Runtime autotuner for the collision panel kernel.
//!
//! Analogous to [`crate::best_allreduce_algo`] picking the reduction
//! schedule: at topology build time the tuner one-shot-benchmarks every
//! candidate `(SIMD level, row-tile height)` pair on a synthetic panel of
//! the actual `(nv, nrhs)` shape and keeps the fastest. The choice is
//! cached per process keyed by shape + CPU capability + L2 budget, so an
//! ensemble building many topologies of the same shape tunes once.
//!
//! Because every candidate kernel is bitwise-identical (see
//! [`xg_linalg::simd`]), the tuner is free to pick differently on
//! different ranks, machines or runs without perturbing trajectories —
//! only wall time changes. Determinism of the *selection procedure* itself
//! (stable candidate order, first-wins argmin) is still guaranteed and
//! proptested so that a fixed cost oracle always reproduces the same
//! choice.
//!
//! [`predicted_kernel`] is the analytic counterpart (roofline with
//! per-level lane efficiencies): `xgplan`/`xgreplay` report it next to the
//! measured choice recorded in the trace header.

use crate::compute::KernelCost;
use crate::machine::MachineModel;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;
use xg_linalg::{apply_panel_multi_with, Complex64, SimdLevel};

/// One tuned collision-kernel configuration: which micro-kernel and how
/// tall the L2-resident panel row tiles are.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelChoice {
    /// SIMD micro-kernel level.
    pub level: SimdLevel,
    /// Panel row-tile height (rows kept L2-resident per RHS sweep).
    pub tile_rows: usize,
}

impl fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/t{}", self.level, self.tile_rows)
    }
}

impl FromStr for KernelChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (lvl, tile) = s
            .split_once("/t")
            .ok_or_else(|| format!("kernel choice {s:?} is not of the form <level>/t<rows>"))?;
        Ok(KernelChoice {
            level: lvl.parse::<SimdLevel>()?,
            tile_rows: tile
                .parse::<usize>()
                .map_err(|e| format!("kernel choice {s:?}: bad tile rows: {e}"))?,
        })
    }
}

/// Candidate row-tile heights for an `nv×nv` panel under an `l2_kb`
/// budget: the L2-derived default plus the full panel, halves down to it,
/// and a small fixed tile — deduplicated, ascending, deterministic.
pub fn candidate_tile_rows(nv: usize, l2_kb: usize) -> Vec<usize> {
    let n = nv.max(1);
    let mut tiles = vec![
        xg_linalg::default_tile_rows(n, l2_kb),
        n,
        (n / 2).max(1),
        (n / 4).max(1),
        32.min(n),
    ];
    tiles.sort_unstable();
    tiles.dedup();
    tiles
}

/// The full candidate set: every level (narrowest first) × every tile
/// height (ascending). Stable order is what makes the argmin-with-ties
/// deterministic.
pub fn candidate_kernels(nv: usize, l2_kb: usize, levels: &[SimdLevel]) -> Vec<KernelChoice> {
    let tiles = candidate_tile_rows(nv, l2_kb);
    levels
        .iter()
        .flat_map(|&level| tiles.iter().map(move |&tile_rows| KernelChoice { level, tile_rows }))
        .collect()
}

/// Deterministic argmin over candidates under a caller-supplied cost
/// oracle: strictly-smaller cost wins, ties keep the earlier candidate.
/// Panics on an empty candidate list.
pub fn tune_kernel_with<F>(candidates: &[KernelChoice], mut cost: F) -> KernelChoice
where
    F: FnMut(&KernelChoice) -> f64,
{
    assert!(!candidates.is_empty(), "tune_kernel_with: empty candidate list");
    let mut best = candidates[0];
    let mut best_cost = cost(&candidates[0]);
    for c in &candidates[1..] {
        let t = cost(c);
        if t < best_cost {
            best = *c;
            best_cost = t;
        }
    }
    best
}

/// Deterministically-filled synthetic panel and RHS block of the tuned
/// shape (the values are irrelevant to timing; they only have to be
/// finite and dense).
fn synthetic_problem(nv: usize, nrhs: usize) -> (Vec<f64>, Vec<Complex64>) {
    let a: Vec<f64> = (0..nv * nv).map(|i| ((i % 251) as f64) * 0.004 - 0.5).collect();
    let x: Vec<Complex64> = (0..nv * nrhs)
        .map(|i| Complex64::new(((i % 127) as f64) * 0.01, ((i % 63) as f64) * -0.02))
        .collect();
    (a, x)
}

/// Wall-time one candidate on the synthetic problem (nanoseconds,
/// best-of-`reps` single applications after one warmup).
pub fn measure_kernel_ns(choice: KernelChoice, nv: usize, nrhs: usize, reps: usize) -> f64 {
    let (a, x) = synthetic_problem(nv, nrhs);
    let mut y = vec![Complex64::ZERO; nv * nrhs];
    apply_panel_multi_with(choice.level, &a, nv, &x, &mut y, nrhs, choice.tile_rows);
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        apply_panel_multi_with(choice.level, &a, nv, &x, &mut y, nrhs, choice.tile_rows);
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(&y);
    best
}

type TuneKey = (usize, usize, SimdLevel, usize);

fn tune_cache() -> &'static Mutex<HashMap<TuneKey, KernelChoice>> {
    static CACHE: OnceLock<Mutex<HashMap<TuneKey, KernelChoice>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Measured one-shot tuning for the collision apply of shape
/// `(nv, nrhs)`: benchmark every available `(level, tile)` candidate once
/// and cache the winner keyed by shape + CPU capability (+ L2 budget).
/// Called at topology build, like `best_allreduce_algo` for reductions.
pub fn tune_collision_kernel(nv: usize, nrhs: usize) -> KernelChoice {
    let level_cap = xg_linalg::selected_level();
    let l2_kb = xg_linalg::l2_cache_kb();
    let key = (nv, nrhs, level_cap, l2_kb);
    if let Some(hit) = tune_cache().lock().unwrap().get(&key) {
        return *hit;
    }
    let candidates = candidate_kernels(nv, l2_kb, &xg_linalg::available_levels());
    // Repetitions sized so tiny test shapes get stable timings while big
    // production panels stay a one-shot (~flops-bounded) measurement.
    let work = 4u64 * (nv as u64) * (nv as u64) * (nrhs.max(1) as u64);
    let reps = (2_000_000 / work.max(1)).clamp(1, 16) as usize;
    let choice = tune_kernel_with(&candidates, |c| measure_kernel_ns(*c, nv, nrhs, reps));
    tune_cache().lock().unwrap().insert(key, choice);
    choice
}

/// Modeled relative double-precision throughput of each micro-kernel
/// (fraction of the machine's achieved vector rate): the scalar path
/// issues one lane per FMA, AVX2 four with some issue overhead from the
/// broadcast stream, AVX-512 eight at lower clocks.
fn level_efficiency(level: SimdLevel) -> f64 {
    match level {
        SimdLevel::Scalar => 0.125,
        SimdLevel::Avx2 => 0.5,
        SimdLevel::Avx512 => 1.0,
    }
}

/// Analytic (roofline) time for one candidate on one panel apply:
/// `max(flops / (F·eff), bytes / B)` where the panel traffic multiplies by
/// the number of RHS register-group sweeps whenever the row tile
/// overflows half the L2 budget (the panel then re-streams from memory
/// per sweep instead of staying cache-resident).
pub fn predicted_kernel_time(
    m: &MachineModel,
    nv: usize,
    nrhs: usize,
    choice: KernelChoice,
    l2_kb: usize,
) -> f64 {
    let n = nv as u64;
    let k = nrhs.max(1) as u64;
    let tile_bytes = choice.tile_rows as u64 * n * 8;
    let sweeps = if tile_bytes <= (l2_kb as u64 * 1024) / 2 {
        1
    } else {
        // One panel re-stream per RHS register group (group width = two
        // complex RHS per vector, minimum one group).
        k.div_ceil((choice.level.lanes() as u64 / 2).max(1))
    };
    let cost = KernelCost {
        flops: 4 * n * n * k,
        bytes: 8 * n * n * sweeps + 2 * 16 * n * k,
    };
    let t_flops = cost.flops as f64 / (m.flops_per_rank * level_efficiency(choice.level));
    let t_bytes = cost.bytes as f64 / m.mem_bw_per_rank;
    t_flops.max(t_bytes)
}

/// Analytic counterpart of [`tune_collision_kernel`]: the candidate the
/// roofline model predicts fastest (same candidate order, same first-wins
/// tie-break — fully deterministic, no measurement). `xgplan` and
/// `xgreplay` print this next to the measured choice.
pub fn predicted_kernel(
    m: &MachineModel,
    nv: usize,
    nrhs: usize,
    l2_kb: usize,
    levels: &[SimdLevel],
) -> KernelChoice {
    let candidates = candidate_kernels(nv, l2_kb, levels);
    tune_kernel_with(&candidates, |c| predicted_kernel_time(m, nv, nrhs, *c, l2_kb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_display_round_trips() {
        for level in SimdLevel::ALL {
            for tile in [1usize, 32, 577] {
                let c = KernelChoice { level, tile_rows: tile };
                assert_eq!(c.to_string().parse::<KernelChoice>().unwrap(), c);
            }
        }
        assert!("avx2".parse::<KernelChoice>().is_err());
        assert!("warp9/t8".parse::<KernelChoice>().is_err());
    }

    #[test]
    fn candidate_tiles_are_sorted_deduped_and_bounded() {
        for &nv in &[1usize, 7, 64, 256, 1024] {
            let tiles = candidate_tile_rows(nv, 512);
            assert!(!tiles.is_empty());
            assert!(tiles.windows(2).all(|w| w[0] < w[1]), "sorted+deduped: {tiles:?}");
            assert!(tiles.iter().all(|&t| t >= 1 && t <= nv.max(1)));
        }
    }

    #[test]
    fn tuner_keeps_first_candidate_on_ties() {
        let cands = candidate_kernels(64, 512, &SimdLevel::ALL);
        let flat = tune_kernel_with(&cands, |_| 1.0);
        assert_eq!(flat, cands[0]);
    }

    #[test]
    fn tuner_finds_the_cheapest_candidate() {
        let cands = candidate_kernels(128, 512, &SimdLevel::ALL);
        let target = cands[cands.len() / 2];
        let got = tune_kernel_with(&cands, |c| if *c == target { 0.5 } else { 2.0 });
        assert_eq!(got, target);
    }

    #[test]
    fn measured_tuning_is_cached_and_valid() {
        let a = tune_collision_kernel(24, 3);
        let b = tune_collision_kernel(24, 3);
        assert_eq!(a, b, "cache must return the stored choice");
        assert!(xg_linalg::available_levels().contains(&a.level));
        assert!(a.tile_rows >= 1 && a.tile_rows <= 24);
    }

    #[test]
    fn predicted_kernel_prefers_wider_lanes_when_compute_bound() {
        let m = MachineModel::frontier_like();
        let p = predicted_kernel(&m, 256, 8, 2048, &SimdLevel::ALL);
        assert_eq!(p.level, SimdLevel::Avx512);
        // With only scalar available the prediction stays scalar.
        let s = predicted_kernel(&m, 256, 8, 2048, &[SimdLevel::Scalar]);
        assert_eq!(s.level, SimdLevel::Scalar);
    }

    #[test]
    fn predicted_time_penalizes_oversized_tiles() {
        let m = MachineModel::frontier_like();
        let small = KernelChoice { level: SimdLevel::Avx2, tile_rows: 8 };
        let huge = KernelChoice { level: SimdLevel::Avx2, tile_rows: 4096 };
        // A 4096-row tile of a 4096-wide panel can't stay L2-resident.
        assert!(
            predicted_kernel_time(&m, 4096, 8, small, 512)
                < predicted_kernel_time(&m, 4096, 8, huge, 512)
        );
    }
}
