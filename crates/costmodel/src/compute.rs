//! Compute kernel cost model: roofline-style `max(flops/F, bytes/B)`.
//!
//! Every on-rank kernel in the simulated step (streaming derivative, field
//! accumulation, nonlinear convolution, and above all the `cmat` matvec
//! stack) is described by a flop count and a memory traffic estimate; the
//! modeled time is the roofline bound under the machine's achieved
//! throughput numbers. The collision step in particular is memory-bound:
//! it streams the entire local `cmat` slice once per application, which is
//! why its time tracks `cmat` bytes rather than flops.

use crate::machine::MachineModel;

/// A compute kernel characterized by work and traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCost {
    /// Double-precision floating point operations.
    pub flops: u64,
    /// Bytes moved to/from memory (read + write).
    pub bytes: u64,
}

impl KernelCost {
    /// Zero-cost kernel.
    pub const ZERO: KernelCost = KernelCost { flops: 0, bytes: 0 };

    /// Sum of two kernel costs.
    pub fn plus(self, other: KernelCost) -> KernelCost {
        KernelCost { flops: self.flops + other.flops, bytes: self.bytes + other.bytes }
    }

    /// Scale by an integer repetition count.
    pub fn times(self, reps: u64) -> KernelCost {
        KernelCost { flops: self.flops * reps, bytes: self.bytes * reps }
    }

    /// Modeled execution time on `m` (seconds): roofline bound.
    pub fn time(self, m: &MachineModel) -> f64 {
        let t_flops = self.flops as f64 / m.flops_per_rank;
        let t_bytes = self.bytes as f64 / m.mem_bw_per_rank;
        t_flops.max(t_bytes)
    }

    /// Arithmetic intensity (flops per byte); `inf` for traffic-free work.
    pub fn intensity(self) -> f64 {
        if self.bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// Cost of applying one dense real `n×n` matrix to a complex vector.
/// Streams the matrix once (8 bytes/entry) plus the vectors.
pub fn real_complex_matvec(n: usize) -> KernelCost {
    let n = n as u64;
    KernelCost { flops: 4 * n * n, bytes: 8 * n * n + 2 * 16 * n }
}

/// Cost of a stack of `count` such matvecs (the collision step applies one
/// per local (configuration, toroidal) pair).
pub fn matvec_stack(n: usize, count: usize) -> KernelCost {
    real_complex_matvec(n).times(count as u64)
}

/// Cost of an axpy-like streaming update over `n` complex elements with
/// `flops_per_elem` flops each.
pub fn streaming_update(n: usize, flops_per_elem: u64) -> KernelCost {
    KernelCost { flops: n as u64 * flops_per_elem, bytes: n as u64 * 16 * 2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_picks_binding_resource() {
        let m = MachineModel::frontier_like();
        // Pure compute: flops bound.
        let k = KernelCost { flops: 6_000_000_000_000, bytes: 0 };
        assert!((k.time(&m) - 1.0).abs() < 1e-9);
        // Pure traffic: bytes bound.
        let k = KernelCost { flops: 0, bytes: 1_300_000_000_000 };
        assert!((k.time(&m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collision_matvec_is_memory_bound_on_frontier_like() {
        let m = MachineModel::frontier_like();
        let k = real_complex_matvec(576);
        // intensity = 4n²/(8n²+32n) < flops/membw ratio (≈4.6 flops/byte)
        assert!(k.intensity() < m.flops_per_rank / m.mem_bw_per_rank);
        assert!(k.time(&m) * m.mem_bw_per_rank >= k.bytes as f64 * 0.999);
    }

    #[test]
    fn plus_and_times_compose() {
        let a = KernelCost { flops: 10, bytes: 20 };
        let b = KernelCost { flops: 1, bytes: 2 };
        assert_eq!(a.plus(b), KernelCost { flops: 11, bytes: 22 });
        assert_eq!(b.times(5), KernelCost { flops: 5, bytes: 10 });
        assert_eq!(KernelCost::ZERO.plus(a), a);
    }

    #[test]
    fn matvec_stack_scales_linearly() {
        let one = real_complex_matvec(64);
        let stack = matvec_stack(64, 100);
        assert_eq!(stack.flops, one.flops * 100);
        assert_eq!(stack.bytes, one.bytes * 100);
    }

    #[test]
    fn intensity_of_streaming_kernel_is_low() {
        let k = streaming_update(1000, 8);
        assert!(k.intensity() < 1.0);
        assert_eq!(KernelCost::ZERO.intensity(), f64::INFINITY);
    }
}
