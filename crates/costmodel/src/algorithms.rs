//! Alternative collective algorithms for ablation studies.
//!
//! MPI libraries switch AllReduce algorithms by message size and
//! communicator size; which one the paper's runs hit affects how strongly
//! cost scales with participants. The default model
//! ([`crate::collective::allreduce_time`]) is the hierarchical
//! Rabenseifner-with-congestion form calibrated to the paper; this module
//! adds the textbook alternatives so the ablation bench can show how the
//! XGYRO advantage depends on the algorithm regime.

use crate::collective::CollectiveShape;
use crate::machine::MachineModel;

/// Selectable AllReduce algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllReduceAlgo {
    /// Reduce-scatter + allgather over a ring: bandwidth-optimal,
    /// `2(p−1)` steps — latency grows linearly with participants.
    Ring,
    /// Recursive doubling: `log₂p` steps of full-buffer exchanges —
    /// latency-optimal, bandwidth-suboptimal.
    RecursiveDoubling,
    /// The calibrated hierarchical model with the congestion term
    /// (the default used everywhere else).
    HierarchicalCongested,
}

impl std::fmt::Display for AllReduceAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AllReduceAlgo::Ring => "ring",
            AllReduceAlgo::RecursiveDoubling => "recursive-doubling",
            AllReduceAlgo::HierarchicalCongested => "hierarchical",
        })
    }
}

/// AllReduce time under a chosen algorithm (seconds).
pub fn allreduce_time_with(
    m: &MachineModel,
    shape: CollectiveShape,
    bytes: u64,
    algo: AllReduceAlgo,
) -> f64 {
    let p = shape.participants;
    if p <= 1 {
        return 0.0;
    }
    let n = bytes as f64;
    let inter = shape.nodes > 1;
    let alpha = if inter { m.alpha_inter } else { m.alpha_intra };
    let beta = if inter { m.beta_inter } else { m.beta_intra };
    match algo {
        AllReduceAlgo::Ring => {
            let steps = 2.0 * (p as f64 - 1.0);
            m.sync_overhead + steps * alpha + 2.0 * ((p - 1) as f64 / p as f64) * n / beta
        }
        AllReduceAlgo::RecursiveDoubling => {
            let steps = (p as f64).log2().ceil();
            m.sync_overhead + steps * (alpha + n / beta)
        }
        AllReduceAlgo::HierarchicalCongested => {
            crate::collective::allreduce_time(m, shape, bytes)
        }
    }
}

/// All algorithms, for sweeps.
pub const ALL_ALGOS: [AllReduceAlgo; 3] = [
    AllReduceAlgo::Ring,
    AllReduceAlgo::RecursiveDoubling,
    AllReduceAlgo::HierarchicalCongested,
];

/// The algorithm predicted fastest for this shape and message size — the
/// call both the runtime (str-phase reduction algorithm selection at
/// topology build time) and `xgplan`'s forecast column share, so the plan
/// output names exactly what the topology would pick.
pub fn best_allreduce_algo(m: &MachineModel, shape: CollectiveShape, bytes: u64) -> AllReduceAlgo {
    let mut best = AllReduceAlgo::HierarchicalCongested;
    let mut best_t = f64::INFINITY;
    for algo in ALL_ALGOS {
        let t = allreduce_time_with(m, shape, bytes, algo);
        if t < best_t {
            best_t = t;
            best = algo;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineModel {
        MachineModel::frontier_like()
    }

    #[test]
    fn all_algorithms_free_for_one_rank() {
        let s = CollectiveShape::packed(1, 8);
        for algo in ALL_ALGOS {
            assert_eq!(allreduce_time_with(&m(), s, 1 << 20, algo), 0.0);
        }
    }

    #[test]
    fn ring_is_bandwidth_optimal_for_large_messages() {
        // For large n, the ring's bandwidth term 2(p-1)/p·n/β beats
        // recursive doubling's log2(p)·n/β whenever log2 p > 2.
        let mm = m();
        let s = CollectiveShape::spread(16);
        let n = 64 << 20;
        let ring = allreduce_time_with(&mm, s, n, AllReduceAlgo::Ring);
        let rd = allreduce_time_with(&mm, s, n, AllReduceAlgo::RecursiveDoubling);
        assert!(ring < rd, "ring {ring} !< recursive-doubling {rd}");
    }

    #[test]
    fn recursive_doubling_wins_for_tiny_messages() {
        let mm = m();
        let s = CollectiveShape::spread(64);
        let n = 64; // tiny
        let ring = allreduce_time_with(&mm, s, n, AllReduceAlgo::Ring);
        let rd = allreduce_time_with(&mm, s, n, AllReduceAlgo::RecursiveDoubling);
        assert!(rd < ring, "rd {rd} !< ring {ring}");
    }

    #[test]
    fn hierarchical_matches_default_function() {
        let mm = m();
        let s = CollectiveShape::packed(32, 8);
        let n = 4 << 20;
        assert_eq!(
            allreduce_time_with(&mm, s, n, AllReduceAlgo::HierarchicalCongested),
            crate::collective::allreduce_time(&mm, s, n)
        );
    }

    #[test]
    fn best_algo_tracks_message_size_regimes() {
        let mm = m();
        let s = CollectiveShape::spread(64);
        // Tiny messages: latency-optimal recursive doubling wins.
        assert_eq!(best_allreduce_algo(&mm, s, 64), AllReduceAlgo::RecursiveDoubling);
        // The returned algorithm is always the argmin over ALL_ALGOS.
        for bytes in [64u64, 1 << 12, 1 << 20, 64 << 20] {
            let best = best_allreduce_algo(&mm, s, bytes);
            let t_best = allreduce_time_with(&mm, s, bytes, best);
            for algo in ALL_ALGOS {
                assert!(t_best <= allreduce_time_with(&mm, s, bytes, algo));
            }
        }
    }

    #[test]
    fn participant_scaling_differs_by_algorithm() {
        // The congested model scales ~linearly with node count; recursive
        // doubling only logarithmically — the ablation's point.
        let mm = m();
        let n = 2 << 20;
        let grow = |algo| {
            let t2 = allreduce_time_with(&mm, CollectiveShape::spread(2), n, algo);
            let t64 = allreduce_time_with(&mm, CollectiveShape::spread(64), n, algo);
            t64 / t2
        };
        let g_rd = grow(AllReduceAlgo::RecursiveDoubling);
        let g_hc = grow(AllReduceAlgo::HierarchicalCongested);
        assert!(g_hc > 2.0 * g_rd, "congested {g_hc} vs rd {g_rd}");
    }
}
