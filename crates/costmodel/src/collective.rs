//! Analytic cost formulas for collective operations.
//!
//! Standard α–β (latency–bandwidth) models with two extensions that matter
//! for this paper's mechanism:
//!
//! 1. **Node awareness** — intra-node traffic uses the fast path; inter-node
//!    traffic shares the node's NIC.
//! 2. **AllReduce congestion** — beyond the textbook Rabenseifner cost
//!    `2·log₂p·α + 2·((p−1)/p)·n/β`, large communicators on a real fabric
//!    pay an additional ~linear-in-p penalty (network contention, stragglers,
//!    OS noise amplification). The paper leans on exactly this behaviour:
//!    "the overall cost of AllReduce is proportional with the number of
//!    participating processes" (§2.1). We model it as an extra
//!    `γ·(m−1)·n/β_inter` term on the inter-node stage, with `m` the number
//!    of nodes spanned and `γ` a calibrated machine constant.

use crate::machine::{MachineModel, Placement};

/// Description of one collective for costing purposes.
#[derive(Clone, Copy, Debug)]
pub struct CollectiveShape {
    /// Number of participating ranks.
    pub participants: usize,
    /// Number of distinct nodes the participants span.
    pub nodes: usize,
    /// Largest number of participants co-located on one node.
    pub max_ranks_per_node: usize,
}

impl CollectiveShape {
    /// Shape of a communicator with the given global members under a
    /// placement.
    pub fn from_members(members: &[usize], placement: Placement) -> Self {
        let (participants, nodes, max_ranks_per_node) = placement.span(members);
        Self { participants, nodes, max_ranks_per_node }
    }

    /// Shape of `p` ranks packed onto nodes of `rpn` ranks each, starting at
    /// a node boundary (block placement).
    pub fn packed(p: usize, rpn: usize) -> Self {
        Self { participants: p, nodes: p.div_ceil(rpn), max_ranks_per_node: p.min(rpn) }
    }

    /// Shape of `p` ranks that are all on *different* nodes (one per node) —
    /// the worst case for inter-node traffic.
    pub fn spread(p: usize) -> Self {
        Self { participants: p, nodes: p, max_ranks_per_node: 1 }
    }
}

/// Time for an AllReduce of `bytes` per rank over `shape` (seconds).
///
/// Hierarchical model: a reduce inside each node, an AllReduce across node
/// leaders (with the congestion term), and a broadcast inside each node.
pub fn allreduce_time(m: &MachineModel, shape: CollectiveShape, bytes: u64) -> f64 {
    let p = shape.participants;
    if p <= 1 {
        return 0.0;
    }
    let n = bytes as f64;
    let local = shape.max_ranks_per_node.max(1);
    let m_nodes = shape.nodes.max(1);

    // Intra-node stage: tree reduce + broadcast among up to `local` ranks.
    let mut t = m.sync_overhead;
    if local > 1 {
        let stages = (local as f64).log2().ceil();
        t += 2.0 * stages * m.alpha_intra + 2.0 * n / m.beta_intra * (local - 1) as f64 / local as f64;
    }
    // Inter-node stage: Rabenseifner over node leaders + congestion.
    if m_nodes > 1 {
        let stages = (m_nodes as f64).log2().ceil();
        t += 2.0 * stages * m.alpha_inter;
        t += 2.0 * n / m.beta_inter * (m_nodes - 1) as f64 / m_nodes as f64;
        t += m.allreduce_congestion * (m_nodes - 1) as f64 * n / m.beta_inter;
    }
    t
}

/// Time for a personalized AllToAll where each rank sends `total_bytes`
/// in aggregate, split evenly over the other `p − 1` peers (seconds).
///
/// Pairwise-exchange model: latency per peer, bandwidth split between the
/// intra-node portion (fast path) and the inter-node portion, with the node
/// NIC as a shared bottleneck for everything leaving the node.
pub fn alltoall_time(m: &MachineModel, shape: CollectiveShape, total_bytes: u64) -> f64 {
    let p = shape.participants;
    if p <= 1 {
        return 0.0;
    }
    let v = total_bytes as f64;
    let local = shape.max_ranks_per_node.max(1);
    let t_sync = m.sync_overhead;
    let peers = (p - 1) as f64;
    let local_peers = (local - 1) as f64;
    let remote_peers = peers - local_peers;

    // Latency: one message per peer.
    let t_lat = local_peers * m.alpha_intra + remote_peers * m.alpha_inter;

    // Bandwidth: fraction of volume by peer locality.
    let v_local = if peers > 0.0 { v * local_peers / peers } else { 0.0 };
    let v_remote = v - v_local;
    let t_bw = v_local / m.beta_intra + v_remote / m.beta_inter;

    // NIC contention: every rank on the node pushes its remote volume
    // through the shared NIC (and receives as much).
    let t_nic = (local as f64) * v_remote / m.nic_bw;

    t_sync + t_lat + t_bw.max(t_nic)
}

/// Time for an AllGather where each rank contributes `bytes` (seconds).
/// Ring model on the inter-node fabric.
pub fn allgather_time(m: &MachineModel, shape: CollectiveShape, bytes: u64) -> f64 {
    let p = shape.participants;
    if p <= 1 {
        return 0.0;
    }
    let n = bytes as f64;
    let stages = (p - 1) as f64;
    let beta = if shape.nodes > 1 { m.beta_inter } else { m.beta_intra };
    let alpha = if shape.nodes > 1 { m.alpha_inter } else { m.alpha_intra };
    m.sync_overhead + stages * alpha + stages * n / beta
}

/// Time for a broadcast of `bytes` (binomial tree).
pub fn broadcast_time(m: &MachineModel, shape: CollectiveShape, bytes: u64) -> f64 {
    let p = shape.participants;
    if p <= 1 {
        return 0.0;
    }
    let n = bytes as f64;
    let stages = (p as f64).log2().ceil();
    let beta = if shape.nodes > 1 { m.beta_inter } else { m.beta_intra };
    let alpha = if shape.nodes > 1 { m.alpha_inter } else { m.alpha_intra };
    m.sync_overhead + stages * (alpha + n / beta)
}

/// Time for a barrier (dissemination).
pub fn barrier_time(m: &MachineModel, shape: CollectiveShape) -> f64 {
    let p = shape.participants;
    if p <= 1 {
        return 0.0;
    }
    let alpha = if shape.nodes > 1 { m.alpha_inter } else { m.alpha_intra };
    m.sync_overhead + (p as f64).log2().ceil() * alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineModel {
        MachineModel::frontier_like()
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let s = CollectiveShape::packed(1, 8);
        assert_eq!(allreduce_time(&m(), s, 1 << 20), 0.0);
        assert_eq!(alltoall_time(&m(), s, 1 << 20), 0.0);
        assert_eq!(barrier_time(&m(), s), 0.0);
    }

    #[test]
    fn allreduce_monotone_in_participants() {
        let mm = m();
        let n = 4 << 20;
        let mut last = 0.0;
        for p in [2usize, 4, 8, 16, 32, 64, 128] {
            let t = allreduce_time(&mm, CollectiveShape::packed(p, 8), n);
            assert!(t > last, "p={p}: {t} !> {last}");
            last = t;
        }
    }

    #[test]
    fn allreduce_monotone_in_bytes() {
        let mm = m();
        let s = CollectiveShape::packed(16, 8);
        let t1 = allreduce_time(&mm, s, 1 << 20);
        let t2 = allreduce_time(&mm, s, 8 << 20);
        assert!(t2 > t1);
    }

    #[test]
    fn allreduce_grows_roughly_linearly_with_nodes() {
        // The congestion term makes cost ~ proportional to participants at
        // scale — the mechanism the paper exploits (§2.1).
        let mm = m();
        let n = 4 << 20;
        let t16 = allreduce_time(&mm, CollectiveShape::packed(16 * 8, 8), n);
        let t2 = allreduce_time(&mm, CollectiveShape::packed(2 * 8, 8), n);
        let ratio = t16 / t2;
        assert!(
            (3.0..12.0).contains(&ratio),
            "8x more nodes should be ~4-8x the cost, got {ratio:.2}"
        );
    }

    #[test]
    fn intra_node_allreduce_cheaper_than_inter_node() {
        let mm = m();
        let n = 4 << 20;
        let intra = allreduce_time(&mm, CollectiveShape::packed(8, 8), n);
        let inter = allreduce_time(&mm, CollectiveShape::spread(8), n);
        assert!(intra < inter);
    }

    #[test]
    fn alltoall_roughly_flat_in_participants_at_fixed_per_rank_volume() {
        // The paper's coll transpose volume per rank is constant as the
        // ensemble regroups ranks; AllToAll cost should be within a small
        // factor across p (unlike AllReduce).
        let mm = m();
        let v = 64 << 20;
        let t16 = alltoall_time(&mm, CollectiveShape::packed(16, 8), v);
        let t128 = alltoall_time(&mm, CollectiveShape::packed(128, 8), v);
        // Going 16 -> 128 ranks loses some intra-node locality (< 2.5x).
        assert!(t128 / t16 < 2.5, "alltoall should be ~flat: {t128} vs {t16}");
        // Contrast with AllReduce at the same per-rank volume, whose
        // congestion term grows much faster over the same span.
        let ar16 = allreduce_time(&mm, CollectiveShape::packed(16, 8), v);
        let ar128 = allreduce_time(&mm, CollectiveShape::packed(128, 8), v);
        assert!(ar128 / ar16 > t128 / t16, "allreduce must scale worse than alltoall");
    }

    #[test]
    fn alltoall_within_one_node_uses_fast_path() {
        let mm = m();
        let v = 64 << 20;
        let onenode = alltoall_time(&mm, CollectiveShape::packed(8, 8), v);
        let spread = alltoall_time(&mm, CollectiveShape::spread(8), v);
        assert!(onenode < spread);
    }

    #[test]
    fn allgather_broadcast_barrier_positive() {
        let mm = m();
        let s = CollectiveShape::packed(16, 8);
        assert!(allgather_time(&mm, s, 1024) > 0.0);
        assert!(broadcast_time(&mm, s, 1024) > 0.0);
        assert!(barrier_time(&mm, s) > 0.0);
    }

    #[test]
    fn shape_constructors() {
        let s = CollectiveShape::packed(20, 8);
        assert_eq!((s.participants, s.nodes, s.max_ranks_per_node), (20, 3, 8));
        let s = CollectiveShape::spread(5);
        assert_eq!((s.participants, s.nodes, s.max_ranks_per_node), (5, 5, 1));
    }
}
