//! Fold recorded communication traces into modeled time per phase.
//!
//! A functional run over `xg-comm` leaves each rank with a `TrafficLog`;
//! this module prices every record with the collective cost formulas under
//! a chosen [`MachineModel`] and [`Placement`], and aggregates by phase —
//! producing the same phase breakdown for small functional runs that the
//! symbolic performance pipeline produces at paper scale.

use crate::collective::{
    allgather_time, allreduce_time, alltoall_time, barrier_time, broadcast_time, CollectiveShape,
};
use crate::machine::{MachineModel, Placement};
use std::collections::BTreeMap;
use xg_comm::{OpKind, OpRecord};

/// Seconds attributed to `(phase, op kind)` buckets, plus totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    buckets: BTreeMap<(String, String), f64>,
}

impl PhaseBreakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` to the `(phase, category)` bucket.
    pub fn add(&mut self, phase: &str, category: &str, seconds: f64) {
        *self.buckets.entry((phase.to_string(), category.to_string())).or_insert(0.0) += seconds;
    }

    /// Seconds in one `(phase, category)` bucket.
    pub fn get(&self, phase: &str, category: &str) -> f64 {
        self.buckets
            .get(&(phase.to_string(), category.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total seconds in a phase (all categories).
    pub fn phase_total(&self, phase: &str) -> f64 {
        self.buckets.iter().filter(|((p, _), _)| p == phase).map(|(_, v)| v).sum()
    }

    /// Total seconds over everything.
    pub fn total(&self) -> f64 {
        self.buckets.values().sum()
    }

    /// Iterate `(phase, category) -> seconds` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.buckets.iter().map(|((p, c), v)| (p.as_str(), c.as_str(), *v))
    }

    /// Merge another breakdown into this one (summing buckets).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for ((p, c), v) in &other.buckets {
            *self.buckets.entry((p.clone(), c.clone())).or_insert(0.0) += v;
        }
    }

    /// Scale every bucket by `factor` (e.g. timesteps per reporting step).
    pub fn scaled(&self, factor: f64) -> PhaseBreakdown {
        let mut out = self.clone();
        for v in out.buckets.values_mut() {
            *v *= factor;
        }
        out
    }
}

/// Price one communication record under the model (seconds).
pub fn op_time(m: &MachineModel, placement: Placement, rec: &OpRecord) -> f64 {
    let shape = CollectiveShape::from_members(&rec.members, placement);
    match rec.op {
        OpKind::AllReduce => allreduce_time(m, shape, rec.bytes),
        OpKind::AllToAll => alltoall_time(m, shape, rec.bytes),
        OpKind::AllGather => allgather_time(m, shape, rec.bytes),
        OpKind::Broadcast => broadcast_time(m, shape, rec.bytes),
        OpKind::Barrier => barrier_time(m, shape),
        // Point-to-point: α + n/β on the appropriate path; we price it as a
        // two-node transfer unless both endpoints share a node (unknown from
        // the record alone — the members list holds the communicator).
        OpKind::Send => m.alpha_inter + rec.bytes as f64 / m.beta_inter,
        OpKind::Recv => 0.0,
        // Fault/recovery markers carry their downtime directly as
        // microseconds in `bytes`; they are local events, not transfers.
        OpKind::Fault | OpKind::Recover => rec.bytes as f64 * 1e-6,
    }
}

/// Price a whole per-rank trace, bucketing as `(phase, "comm:<op>")`.
pub fn trace_breakdown(
    m: &MachineModel,
    placement: Placement,
    records: &[OpRecord],
) -> PhaseBreakdown {
    let mut out = PhaseBreakdown::new();
    for rec in records {
        let t = op_time(m, placement, rec);
        out.add(&rec.phase, &format!("comm:{}", rec.op), t);
    }
    out
}

/// The critical-path communication time across ranks: for each phase bucket
/// take the maximum over the per-rank breakdowns (ranks progress together
/// through blocking collectives, so the slowest rank sets the pace).
pub fn critical_path(breakdowns: &[PhaseBreakdown]) -> PhaseBreakdown {
    let mut out = PhaseBreakdown::new();
    let mut keys: Vec<(String, String)> = Vec::new();
    for b in breakdowns {
        for (p, c, _) in b.iter() {
            let k = (p.to_string(), c.to_string());
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    for (p, c) in keys {
        let mx = breakdowns.iter().map(|b| b.get(&p, &c)).fold(0.0, f64::max);
        out.add(&p, &c, mx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: OpKind, phase: &str, members: Vec<usize>, bytes: u64) -> OpRecord {
        OpRecord {
            op,
            comm_label: "t".into(),
            participants: members.len(),
            members,
            bytes,
            phase: phase.into(),
            elapsed_us: 0,
        }
    }

    #[test]
    fn breakdown_buckets_accumulate() {
        let mut b = PhaseBreakdown::new();
        b.add("str", "comm:AllReduce", 1.0);
        b.add("str", "comm:AllReduce", 2.0);
        b.add("coll", "comm:AllToAll", 4.0);
        assert_eq!(b.get("str", "comm:AllReduce"), 3.0);
        assert_eq!(b.phase_total("str"), 3.0);
        assert_eq!(b.total(), 7.0);
        assert_eq!(b.get("nl", "anything"), 0.0);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = PhaseBreakdown::new();
        a.add("str", "x", 1.0);
        let mut b = PhaseBreakdown::new();
        b.add("str", "x", 2.0);
        b.add("coll", "y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("str", "x"), 3.0);
        let s = a.scaled(10.0);
        assert_eq!(s.get("coll", "y"), 30.0);
        assert_eq!(a.get("coll", "y"), 3.0, "scaled must not mutate");
    }

    #[test]
    fn trace_pricing_respects_phase_and_kind() {
        let m = MachineModel::frontier_like();
        let placement = Placement { ranks_per_node: 8 };
        let recs = vec![
            rec(OpKind::AllReduce, "str", (0..16).collect(), 1 << 20),
            rec(OpKind::AllToAll, "coll", (0..16).collect(), 16 << 20),
            rec(OpKind::Barrier, "setup", (0..16).collect(), 0),
        ];
        let b = trace_breakdown(&m, placement, &recs);
        assert!(b.get("str", "comm:AllReduce") > 0.0);
        assert!(b.get("coll", "comm:AllToAll") > 0.0);
        assert!(b.get("setup", "comm:Barrier") > 0.0);
        assert_eq!(b.get("str", "comm:AllToAll"), 0.0);
    }

    #[test]
    fn spread_members_cost_more_than_packed() {
        let m = MachineModel::frontier_like();
        let placement = Placement { ranks_per_node: 8 };
        let packed = rec(OpKind::AllReduce, "str", (0..8).collect(), 4 << 20);
        let spread = rec(
            OpKind::AllReduce,
            "str",
            (0..8).map(|i| i * 8).collect(),
            4 << 20,
        );
        assert!(op_time(&m, placement, &spread) > op_time(&m, placement, &packed));
    }

    #[test]
    fn critical_path_takes_max_per_bucket() {
        let mut a = PhaseBreakdown::new();
        a.add("str", "x", 1.0);
        a.add("coll", "y", 5.0);
        let mut b = PhaseBreakdown::new();
        b.add("str", "x", 3.0);
        let cp = critical_path(&[a, b]);
        assert_eq!(cp.get("str", "x"), 3.0);
        assert_eq!(cp.get("coll", "y"), 5.0);
    }
}
