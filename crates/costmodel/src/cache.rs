//! Result-cache economics.
//!
//! A campaign served through `xgqueued --artifacts` skips execution for
//! every member whose canonical deck hash is already in the artifact store
//! — parameter scans revisit decks constantly (reruns after a crashed
//! post-processing step, overlapping sweeps, CI replays), and a cache hit
//! costs microseconds of manifest lookup instead of hours of simulation.
//! This module prices that into the planner's forecast: with hit
//! probability `p`, only the `(1 - p)` missing fraction of the campaign
//! pays compute, so the expected time-to-solution scales by `(1 - p)`.
//! The fixed costs (admission, journal append, manifest lookup) are
//! sub-millisecond against multi-hour ETTS and are deliberately dropped.

/// Expected time-to-solution with a result cache warmed to hit rate
/// `hit_rate`: cached members complete at admission, so only the missing
/// `(1 - hit_rate)` fraction pays `etts_s`.
///
/// `hit_rate` must lie in `[0, 1]` and `etts_s` must be non-negative and
/// finite; violations panic (planner inputs, not runtime data).
pub fn cache_adjusted_etts(etts_s: f64, hit_rate: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&hit_rate),
        "hit_rate must be in [0, 1], got {hit_rate}"
    );
    assert!(
        etts_s >= 0.0 && etts_s.is_finite(),
        "etts_s must be non-negative and finite, got {etts_s}"
    );
    etts_s * (1.0 - hit_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_linearly_with_the_miss_fraction() {
        assert_eq!(cache_adjusted_etts(3600.0, 0.0), 3600.0);
        assert_eq!(cache_adjusted_etts(3600.0, 0.5), 1800.0);
        assert_eq!(cache_adjusted_etts(3600.0, 1.0), 0.0);
        assert_eq!(cache_adjusted_etts(0.0, 0.7), 0.0);
    }

    #[test]
    #[should_panic(expected = "hit_rate must be in [0, 1]")]
    fn rejects_a_hit_rate_above_one() {
        cache_adjusted_etts(3600.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "hit_rate must be in [0, 1]")]
    fn rejects_a_negative_hit_rate() {
        cache_adjusted_etts(3600.0, -0.1);
    }

    #[test]
    #[should_panic(expected = "etts_s must be non-negative")]
    fn rejects_a_negative_etts() {
        cache_adjusted_etts(-1.0, 0.5);
    }
}
