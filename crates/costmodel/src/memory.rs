//! Memory laws of the shared constant tensor.
//!
//! The paper's Figure-3 claim in byte form: a k-member ensemble whose
//! members agree on everything `cmat` depends on holds **one** copy of the
//! constant tensor where k independent CGYRO jobs would hold k. These
//! helpers express that law once so every consumer — the `xgplan` campaign
//! planner, the `xg-serve` batching metrics, reports — quotes the same
//! numbers and can never drift from each other.

use xg_tensor::SimDims;

/// Total bytes of the collisional constant tensor for a simulation of
/// `dims`: `nv² · nc · nt · 8` (one dense real `nv × nv` propagator per
/// configuration/toroidal pair).
pub fn cmat_total_bytes(dims: SimDims) -> u64 {
    (dims.nv as u64) * (dims.nv as u64) * (dims.nc as u64) * (dims.nt as u64) * 8
}

/// Bytes saved by running `k` cmat-compatible simulations as one shared-cmat
/// ensemble instead of `k` independent jobs: the ensemble holds one copy of
/// the constant tensor, the unbatched alternative holds `k`.
///
/// `k = 0` and `k = 1` save nothing (no sharing happens).
///
/// ```
/// use xg_costmodel::memory::{cmat_saved_bytes, cmat_total_bytes};
/// use xg_tensor::SimDims;
///
/// let dims = SimDims::new(32, 24, 2);
/// assert_eq!(cmat_saved_bytes(1, dims), 0);
/// assert_eq!(cmat_saved_bytes(8, dims), 7 * cmat_total_bytes(dims));
/// ```
pub fn cmat_saved_bytes(k: usize, dims: SimDims) -> u64 {
    (k.saturating_sub(1) as u64) * cmat_total_bytes(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_matches_the_paper_law() {
        let dims = SimDims::new(131072, 576, 16);
        let b = cmat_total_bytes(dims);
        // nl03c-like: ≈ 5.57 TB.
        assert!(b > 5 << 40 && b < 6 << 40, "cmat = {b}");
    }

    #[test]
    fn saved_is_k_minus_one_copies() {
        let dims = SimDims::new(32, 24, 2);
        let one = cmat_total_bytes(dims);
        assert_eq!(cmat_saved_bytes(0, dims), 0);
        assert_eq!(cmat_saved_bytes(1, dims), 0);
        assert_eq!(cmat_saved_bytes(2, dims), one);
        assert_eq!(cmat_saved_bytes(8, dims), 7 * one);
    }

    #[test]
    fn saved_grows_monotonically_in_k() {
        let dims = SimDims::new(64, 48, 4);
        let mut prev = 0;
        for k in 1..=16 {
            let s = cmat_saved_bytes(k, dims);
            assert!(s >= prev);
            prev = s;
        }
    }
}
