//! # xg-costmodel
//!
//! Analytic performance model of a Frontier-like HPC system: machine
//! presets, node-aware α–β collective cost formulas (with the calibrated
//! AllReduce congestion term whose ~linear-in-participants growth is the
//! mechanism the paper exploits), a roofline compute model, and accounting
//! helpers that turn communication traces into per-phase time breakdowns.
//!
//! Calibration discipline: constants in
//! [`machine::MachineModel::frontier_like`] are fitted once against the
//! paper's *CGYRO* numbers (Figure 2 left column); every XGYRO number this
//! model produces is a prediction, not a fit. See EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod account;
pub mod algorithms;
pub mod cache;
pub mod collective;
pub mod compute;
pub mod machine;
pub mod machinefile;
pub mod memory;
pub mod tuner;

pub use account::{critical_path, op_time, trace_breakdown, PhaseBreakdown};
pub use cache::cache_adjusted_etts;
pub use algorithms::{allreduce_time_with, best_allreduce_algo, AllReduceAlgo, ALL_ALGOS};
pub use collective::{
    allgather_time, allreduce_time, alltoall_time, barrier_time, broadcast_time, CollectiveShape,
};
pub use compute::{matvec_stack, real_complex_matvec, streaming_update, KernelCost};
pub use machine::{MachineModel, Placement};
pub use machinefile::{parse_machine, preset, MachineFileError, PRESET_NAMES};
pub use memory::{cmat_saved_bytes, cmat_total_bytes};
pub use tuner::{
    candidate_kernels, candidate_tile_rows, measure_kernel_ns, predicted_kernel,
    predicted_kernel_time, tune_collision_kernel, tune_kernel_with, KernelChoice,
};
