//! Property tests for the collision-kernel autotuner (satellite: tuner
//! choice is deterministic for a fixed cost oracle, and every candidate
//! kernel is bitwise-equal to the scalar reference on random `(nv, nrhs)`
//! shapes — including non-multiples of the SIMD lane widths, which
//! exercise every remainder-column path).

use proptest::prelude::*;
use xg_costmodel::tuner::{candidate_kernels, tune_kernel_with, KernelChoice};
use xg_linalg::{apply_panel_multi_with, available_levels, Complex64, SimdLevel};

/// A deterministic synthetic cost oracle derived from a seed: stands in
/// for wall-clock measurement so determinism is a property of the
/// selection procedure, not of timer noise.
fn oracle(seed: u64) -> impl Fn(&KernelChoice) -> f64 {
    move |c: &KernelChoice| {
        let mut h = seed ^ 0x9e3779b97f4a7c15;
        for b in [c.level.lanes() as u64, c.tile_rows as u64] {
            h ^= b.wrapping_mul(0xff51afd7ed558ccd);
            h = h.rotate_left(31).wrapping_mul(0xc4ceb9fe1a85ec53);
        }
        (h % 10_000) as f64
    }
}

fn cvector(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tuner_choice_is_deterministic_for_fixed_seed_and_shape(
        seed in 0u64..u64::MAX,
        nv in 1usize..512,
        l2_kb in 64usize..4096,
    ) {
        let cands = candidate_kernels(nv, l2_kb, &SimdLevel::ALL);
        let a = tune_kernel_with(&cands, oracle(seed));
        let b = tune_kernel_with(&cands, oracle(seed));
        prop_assert_eq!(a, b);
        // The winner is a real candidate and the argmin of the oracle.
        let f = oracle(seed);
        prop_assert!(cands.contains(&a));
        prop_assert!(cands.iter().all(|c| f(&a) <= f(c)));
    }

    #[test]
    fn every_candidate_kernel_is_bitwise_equal_on_random_shapes(
        // Deliberately *not* lane-width multiples: nv and nrhs sweep odd
        // sizes so the 8/4/2/1-wide remainder paths all run.
        nv in 1usize..40,
        nrhs in 1usize..11,
        l2_kb in 1usize..64,
        seed_panel in prop::collection::vec(-2.0f64..2.0, 1600),
        x_raw in cvector(440),
    ) {
        let a: Vec<f64> = seed_panel.iter().copied().cycle().take(nv * nv).collect();
        let x: Vec<Complex64> = x_raw.iter().copied().cycle().take(nv * nrhs).collect();

        // Scalar un-tiled reference.
        let mut want = vec![Complex64::ZERO; nv * nrhs];
        apply_panel_multi_with(SimdLevel::Scalar, &a, nv, &x, &mut want, nrhs, nv);

        for cand in candidate_kernels(nv, l2_kb, &available_levels()) {
            let mut y = vec![Complex64::ZERO; nv * nrhs];
            apply_panel_multi_with(cand.level, &a, nv, &x, &mut y, nrhs, cand.tile_rows);
            for (i, (got, exp)) in y.iter().zip(&want).enumerate() {
                prop_assert_eq!(
                    got.re.to_bits(), exp.re.to_bits(),
                    "re mismatch at {} for {} (nv={}, nrhs={})", i, cand, nv, nrhs
                );
                prop_assert_eq!(got.im.to_bits(), exp.im.to_bits());
            }
        }
    }
}
