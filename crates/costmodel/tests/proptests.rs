//! Property-based tests of the cost model: monotonicity and sanity bounds
//! must hold across the whole parameter space, not just calibration points.

use proptest::prelude::*;
use xg_costmodel::{
    allgather_time, allreduce_time, allreduce_time_with, alltoall_time, barrier_time,
    broadcast_time, CollectiveShape, MachineModel,
};

fn machines() -> impl Strategy<Value = MachineModel> {
    prop_oneof![
        Just(MachineModel::frontier_like()),
        Just(MachineModel::small_cluster()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_costs_nonnegative_and_finite(
        m in machines(),
        p in 1usize..512,
        bytes in 0u64..(1 << 30),
    ) {
        let shape = CollectiveShape::packed(p, m.ranks_per_node);
        for t in [
            allreduce_time(&m, shape, bytes),
            alltoall_time(&m, shape, bytes),
            allgather_time(&m, shape, bytes),
            broadcast_time(&m, shape, bytes),
            barrier_time(&m, shape),
        ] {
            prop_assert!(t.is_finite() && t >= 0.0, "bad time {t}");
        }
    }

    #[test]
    fn allreduce_monotone_in_bytes(
        m in machines(),
        p in 2usize..256,
        b1 in 0u64..(1 << 28),
        extra in 1u64..(1 << 28),
    ) {
        let shape = CollectiveShape::packed(p, m.ranks_per_node);
        let t1 = allreduce_time(&m, shape, b1);
        let t2 = allreduce_time(&m, shape, b1 + extra);
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn allreduce_monotone_in_spread_participants(
        m in machines(),
        p in 2usize..128,
        bytes in 1u64..(1 << 26),
    ) {
        // One rank per node (the str-comm layout): more participants can
        // never be cheaper.
        let t1 = allreduce_time(&m, CollectiveShape::spread(p), bytes);
        let t2 = allreduce_time(&m, CollectiveShape::spread(p + 1), bytes);
        prop_assert!(t2 >= t1, "{t2} < {t1} at p={p}");
    }

    #[test]
    fn algorithms_agree_on_zero_and_one_rank(
        m in machines(),
        bytes in 0u64..(1 << 24),
    ) {
        let s = CollectiveShape::packed(1, m.ranks_per_node);
        for algo in xg_costmodel::ALL_ALGOS {
            prop_assert_eq!(allreduce_time_with(&m, s, bytes, algo), 0.0);
        }
    }

    #[test]
    fn hierarchical_at_least_sync_overhead(
        m in machines(),
        p in 2usize..256,
        bytes in 0u64..(1 << 24),
    ) {
        let shape = CollectiveShape::packed(p, m.ranks_per_node);
        prop_assert!(allreduce_time(&m, shape, bytes) >= m.sync_overhead);
        prop_assert!(alltoall_time(&m, shape, bytes) >= m.sync_overhead);
    }

    #[test]
    fn alltoall_volume_dominates_at_scale(
        m in machines(),
        p in 2usize..64,
        bytes in (1u64 << 20)..(1 << 28),
    ) {
        // Doubling the volume at fixed p must at least add the extra
        // wire time of the remote fraction on the slowest path.
        let shape = CollectiveShape::packed(p, m.ranks_per_node);
        let t1 = alltoall_time(&m, shape, bytes);
        let t2 = alltoall_time(&m, shape, 2 * bytes);
        prop_assert!(t2 > t1);
        prop_assert!(t2 < 2.5 * t1 + 1e-3, "superlinear volume scaling: {t1} -> {t2}");
    }
}
