//! Stress tests: many communicators, deep collective sequences, and
//! interleaved op mixes — the regimes where epoch or staging bugs would
//! surface as deadlocks or crosstalk.

use xg_comm::World;
use xg_linalg::Complex64;

#[test]
fn deep_collective_sequence_stays_ordered() {
    // 1000 back-to-back AllReduces: every round's result depends on the
    // previous, so any epoch slip corrupts the value immediately.
    let p = 4;
    let rounds = 1000;
    let out = World::new(p).run(|c| {
        let mut v = vec![1.0f64];
        for _ in 0..rounds {
            c.all_reduce_sum_f64(&mut v);
            v[0] /= p as f64; // back to 1.0 if the sum was correct
        }
        v[0]
    });
    for v in out {
        assert!((v - 1.0).abs() < 1e-9, "drift after {rounds} rounds: {v}");
    }
}

#[test]
fn many_simultaneous_communicators() {
    // 16 ranks split into 8 pairs, each pair hammering its own slot while
    // the world interleaves barriers: no crosstalk, no deadlock.
    let p = 16;
    let out = World::new(p).run(|c| {
        let pair = c.split((c.rank() / 2) as u64, c.rank() as u64, "pair");
        let mut acc = 0.0;
        for round in 0..50 {
            let mut v = vec![(c.rank() + round) as f64];
            pair.all_reduce_sum_f64(&mut v);
            acc += v[0];
            if round % 10 == 0 {
                c.barrier();
            }
        }
        acc
    });
    for (rank, acc) in out.into_iter().enumerate() {
        let partner = rank ^ 1;
        let expect: f64 =
            (0..50).map(|r| (rank + r) as f64 + (partner + r) as f64).sum();
        assert_eq!(acc, expect, "rank {rank}");
    }
}

#[test]
fn mixed_op_kinds_interleaved() {
    // Alternate AllReduce / AllToAll / Broadcast / AllGather on one
    // communicator: heterogeneous rounds must not confuse the slot.
    let p = 3;
    let out = World::new(p).run(|c| {
        let mut checksum = 0.0f64;
        for round in 0..40u64 {
            match round % 4 {
                0 => {
                    let mut v = vec![1.0f64; 16];
                    c.all_reduce_sum_f64(&mut v);
                    checksum += v[0];
                }
                1 => {
                    let send: Vec<Vec<u32>> =
                        (0..p).map(|j| vec![(c.rank() * p + j) as u32]).collect();
                    let recv = c.all_to_all_v(send);
                    checksum += recv.iter().map(|b| b[0] as f64).sum::<f64>();
                }
                2 => {
                    let v = if c.rank() == (round as usize) % p {
                        Some(round as f64)
                    } else {
                        None
                    };
                    checksum += c.broadcast((round as usize) % p, v);
                }
                _ => {
                    let g = c.all_gather(&[c.rank() as u8]);
                    checksum += g.len() as f64;
                }
            }
        }
        checksum
    });
    // All ranks compute identical checksums for the symmetric ops... the
    // AllToAll term differs per rank; just require determinism by running
    // twice.
    let out2 = World::new(p).run(|c| {
        let mut checksum = 0.0f64;
        for round in 0..40u64 {
            match round % 4 {
                0 => {
                    let mut v = vec![1.0f64; 16];
                    c.all_reduce_sum_f64(&mut v);
                    checksum += v[0];
                }
                1 => {
                    let send: Vec<Vec<u32>> =
                        (0..p).map(|j| vec![(c.rank() * p + j) as u32]).collect();
                    let recv = c.all_to_all_v(send);
                    checksum += recv.iter().map(|b| b[0] as f64).sum::<f64>();
                }
                2 => {
                    let v = if c.rank() == (round as usize) % p {
                        Some(round as f64)
                    } else {
                        None
                    };
                    checksum += c.broadcast((round as usize) % p, v);
                }
                _ => {
                    let g = c.all_gather(&[c.rank() as u8]);
                    checksum += g.len() as f64;
                }
            }
        }
        checksum
    });
    assert_eq!(out, out2);
}

#[test]
fn large_payload_alltoall() {
    // 4 ranks × 1 MiB blocks: exercises the staging paths with real volume.
    let p = 4;
    let n = 65536; // complex elements per block = 1 MiB
    let out = World::new(p).run(|c| {
        let send: Vec<Vec<Complex64>> = (0..p)
            .map(|j| vec![Complex64::new(c.rank() as f64, j as f64); n])
            .collect();
        let recv = c.all_to_all_v(send);
        recv.iter()
            .enumerate()
            .all(|(src, b)| {
                b.len() == n && b[0] == Complex64::new(src as f64, c.rank() as f64)
            })
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn repeated_worlds_do_not_leak_state() {
    // Creating and tearing down many worlds must be clean (no global
    // statics shared between them).
    for trial in 0..20 {
        let out = World::new(3).run(|c| {
            let mut v = vec![trial as f64];
            c.all_reduce_sum_f64(&mut v);
            v[0]
        });
        assert_eq!(out, vec![3.0 * trial as f64; 3]);
    }
}
