//! Fault-injection coverage across the collective surface.
//!
//! Every blocking operation must surface a typed [`CommError`] on every
//! surviving rank when a peer crashes or stalls — never hang, never
//! poison-panic (poisoning is reserved for real bugs, i.e. untyped
//! panics). The proptest at the bottom drives the whole stack with a
//! seeded random failure point and asserts the no-deadlock guarantee the
//! degraded-mode runner builds on.

use proptest::prelude::*;
use std::time::Duration;
use xg_comm::{CommError, FaultKind, FaultPlan, FaultSpec, OpKind, RankOutcome, World};

const DEADLINE: Duration = Duration::from_secs(5);

/// Run `f` in a 4-rank world where rank 2 crashes at its `at_op`-th
/// operation, and return each rank's outcome.
fn crash_world<R: Send>(
    at_op: u64,
    f: impl Fn(xg_comm::Communicator) -> Result<R, CommError> + Send + Sync,
) -> Vec<RankOutcome<R>> {
    World::new(4)
        .with_deadline(DEADLINE)
        .with_fault_plan(FaultPlan::crash(2, at_op))
        .run_fallible(f)
        .into_iter()
        .map(|(o, _)| o)
        .collect()
}

/// Every rank must report the crashed peer (rank 2) — typed, no hang.
fn assert_all_see_rank2_failed<R>(outcomes: &[RankOutcome<R>]) {
    assert_eq!(outcomes.len(), 4);
    for (r, o) in outcomes.iter().enumerate() {
        match o.err() {
            Some(CommError::PeerFailed { rank, .. }) => {
                assert_eq!(*rank, 2, "rank {r} blamed the wrong peer")
            }
            other => panic!("rank {r}: expected PeerFailed{{rank: 2}}, got {other:?}"),
        }
    }
}

#[test]
fn crash_surfaces_in_all_gather() {
    let out = crash_world(1, |c| {
        c.try_barrier()?; // op 0 everywhere; rank 2 dies at op 1
        let g = c.try_all_gather(&[c.rank()])?;
        Ok(g.len())
    });
    assert_all_see_rank2_failed(&out);
}

#[test]
fn crash_surfaces_in_all_to_all_v() {
    let out = crash_world(1, |c| {
        c.try_barrier()?;
        let parts: Vec<Vec<u64>> = (0..c.size()).map(|d| vec![(c.rank() * d) as u64]).collect();
        let got = c.try_all_to_all_v(parts)?;
        Ok(got.len())
    });
    assert_all_see_rank2_failed(&out);
}

#[test]
fn crash_surfaces_in_broadcast() {
    let out = crash_world(1, |c| {
        c.try_barrier()?;
        let v = c.try_broadcast(0, if c.rank() == 0 { Some(41u64) } else { None })?;
        Ok(v)
    });
    assert_all_see_rank2_failed(&out);
}

#[test]
fn crash_surfaces_in_reduce_scatter() {
    let out = crash_world(1, |c| {
        c.try_barrier()?;
        let buf = vec![1.0f64; 4];
        let counts = vec![1usize; 4];
        let mine = c.try_reduce_scatter_sum_f64(&buf, &counts)?;
        Ok(mine.len())
    });
    assert_all_see_rank2_failed(&out);
}

#[test]
fn crash_surfaces_in_sendrecv() {
    let out = crash_world(1, |c| {
        c.try_barrier()?;
        // Pairwise exchange 0<->1, 2<->3: ranks 0 and 1 complete their
        // exchange; rank 3's partner is dead.
        let peer = c.rank() ^ 1;
        let got = c.try_sendrecv(peer, 7, c.rank() as u64)?;
        Ok(got)
    });
    // Rank 3 must fail with the dead peer; 0 and 1 exchanged before any
    // dependence on rank 2 and may succeed or fail depending on timing of
    // the fail-all broadcast — but must never hang (run_fallible returned).
    match out[3].err() {
        Some(CommError::PeerFailed { rank, .. }) => assert_eq!(*rank, 2),
        Some(CommError::Timeout { .. }) => {}
        None => panic!("rank 3 cannot complete a sendrecv with a dead peer"),
    }
    match out[2].err() {
        Some(CommError::PeerFailed { rank, .. }) => assert_eq!(*rank, 2),
        other => panic!("crashed rank must self-report: {other:?}"),
    }
}

#[test]
fn crash_surfaces_in_all_reduce_variants() {
    let out = crash_world(1, |c| {
        c.try_barrier()?;
        let mut f = [c.rank() as f64];
        c.try_all_reduce_sum_f64(&mut f)?;
        let mut m = [c.rank() as f64];
        c.try_all_reduce_max_f64(&mut m)?;
        Ok(f[0] + m[0])
    });
    assert_all_see_rank2_failed(&out);
}

#[test]
fn crash_surfaces_in_gather_and_scatter() {
    let out = crash_world(1, |c| {
        c.try_barrier()?;
        let g = c.try_gather(0, &[c.rank() as u64])?;
        let s = c.try_scatter(
            0,
            if c.rank() == 0 { Some((0..c.size() as u64).map(|i| vec![i]).collect()) } else { None },
        )?;
        Ok((g.len(), s.len()))
    });
    assert_all_see_rank2_failed(&out);
}

#[test]
fn stall_past_deadline_times_out_survivors() {
    // Rank 1 goes silent for 10× the deadline; peers must give up with a
    // typed error naming the stalled/failed rank rather than wait.
    let deadline = Duration::from_millis(150);
    let outcomes: Vec<_> = World::new(3)
        .with_deadline(deadline)
        .with_fault_plan(
            FaultPlan::new().with(FaultSpec { rank: 1, at_op: 1, kind: FaultKind::Stall(1500) }),
        )
        .run_fallible(|c| {
            c.try_barrier()?;
            c.try_barrier()?;
            Ok(c.rank())
        })
        .into_iter()
        .map(|(o, _)| o)
        .collect();
    for (r, o) in outcomes.iter().enumerate() {
        if r == 1 {
            continue; // the stalled rank wakes into an already-failed world
        }
        match o.err() {
            Some(CommError::PeerFailed { rank, .. }) => assert_eq!(*rank, 1),
            Some(CommError::Timeout { missing, .. }) => assert!(missing.contains(&1)),
            None => panic!("rank {r} must not complete past a stalled peer"),
        }
    }
}

#[test]
fn delay_under_deadline_is_harmless_and_traced() {
    let results = World::new(2)
        .with_deadline(DEADLINE)
        .with_fault_plan(
            FaultPlan::new().with(FaultSpec { rank: 0, at_op: 1, kind: FaultKind::Delay(30) }),
        )
        .run_fallible(|c| {
            c.try_barrier()?;
            let g = c.try_all_gather(&[c.rank()])?;
            Ok(g.concat())
        });
    for (r, (o, trace)) in results.into_iter().enumerate() {
        assert_eq!(o.ok().expect("delay must not fail the run"), vec![0, 1]);
        let faults = trace.iter().filter(|t| t.op == OpKind::Fault).count();
        assert_eq!(faults, usize::from(r == 0), "only the delayed rank logs the fault");
    }
}

#[test]
fn recv_from_crashed_peer_fails_typed() {
    let outcomes: Vec<_> = World::new(2)
        .with_deadline(Duration::from_millis(200))
        .with_fault_plan(FaultPlan::crash(0, 0))
        .run_fallible(|c| {
            if c.rank() == 1 {
                let v: u64 = c.try_recv(0, 9)?;
                Ok(v)
            } else {
                c.try_send(1, 9, 7u64)?;
                Ok(0)
            }
        })
        .into_iter()
        .map(|(o, _)| o)
        .collect();
    match outcomes[1].err() {
        Some(CommError::PeerFailed { rank, .. }) => assert_eq!(*rank, 0),
        Some(CommError::Timeout { .. }) => {}
        None => panic!("recv from a dead rank must not succeed"),
    }
}

#[test]
fn crashed_rank_self_reports_with_op_index() {
    let out = crash_world(3, |c| {
        for _ in 0..8 {
            c.try_barrier()?;
        }
        Ok(())
    });
    match out[2].err() {
        Some(CommError::PeerFailed { rank, detail }) => {
            assert_eq!(*rank, 2);
            assert!(detail.contains("op 3"), "detail should name the op index: {detail}");
        }
        other => panic!("expected self-reported crash, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    /// The no-deadlock guarantee: for ANY seeded single-rank crash point,
    /// every rank of a world running a mixed collective workload returns a
    /// RankOutcome within the deadline — typed failure or success, never a
    /// hang (a hang would blow the test harness's clock, and the deadline
    /// bounds every wait inside).
    #[test]
    fn random_crash_never_deadlocks(seed in 0u64..5000) {
        let plan = FaultPlan::seeded_crash(seed, 4, 12);
        let crashed = plan.specs()[0].rank;
        let outcomes: Vec<_> = World::new(4)
            .with_deadline(Duration::from_secs(2))
            .with_fault_plan(plan)
            .run_fallible(|c| {
                // A workload touching every collective family.
                c.try_barrier()?;
                let mut acc = [c.rank() as f64];
                c.try_all_reduce_sum_f64(&mut acc)?;
                let g = c.try_all_gather(&[c.rank() as u64])?;
                let parts: Vec<Vec<u64>> =
                    (0..c.size()).map(|d| vec![(c.rank() + d) as u64]).collect();
                let a2a = c.try_all_to_all_v(parts)?;
                let b = c.try_broadcast(0, if c.rank() == 0 { Some(1u8) } else { None })?;
                c.try_barrier()?;
                Ok(acc[0] + g.len() as f64 + a2a.len() as f64 + b as f64)
            })
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        // All four ranks returned (no hang). The crashed rank must report
        // a typed failure naming itself.
        prop_assert_eq!(outcomes.len(), 4);
        match outcomes[crashed].err() {
            Some(CommError::PeerFailed { rank, .. }) => prop_assert_eq!(*rank, crashed),
            Some(CommError::Timeout { .. }) => {}
            None => {
                // at_op may exceed the ops this workload issues — then the
                // fault never fires and everyone succeeds.
                for o in &outcomes {
                    prop_assert!(o.is_ok());
                }
            }
        }
        // No survivor may be left hanging in an untyped state: outcomes
        // are Ok or Failed, never Panicked.
        for o in &outcomes {
            prop_assert!(!matches!(o, RankOutcome::Panicked(_)));
        }
    }
}
