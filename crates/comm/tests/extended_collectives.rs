//! Tests for gather / scatter / reduce-scatter / sendrecv.

use xg_comm::World;
use xg_linalg::Complex64;

#[test]
fn gather_collects_only_at_root() {
    let out = World::new(4).run(|c| {
        let local = vec![c.rank() as u32; c.rank() + 1];
        c.gather(2, &local)
    });
    for (rank, got) in out.into_iter().enumerate() {
        if rank == 2 {
            assert_eq!(got.len(), 4);
            for (src, blk) in got.into_iter().enumerate() {
                assert_eq!(blk, vec![src as u32; src + 1]);
            }
        } else {
            assert!(got.is_empty());
        }
    }
}

#[test]
fn scatter_delivers_per_rank_blocks() {
    let out = World::new(3).run(|c| {
        let blocks = if c.rank() == 1 {
            Some((0..3).map(|j| vec![j as u16 * 10, j as u16 * 10 + 1]).collect())
        } else {
            None
        };
        c.scatter(1, blocks)
    });
    for (rank, blk) in out.into_iter().enumerate() {
        assert_eq!(blk, vec![rank as u16 * 10, rank as u16 * 10 + 1]);
    }
}

#[test]
fn reduce_scatter_sums_then_splits() {
    let counts = [2usize, 1, 3];
    let out = World::new(3).run(|c| {
        // Every rank contributes [r, r, r, r, r, r] scaled by position.
        let buf: Vec<f64> = (0..6).map(|i| (c.rank() * 6 + i) as f64).collect();
        c.reduce_scatter_sum_f64(&buf, &counts)
    });
    // Summed buffer is [0+6+12, 1+7+13, ...] = [18, 21, 24, 27, 30, 33].
    assert_eq!(out[0], vec![18.0, 21.0]);
    assert_eq!(out[1], vec![24.0]);
    assert_eq!(out[2], vec![27.0, 30.0, 33.0]);
}

#[test]
fn reduce_scatter_complex_is_bitwise_allreduce_slice() {
    // The property the reduce-scatter field solve rests on: each rank's
    // kept block must be bitwise identical to the same slice of the
    // fused-AllReduce result, including under ragged counts.
    let counts = [3usize, 1, 4];
    let out = World::new(3).run(|c| {
        let buf: Vec<Complex64> = (0..8)
            .map(|i| {
                let x = ((i * 13 + c.rank() * 7 + 1) as f64).sin();
                Complex64::new(x, x * 0.5 - c.rank() as f64)
            })
            .collect();
        let rs = c.reduce_scatter_sum_complex(&buf, &counts);
        let mut ar = buf.clone();
        c.all_reduce_sum_complex(&mut ar);
        (rs, ar)
    });
    let full = &out[0].1;
    let mut start = 0;
    for (rank, (rs, ar)) in out.iter().enumerate() {
        assert_eq!(ar, full, "AllReduce result must agree on every rank");
        assert_eq!(rs.as_slice(), &full[start..start + counts[rank]]);
        start += counts[rank];
    }
}

#[test]
#[should_panic(expected = "counts must tile")]
fn reduce_scatter_complex_validates_counts() {
    World::new(2).run(|c| {
        let buf = vec![Complex64::ZERO; 5];
        c.reduce_scatter_sum_complex(&buf, &[2, 2]);
    });
}

#[test]
fn all_gather_into_flat_concatenates_ragged_blocks() {
    let out = World::new(3).run(|c| {
        let local: Vec<u32> = (0..c.rank() + 1).map(|i| (c.rank() * 10 + i) as u32).collect();
        c.all_gather_into_flat(&local)
    });
    for flat in out {
        assert_eq!(flat, vec![0, 10, 11, 20, 21, 22]);
    }
}

#[test]
fn reduce_scatter_then_allgather_rebuilds_allreduce() {
    // The two-call algorithm the topology can select in place of one fused
    // AllReduce: RS + flat allgather must rebuild the full reduced buffer
    // bitwise on every rank.
    let counts = [2usize, 5, 1, 4];
    let out = World::new(4).run(|c| {
        let buf: Vec<Complex64> = (0..12)
            .map(|i| Complex64::new((i + c.rank()) as f64, (i * c.rank()) as f64))
            .collect();
        let mine = c.reduce_scatter_sum_complex(&buf, &counts);
        let rebuilt = c.all_gather_into_flat(&mine);
        let mut ar = buf.clone();
        c.all_reduce_sum_complex(&mut ar);
        (rebuilt, ar)
    });
    for (rebuilt, ar) in out {
        assert_eq!(rebuilt, ar);
    }
}

#[test]
fn sendrecv_swaps_pairwise() {
    let out = World::new(4).run(|c| {
        let peer = c.rank() ^ 1; // 0<->1, 2<->3
        c.sendrecv(peer, 5, c.rank() as u64 * 100)
    });
    assert_eq!(out, vec![100, 0, 300, 200]);
}

#[test]
#[should_panic(expected = "counts must tile")]
fn reduce_scatter_validates_counts() {
    World::new(2).run(|c| {
        let buf = vec![0.0f64; 5];
        c.reduce_scatter_sum_f64(&buf, &[2, 2]);
    });
}

#[test]
fn reduce_scatter_matches_allreduce_then_slice() {
    let counts = [3usize, 3];
    let out = World::new(2).run(|c| {
        let buf: Vec<f64> = (0..6).map(|i| (i as f64 + 1.0) * (c.rank() as f64 + 1.0)).collect();
        let rs = c.reduce_scatter_sum_f64(&buf, &counts);
        let mut ar = buf.clone();
        c.all_reduce_sum_f64(&mut ar);
        let start = c.rank() * 3;
        (rs, ar[start..start + 3].to_vec())
    });
    for (rs, slice) in out {
        assert_eq!(rs, slice);
    }
}
