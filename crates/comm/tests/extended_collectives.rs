//! Tests for gather / scatter / reduce-scatter / sendrecv.

use xg_comm::World;

#[test]
fn gather_collects_only_at_root() {
    let out = World::new(4).run(|c| {
        let local = vec![c.rank() as u32; c.rank() + 1];
        c.gather(2, &local)
    });
    for (rank, got) in out.into_iter().enumerate() {
        if rank == 2 {
            assert_eq!(got.len(), 4);
            for (src, blk) in got.into_iter().enumerate() {
                assert_eq!(blk, vec![src as u32; src + 1]);
            }
        } else {
            assert!(got.is_empty());
        }
    }
}

#[test]
fn scatter_delivers_per_rank_blocks() {
    let out = World::new(3).run(|c| {
        let blocks = if c.rank() == 1 {
            Some((0..3).map(|j| vec![j as u16 * 10, j as u16 * 10 + 1]).collect())
        } else {
            None
        };
        c.scatter(1, blocks)
    });
    for (rank, blk) in out.into_iter().enumerate() {
        assert_eq!(blk, vec![rank as u16 * 10, rank as u16 * 10 + 1]);
    }
}

#[test]
fn reduce_scatter_sums_then_splits() {
    let counts = [2usize, 1, 3];
    let out = World::new(3).run(|c| {
        // Every rank contributes [r, r, r, r, r, r] scaled by position.
        let buf: Vec<f64> = (0..6).map(|i| (c.rank() * 6 + i) as f64).collect();
        c.reduce_scatter_sum_f64(&buf, &counts)
    });
    // Summed buffer is [0+6+12, 1+7+13, ...] = [18, 21, 24, 27, 30, 33].
    assert_eq!(out[0], vec![18.0, 21.0]);
    assert_eq!(out[1], vec![24.0]);
    assert_eq!(out[2], vec![27.0, 30.0, 33.0]);
}

#[test]
fn sendrecv_swaps_pairwise() {
    let out = World::new(4).run(|c| {
        let peer = c.rank() ^ 1; // 0<->1, 2<->3
        c.sendrecv(peer, 5, c.rank() as u64 * 100)
    });
    assert_eq!(out, vec![100, 0, 300, 200]);
}

#[test]
#[should_panic(expected = "counts must tile")]
fn reduce_scatter_validates_counts() {
    World::new(2).run(|c| {
        let buf = vec![0.0f64; 5];
        c.reduce_scatter_sum_f64(&buf, &[2, 2]);
    });
}

#[test]
fn reduce_scatter_matches_allreduce_then_slice() {
    let counts = [3usize, 3];
    let out = World::new(2).run(|c| {
        let buf: Vec<f64> = (0..6).map(|i| (i as f64 + 1.0) * (c.rank() as f64 + 1.0)).collect();
        let rs = c.reduce_scatter_sum_f64(&buf, &counts);
        let mut ar = buf.clone();
        c.all_reduce_sum_f64(&mut ar);
        let start = c.rank() * 3;
        (rs, ar[start..start + 3].to_vec())
    });
    for (rs, slice) in out {
        assert_eq!(rs, slice);
    }
}
