//! Integration tests for the collective operations across real threads.

use std::time::Duration;
use xg_comm::{CommError, FaultKind, FaultPlan, FaultSpec, OpKind, World};
use xg_linalg::Complex64;

#[test]
fn all_gather_returns_rank_ordered_blocks() {
    let out = World::new(5).run(|c| {
        let local = vec![c.rank() as u32 * 10, c.rank() as u32 * 10 + 1];
        c.all_gather(&local)
    });
    for blocks in out {
        assert_eq!(blocks.len(), 5);
        for (r, b) in blocks.iter().enumerate() {
            assert_eq!(b, &vec![r as u32 * 10, r as u32 * 10 + 1]);
        }
    }
}

#[test]
fn all_reduce_sum_matches_serial_sum() {
    let n = 37;
    let p = 6;
    let out = World::new(p).run(|c| {
        let mut buf: Vec<f64> =
            (0..n).map(|i| (i as f64 + 1.0) * (c.rank() as f64 + 1.0)).collect();
        c.all_reduce_sum_f64(&mut buf);
        buf
    });
    let rank_sum: f64 = (1..=p as i64).map(|r| r as f64).sum();
    for buf in &out {
        for (i, v) in buf.iter().enumerate() {
            assert!((v - (i as f64 + 1.0) * rank_sum).abs() < 1e-12);
        }
    }
    // Every rank received the same (deterministic) result, bitwise.
    for buf in &out[1..] {
        assert_eq!(buf, &out[0]);
    }
}

#[test]
fn all_reduce_complex_and_max() {
    let out = World::new(4).run(|c| {
        let mut z = vec![Complex64::new(1.0, c.rank() as f64)];
        c.all_reduce_sum_complex(&mut z);
        let mut m = vec![c.rank() as f64, -(c.rank() as f64)];
        c.all_reduce_max_f64(&mut m);
        (z[0], m)
    });
    for (z, m) in out {
        assert_eq!(z, Complex64::new(4.0, 6.0));
        assert_eq!(m, vec![3.0, 0.0]);
    }
}

#[test]
fn all_to_all_v_delivers_correct_blocks() {
    let p = 4;
    let out = World::new(p).run(|c| {
        // Rank r sends to rank j a block [r*100+j; r+j+1] (variable sizes).
        let send: Vec<Vec<u32>> = (0..p)
            .map(|j| vec![(c.rank() * 100 + j) as u32; c.rank() + j + 1])
            .collect();
        c.all_to_all_v(send)
    });
    for (me, recv) in out.into_iter().enumerate() {
        assert_eq!(recv.len(), p);
        for (src, blk) in recv.into_iter().enumerate() {
            assert_eq!(blk, vec![(src * 100 + me) as u32; src + me + 1]);
        }
    }
}

#[test]
fn all_to_all_v_with_empty_blocks() {
    let out = World::new(3).run(|c| {
        let send: Vec<Vec<u8>> = (0..3)
            .map(|j| if j == c.rank() { vec![] } else { vec![c.rank() as u8] })
            .collect();
        c.all_to_all_v(send)
    });
    for (me, recv) in out.into_iter().enumerate() {
        for (src, blk) in recv.into_iter().enumerate() {
            if src == me {
                assert!(blk.is_empty());
            } else {
                assert_eq!(blk, vec![src as u8]);
            }
        }
    }
}

#[test]
fn all_to_all_v_take_matches_clone_variant() {
    let p = 4;
    let out = World::new(p).run(|c| {
        let send: Vec<Vec<u32>> = (0..p)
            .map(|j| vec![(c.rank() * 100 + j) as u32; c.rank() + j + 1])
            .collect();
        let cloned = c.all_to_all_v(send.clone());
        let taken = c.all_to_all_v_take(send);
        (cloned, taken)
    });
    for (me, (cloned, taken)) in out.into_iter().enumerate() {
        assert_eq!(cloned, taken);
        for (src, blk) in taken.into_iter().enumerate() {
            assert_eq!(blk, vec![(src * 100 + me) as u32; src + me + 1]);
        }
    }
}

#[test]
fn all_to_all_v_take_moves_non_clone_payloads() {
    // The take variant only needs T: Send — exchange a type without Clone.
    #[derive(Debug, PartialEq)]
    struct Payload(usize);
    let p = 3;
    let out = World::new(p).run(|c| {
        let send: Vec<Vec<Payload>> =
            (0..p).map(|j| vec![Payload(c.rank() * 10 + j)]).collect();
        c.all_to_all_v_take(send)
    });
    for (me, recv) in out.into_iter().enumerate() {
        for (src, blk) in recv.into_iter().enumerate() {
            assert_eq!(blk, vec![Payload(src * 10 + me)]);
        }
    }
}

#[test]
fn all_to_all_v_take_recycles_recv_capacity() {
    // Received blocks are owned: clearing and refilling them as the next
    // round's send buffers must round-trip correctly.
    let p = 3;
    let out = World::new(p).run(|c| {
        let send: Vec<Vec<u64>> = (0..p).map(|j| vec![(c.rank() + j) as u64; 8]).collect();
        let mut recv = c.all_to_all_v_take(send);
        for (j, blk) in recv.iter_mut().enumerate() {
            blk.clear();
            blk.extend(std::iter::repeat_n((c.rank() * 1000 + j) as u64, 4));
        }
        c.all_to_all_v_take(recv)
    });
    for (me, recv) in out.into_iter().enumerate() {
        for (src, blk) in recv.into_iter().enumerate() {
            assert_eq!(blk, vec![(src * 1000 + me) as u64; 4]);
        }
    }
}

#[test]
fn broadcast_from_each_root() {
    for root in 0..3 {
        let out = World::new(3).run(|c| {
            let v = if c.rank() == root { Some(vec![root as u64; 4]) } else { None };
            c.broadcast(root, v)
        });
        for v in out {
            assert_eq!(v, vec![root as u64; 4]);
        }
    }
}

#[test]
fn split_builds_correct_subgroups() {
    // 2x3 grid: color by row (i2 = rank / 3), key by column.
    let out = World::new(6).run(|c| {
        let i1 = c.rank() % 3;
        let i2 = c.rank() / 3;
        let row = c.split(i2 as u64, i1 as u64, "row");
        let col = c.split(i1 as u64, i2 as u64, "col");
        // Row collective: sum of i1 within the row.
        let mut v = vec![i1 as f64];
        row.all_reduce_sum_f64(&mut v);
        // Col collective: sum of i2 within the column.
        let mut w = vec![i2 as f64];
        col.all_reduce_sum_f64(&mut w);
        (row.rank(), row.size(), v[0], col.rank(), col.size(), w[0])
    });
    for (rank, (rr, rs, rsum, cr, cs, csum)) in out.into_iter().enumerate() {
        let i1 = rank % 3;
        let i2 = rank / 3;
        assert_eq!((rr, rs), (i1, 3), "row comm rank/size");
        assert_eq!(rsum, 3.0); // 0+1+2
        assert_eq!((cr, cs), (i2, 2), "col comm rank/size");
        assert_eq!(csum, 1.0); // 0+1
    }
}

#[test]
fn disjoint_communicators_do_not_interfere() {
    // Two groups run different numbers of collectives concurrently; if the
    // groups shared state this would deadlock or mix results.
    let out = World::new(6).run(|c| {
        let color = (c.rank() % 2) as u64;
        let g = c.split(color, c.rank() as u64, "half");
        let rounds = if color == 0 { 50 } else { 7 };
        let mut acc = 0.0;
        for _ in 0..rounds {
            let mut v = vec![1.0];
            g.all_reduce_sum_f64(&mut v);
            acc += v[0];
        }
        acc
    });
    for (rank, acc) in out.into_iter().enumerate() {
        let expect = if rank % 2 == 0 { 50.0 * 3.0 } else { 7.0 * 3.0 };
        assert_eq!(acc, expect);
    }
}

#[test]
fn nested_split_of_split() {
    // Split the world in half, then split each half again: sizes 8 -> 4 -> 2.
    let out = World::new(8).run(|c| {
        let half = c.split((c.rank() / 4) as u64, c.rank() as u64, "half");
        let quarter = half.split((half.rank() / 2) as u64, half.rank() as u64, "quarter");
        let mut v = vec![c.rank() as f64];
        quarter.all_reduce_sum_f64(&mut v);
        (quarter.size(), v[0])
    });
    for (rank, (qs, sum)) in out.into_iter().enumerate() {
        assert_eq!(qs, 2);
        let base = (rank / 2) * 2;
        assert_eq!(sum, (base + base + 1) as f64);
    }
}

#[test]
fn send_recv_ring() {
    let p = 5;
    let out = World::new(p).run(|c| {
        let next = (c.rank() + 1) % p;
        let prev = (c.rank() + p - 1) % p;
        c.send(next, 0, vec![c.rank() as u16; 3]);
        c.recv::<Vec<u16>>(prev, 0)
    });
    for (rank, v) in out.into_iter().enumerate() {
        let prev = (rank + p - 1) % p;
        assert_eq!(v, vec![prev as u16; 3]);
    }
}

#[test]
fn send_recv_isolated_between_split_comms() {
    // Same (src rank, tag) in two different communicators must not collide.
    let out = World::new(4).run(|c| {
        let g = c.split((c.rank() % 2) as u64, c.rank() as u64, "pair");
        // Within each pair: rank 0 sends to rank 1 with tag 9.
        if g.rank() == 0 {
            c.barrier();
            g.send(1, 9, c.rank() as u32 + 1000);
            0
        } else {
            c.barrier();
            g.recv::<u32>(0, 9)
        }
    });
    // Colors: {0,2} and {1,3}; pair-rank 0 is the lower world rank, so the
    // receivers are world ranks 2 and 3.
    assert_eq!(out, vec![0, 0, 1000, 1001]);
}

#[test]
fn traffic_log_captures_ops_per_phase() {
    let out = World::new(4).run_with_logs(|c| {
        c.set_phase("str");
        let mut v = vec![0.0; 8];
        c.all_reduce_sum_f64(&mut v);
        c.all_reduce_sum_f64(&mut v);
        c.set_phase("coll");
        let send: Vec<Vec<f64>> = (0..4).map(|_| vec![0.0; 16]).collect();
        let _ = c.all_to_all_v(send);
    });
    for (_, log) in out {
        let ar: Vec<_> = log.iter().filter(|r| r.op == OpKind::AllReduce).collect();
        assert_eq!(ar.len(), 2);
        assert!(ar.iter().all(|r| r.phase == "str" && r.participants == 4 && r.bytes == 64));
        let a2a: Vec<_> = log.iter().filter(|r| r.op == OpKind::AllToAll).collect();
        assert_eq!(a2a.len(), 1);
        assert_eq!(a2a[0].phase, "coll");
        assert_eq!(a2a[0].bytes, 4 * 16 * 8);
    }
}

// --- Nonblocking handles under fault injection -------------------------
//
// A crash, stall, or delay firing between `start` and `wait` must surface
// as a typed CommError from `try_wait` (or complete harmlessly for a
// bounded delay) — never a hang. Deadlines bound every internal wait.

#[test]
fn nonblocking_allreduce_crash_between_start_and_wait_is_typed() {
    let outcomes: Vec<_> = World::new(4)
        .with_deadline(Duration::from_secs(5))
        .with_fault_plan(FaultPlan::crash(2, 1))
        .run_fallible(|c| {
            c.try_barrier()?; // op 0 everywhere; rank 2 dies at op 1
            let pending = c.start_all_reduce_sum_complex(vec![Complex64::new(1.0, 0.0); 8]);
            let buf = pending.try_wait()?;
            Ok(buf.len())
        })
        .into_iter()
        .map(|(o, _)| o)
        .collect();
    for (r, o) in outcomes.iter().enumerate() {
        match o.err() {
            Some(CommError::PeerFailed { rank, .. }) => assert_eq!(*rank, 2),
            Some(CommError::Timeout { missing, .. }) => assert!(missing.contains(&2)),
            None => panic!("rank {r} must not complete an allreduce past a crashed peer"),
        }
    }
}

#[test]
fn nonblocking_transpose_crash_between_start_and_wait_is_typed() {
    let outcomes: Vec<_> = World::new(4)
        .with_deadline(Duration::from_secs(5))
        .with_fault_plan(FaultPlan::crash(2, 1))
        .run_fallible(|c| {
            c.try_barrier()?;
            let send: Vec<Vec<u64>> =
                (0..c.size()).map(|j| vec![(c.rank() + j) as u64]).collect();
            let pending = c.start_all_to_all_v_take(send);
            let recv = pending.try_wait()?;
            Ok(recv.len())
        })
        .into_iter()
        .map(|(o, _)| o)
        .collect();
    for (r, o) in outcomes.iter().enumerate() {
        match o.err() {
            Some(CommError::PeerFailed { rank, .. }) => assert_eq!(*rank, 2),
            Some(CommError::Timeout { missing, .. }) => assert!(missing.contains(&2)),
            None => panic!("rank {r} must not complete a transpose past a crashed peer"),
        }
    }
}

#[test]
fn nonblocking_stall_past_deadline_times_out_waiters() {
    // Rank 1 stalls 10× the deadline inside the collective its peers have
    // already started; every waiter must get a typed error, not hang.
    let outcomes: Vec<_> = World::new(3)
        .with_deadline(Duration::from_millis(150))
        .with_fault_plan(
            FaultPlan::new().with(FaultSpec { rank: 1, at_op: 1, kind: FaultKind::Stall(1500) }),
        )
        .run_fallible(|c| {
            c.try_barrier()?;
            let pending = c.start_all_reduce_sum_complex(vec![Complex64::ZERO; 4]);
            let buf = pending.try_wait()?;
            Ok(buf.len())
        })
        .into_iter()
        .map(|(o, _)| o)
        .collect();
    for (r, o) in outcomes.iter().enumerate() {
        if r == 1 {
            continue; // the stalled rank wakes into an already-failed world
        }
        match o.err() {
            Some(CommError::PeerFailed { rank, .. }) => assert_eq!(*rank, 1),
            Some(CommError::Timeout { missing, .. }) => assert!(missing.contains(&1)),
            None => panic!("rank {r} must not complete past a stalled peer"),
        }
    }
}

#[test]
fn nonblocking_delay_under_deadline_completes_with_fault_record() {
    let results = World::new(2)
        .with_deadline(Duration::from_secs(5))
        .with_fault_plan(
            FaultPlan::new().with(FaultSpec { rank: 0, at_op: 1, kind: FaultKind::Delay(30) }),
        )
        .run_fallible(|c| {
            c.try_barrier()?;
            let pending = c.start_all_reduce_sum_complex(vec![Complex64::new(1.0, 0.0); 2]);
            pending.try_wait()
        });
    for (r, (o, trace)) in results.into_iter().enumerate() {
        let buf = o.ok().expect("bounded delay must not fail the run");
        assert_eq!(buf, vec![Complex64::new(2.0, 0.0); 2]);
        let faults = trace.iter().filter(|t| t.op == OpKind::Fault).count();
        assert_eq!(faults, usize::from(r == 0), "only the delayed rank logs the fault");
    }
}

#[test]
fn world_sized_one_split() {
    let out = World::new(1).run(|c| {
        let g = c.split(0, 0, "solo");
        let mut v = vec![5.0];
        g.all_reduce_sum_f64(&mut v);
        v[0]
    });
    assert_eq!(out, vec![5.0]);
}
