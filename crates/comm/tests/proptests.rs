//! Property-based tests of the communication substrate: collectives must
//! match their sequential references for arbitrary shapes, sizes and
//! communicator splits.

use proptest::prelude::*;
use xg_comm::World;

proptest! {
    // Thread worlds are relatively expensive; keep case counts moderate.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn allreduce_equals_serial_sum(
        p in 1usize..6,
        data in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 1..40), 1..6),
    ) {
        // Use data[rank % data.len()] as rank's contribution, truncated to
        // the shortest length so all ranks agree.
        let n = data.iter().map(|v| v.len()).min().unwrap();
        let world = World::new(p);
        let out = world.run(|c| {
            let mut buf = data[c.rank() % data.len()][..n].to_vec();
            c.all_reduce_sum_f64(&mut buf);
            buf
        });
        let mut expect = vec![0.0f64; n];
        for r in 0..p {
            for (e, v) in expect.iter_mut().zip(&data[r % data.len()][..n]) {
                *e += v;
            }
        }
        for buf in &out {
            for (a, b) in buf.iter().zip(&expect) {
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
        // Bitwise identical across ranks (deterministic reduction).
        for buf in &out[1..] {
            prop_assert_eq!(buf, &out[0]);
        }
    }

    #[test]
    fn alltoallv_is_a_permutation(
        p in 1usize..6,
        sizes in prop::collection::vec(0usize..7, 36),
    ) {
        // sizes[(src*p + dst) % 36] block elements from src to dst, each
        // tagged with (src, dst, index).
        let world = World::new(p);
        let out = world.run(|c| {
            let src = c.rank();
            let send: Vec<Vec<(usize, usize, usize)>> = (0..p)
                .map(|dst| {
                    let len = sizes[(src * p + dst) % 36];
                    (0..len).map(|i| (src, dst, i)).collect()
                })
                .collect();
            c.all_to_all_v(send)
        });
        for (dst, recv) in out.into_iter().enumerate() {
            prop_assert_eq!(recv.len(), p);
            for (src, blk) in recv.into_iter().enumerate() {
                let len = sizes[(src * p + dst) % 36];
                prop_assert_eq!(blk.len(), len);
                for (i, item) in blk.into_iter().enumerate() {
                    prop_assert_eq!(item, (src, dst, i));
                }
            }
        }
    }

    #[test]
    fn split_partitions_world(p in 1usize..9, colors in prop::collection::vec(0u64..3, 8)) {
        let world = World::new(p);
        let out = world.run(|c| {
            let color = colors[c.rank() % colors.len()];
            let g = c.split(color, c.rank() as u64, "part");
            (color, g.rank(), g.size(), g.members().to_vec())
        });
        // Every color group has consistent membership and covers exactly
        // the ranks claiming that color.
        for color in 0u64..3 {
            let members: Vec<usize> = (0..p)
                .filter(|&r| colors[r % colors.len()] == color)
                .collect();
            for &r in &members {
                let (c0, grank, gsize, gmembers) = &out[r];
                prop_assert_eq!(*c0, color);
                prop_assert_eq!(*gsize, members.len());
                prop_assert_eq!(gmembers, &members);
                prop_assert_eq!(gmembers[*grank], r);
            }
        }
    }

    #[test]
    fn broadcast_from_random_root(p in 1usize..7, root_pick in 0usize..100, val in -1e9f64..1e9) {
        let root = root_pick % p;
        let out = World::new(p).run(|c| {
            let v = if c.rank() == root { Some(val) } else { None };
            c.broadcast(root, v)
        });
        for v in out {
            prop_assert_eq!(v, val);
        }
    }

    #[test]
    fn gather_scatter_roundtrip(p in 1usize..6, seed in 0u64..1000) {
        // Scatter blocks from root, gather them back: identity.
        let root = (seed as usize) % p;
        let blocks: Vec<Vec<u64>> = (0..p)
            .map(|r| (0..(seed as usize + r) % 5).map(|i| seed + (r * 10 + i) as u64).collect())
            .collect();
        let blocks2 = blocks.clone();
        let out = World::new(p).run(move |c| {
            let mine = c.scatter(root, if c.rank() == root { Some(blocks2.clone()) } else { None });
            c.gather(root, &mine)
        });
        prop_assert_eq!(&out[root], &blocks);
    }
}
