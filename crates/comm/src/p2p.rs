//! Point-to-point messaging: per-rank mailboxes with (source, tag) matching.
//!
//! CGYRO's hot paths are collective-only, but a faithful MPI substitute
//! needs send/recv for halo-style exchanges and for the diagnostics
//! gather-to-root paths; the nl phase's neighbour exchanges use it too.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;

type BoxedAny = Box<dyn Any + Send>;

/// A message in flight.
struct Envelope {
    src: usize,
    tag: u64,
    payload: BoxedAny,
}

/// One rank's incoming mailbox.
pub struct Mailbox {
    queue: Mutex<MailboxState>,
    cv: Condvar,
}

#[derive(Default)]
struct MailboxState {
    messages: VecDeque<Envelope>,
    poisoned: bool,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// Empty mailbox.
    pub fn new() -> Self {
        Self { queue: Mutex::new(MailboxState::default()), cv: Condvar::new() }
    }

    /// Mark poisoned (a peer died); wakes blocked receivers, which panic.
    pub fn poison(&self) {
        self.queue.lock().poisoned = true;
        self.cv.notify_all();
    }

    /// Deliver a message (called by the sender's thread).
    pub fn deliver(&self, src: usize, tag: u64, payload: BoxedAny) {
        self.queue.lock().messages.push_back(Envelope { src, tag, payload });
        self.cv.notify_all();
    }

    /// Blocking receive of the first message matching `(src, tag)`.
    /// Messages from the same source with the same tag are received in send
    /// order (MPI's non-overtaking guarantee).
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.messages.iter().position(|e| e.src == src && e.tag == tag) {
                let env = q.messages.remove(pos).expect("position just found");
                return *env
                    .payload
                    .downcast::<T>()
                    .expect("point-to-point type mismatch between send and recv");
            }
            assert!(!q.poisoned, "recv aborted: another rank panicked");
            self.cv.wait(&mut q);
        }
    }

    /// Non-blocking probe: is a matching message waiting?
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.queue.lock().messages.iter().any(|e| e.src == src && e.tag == tag)
    }

    /// Number of queued messages (all sources/tags).
    pub fn pending(&self) -> usize {
        self.queue.lock().messages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn send_then_recv() {
        let mb = Mailbox::new();
        mb.deliver(3, 7, Box::new(vec![1.0f64, 2.0]));
        assert!(mb.probe(3, 7));
        assert!(!mb.probe(3, 8));
        let v: Vec<f64> = mb.recv(3, 7);
        assert_eq!(v, vec![1.0, 2.0]);
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = thread::spawn(move || mb2.recv::<u32>(0, 1));
        thread::sleep(std::time::Duration::from_millis(20));
        mb.deliver(0, 1, Box::new(99u32));
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn tag_and_source_matching_skips_nonmatching() {
        let mb = Mailbox::new();
        mb.deliver(1, 5, Box::new(10u8));
        mb.deliver(2, 5, Box::new(20u8));
        mb.deliver(1, 6, Box::new(30u8));
        assert_eq!(mb.recv::<u8>(2, 5), 20);
        assert_eq!(mb.recv::<u8>(1, 6), 30);
        assert_eq!(mb.recv::<u8>(1, 5), 10);
    }

    #[test]
    fn non_overtaking_same_src_tag() {
        let mb = Mailbox::new();
        for i in 0..5u32 {
            mb.deliver(0, 0, Box::new(i));
        }
        for i in 0..5u32 {
            assert_eq!(mb.recv::<u32>(0, 0), i);
        }
    }
}
