//! Point-to-point messaging: per-rank mailboxes with (source, tag) matching.
//!
//! CGYRO's hot paths are collective-only, but a faithful MPI substitute
//! needs send/recv for halo-style exchanges and for the diagnostics
//! gather-to-root paths; the nl phase's neighbour exchanges use it too.

use crate::fault::CommError;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

type BoxedAny = Box<dyn Any + Send>;

/// A message in flight.
struct Envelope {
    src: usize,
    tag: u64,
    payload: BoxedAny,
}

/// One rank's incoming mailbox.
pub struct Mailbox {
    queue: Mutex<MailboxState>,
    cv: Condvar,
}

#[derive(Default)]
struct MailboxState {
    messages: VecDeque<Envelope>,
    poisoned: bool,
    failed: Option<(usize, String)>,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// Empty mailbox.
    pub fn new() -> Self {
        Self { queue: Mutex::new(MailboxState::default()), cv: Condvar::new() }
    }

    /// Mark poisoned (a peer died); wakes blocked receivers, which panic.
    pub fn poison(&self) {
        self.queue.lock().poisoned = true;
        self.cv.notify_all();
    }

    /// Mark failed (global rank `rank` is known dead); wakes blocked
    /// receivers, which surface [`CommError::PeerFailed`] from
    /// [`Mailbox::try_recv`]. The first cause wins.
    pub fn fail(&self, rank: usize, detail: &str) {
        let mut q = self.queue.lock();
        if q.failed.is_none() {
            q.failed = Some((rank, detail.to_string()));
        }
        self.cv.notify_all();
    }

    /// Deliver a message (called by the sender's thread).
    pub fn deliver(&self, src: usize, tag: u64, payload: BoxedAny) {
        self.queue.lock().messages.push_back(Envelope { src, tag, payload });
        self.cv.notify_all();
    }

    /// Blocking receive of the first message matching `(src, tag)`.
    /// Messages from the same source with the same tag are received in send
    /// order (MPI's non-overtaking guarantee).
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.messages.iter().position(|e| e.src == src && e.tag == tag) {
                let env = q.messages.remove(pos).expect("position just found");
                return *env
                    .payload
                    .downcast::<T>()
                    .expect("point-to-point type mismatch between send and recv");
            }
            assert!(!q.poisoned, "recv aborted: another rank panicked");
            self.cv.wait(&mut q);
        }
    }

    /// Like [`Mailbox::recv`], but fallible: returns
    /// [`CommError::PeerFailed`] when the mailbox has been failed (a peer
    /// is known dead) and [`CommError::Timeout`] when `deadline` expires
    /// before a matching message arrives. Messages already queued are
    /// delivered even on a failed mailbox (they were sent before the
    /// failure). Poisoning still panics, as in [`Mailbox::recv`].
    pub fn try_recv<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        deadline: Option<Duration>,
    ) -> Result<T, CommError> {
        let start = Instant::now();
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.messages.iter().position(|e| e.src == src && e.tag == tag) {
                let env = q.messages.remove(pos).expect("position just found");
                return Ok(*env
                    .payload
                    .downcast::<T>()
                    .expect("point-to-point type mismatch between send and recv"));
            }
            assert!(!q.poisoned, "recv aborted: another rank panicked");
            if let Some((rank, detail)) = &q.failed {
                return Err(CommError::PeerFailed { rank: *rank, detail: detail.clone() });
            }
            match deadline {
                None => self.cv.wait(&mut q),
                Some(d) => {
                    let elapsed = start.elapsed();
                    if elapsed >= d {
                        return Err(CommError::Timeout {
                            op: "Recv".to_string(),
                            waited_ms: elapsed.as_millis() as u64,
                            missing: vec![src],
                        });
                    }
                    self.cv.wait_for(&mut q, d - elapsed);
                }
            }
        }
    }

    /// Non-blocking probe: is a matching message waiting?
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.queue.lock().messages.iter().any(|e| e.src == src && e.tag == tag)
    }

    /// Number of queued messages (all sources/tags).
    pub fn pending(&self) -> usize {
        self.queue.lock().messages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn send_then_recv() {
        let mb = Mailbox::new();
        mb.deliver(3, 7, Box::new(vec![1.0f64, 2.0]));
        assert!(mb.probe(3, 7));
        assert!(!mb.probe(3, 8));
        let v: Vec<f64> = mb.recv(3, 7);
        assert_eq!(v, vec![1.0, 2.0]);
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = thread::spawn(move || mb2.recv::<u32>(0, 1));
        thread::sleep(std::time::Duration::from_millis(20));
        mb.deliver(0, 1, Box::new(99u32));
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn tag_and_source_matching_skips_nonmatching() {
        let mb = Mailbox::new();
        mb.deliver(1, 5, Box::new(10u8));
        mb.deliver(2, 5, Box::new(20u8));
        mb.deliver(1, 6, Box::new(30u8));
        assert_eq!(mb.recv::<u8>(2, 5), 20);
        assert_eq!(mb.recv::<u8>(1, 6), 30);
        assert_eq!(mb.recv::<u8>(1, 5), 10);
    }

    #[test]
    fn non_overtaking_same_src_tag() {
        let mb = Mailbox::new();
        for i in 0..5u32 {
            mb.deliver(0, 0, Box::new(i));
        }
        for i in 0..5u32 {
            assert_eq!(mb.recv::<u32>(0, 0), i);
        }
    }
}
