//! # xg-comm
//!
//! A thread-backed MPI substitute: a [`World`] of ranks, [`Communicator`]s
//! with `split`, blocking collectives (Barrier, AllGather, AllReduce,
//! AllToAllv, Broadcast), point-to-point send/recv with tag matching, and
//! per-rank [`stats::TrafficLog`] accounting that feeds both the
//! communication-pattern traces (paper Figures 1/3) and the analytic cost
//! model.
//!
//! Design notes:
//!
//! * Collectives on one communicator are totally ordered (epoch-numbered
//!   rendezvous slots); disjoint communicators never serialize against each
//!   other — matching MPI semantics for blocking collectives.
//! * Reductions combine contributions in **communicator-rank order**, so
//!   results are deterministic and re-partitioned ensembles with identical
//!   per-simulation grids reproduce bitwise-identical trajectories.
//! * A panic on any rank poisons every slot and mailbox, so the run aborts
//!   promptly with the offending rank identified instead of deadlocking.
//! * Fault tolerance is opt-in: [`World::with_deadline`] bounds every
//!   blocking wait, [`World::with_fault_plan`] injects seeded failures
//!   (crash / stall / delay), and [`World::run_fallible`] reports each
//!   rank's ending as a typed [`world::RankOutcome`] instead of re-throwing
//!   the first panic — the substrate for degraded-mode ensemble recovery.

#![warn(missing_docs)]

pub mod communicator;
pub mod exchange;
pub mod fault;
pub mod nonblocking;
pub mod p2p;
pub mod stats;
pub mod tracefile;
pub mod world;

pub use communicator::Communicator;
pub use fault::{CommError, FaultKind, FaultPlan, FaultSpec};
pub use nonblocking::PendingOp;
pub use stats::{OpKind, OpRecord, TrafficLog};
pub use tracefile::{
    trace_meta, traces_from_csv, traces_to_csv, traces_to_csv_with_meta, TraceFileError,
};
pub use world::{RankOutcome, RankPanic, World};
