//! Per-rank communication traffic accounting.
//!
//! Every collective and point-to-point operation appends an [`OpRecord`] to
//! the issuing rank's [`TrafficLog`]. The log serves two purposes:
//!
//! 1. **Comm-pattern traces** (paper Figures 1 and 3): which logical
//!    communicator executed which operation with how many participants —
//!    including CGYRO's reuse of the `nv` communicator for both the str
//!    AllReduce and the str↔coll AllToAll, and XGYRO's separation of the
//!    two.
//! 2. **Cost-model input**: participants and byte counts per operation are
//!    exactly what the analytic collective cost formulas consume.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Kind of communication operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Reduction to all ranks (sum).
    AllReduce,
    /// Personalized all-to-all exchange.
    AllToAll,
    /// Gather to all ranks.
    AllGather,
    /// One-to-all broadcast.
    Broadcast,
    /// Synchronization only.
    Barrier,
    /// Point-to-point send.
    Send,
    /// Point-to-point receive.
    Recv,
    /// An injected or observed fault event (crash, stall, delay). `bytes`
    /// carries the downtime in microseconds; `members` holds the affected
    /// rank(s).
    Fault,
    /// A recovery event (checkpoint rollback + degraded-mode restart).
    /// `bytes` carries the recovery cost in microseconds; `members` holds
    /// the surviving ranks.
    Recover,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::AllReduce => "AllReduce",
            OpKind::AllToAll => "AllToAll",
            OpKind::AllGather => "AllGather",
            OpKind::Broadcast => "Broadcast",
            OpKind::Barrier => "Barrier",
            OpKind::Send => "Send",
            OpKind::Recv => "Recv",
            OpKind::Fault => "Fault",
            OpKind::Recover => "Recover",
        };
        f.write_str(s)
    }
}

/// One recorded communication operation, as seen by one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct OpRecord {
    /// Operation kind.
    pub op: OpKind,
    /// Label of the communicator the operation ran on (e.g. `"nv"`,
    /// `"coll-ens"`).
    pub comm_label: String,
    /// Number of participating ranks.
    pub participants: usize,
    /// Global ranks of the participants (communicator-rank order); used by
    /// the cost model to determine node spans.
    pub members: Vec<usize>,
    /// Payload bytes contributed by this rank (per-rank message size for
    /// AllReduce/Broadcast; total bytes sent for AllToAll/AllGather/Send).
    pub bytes: u64,
    /// Logical phase active when the operation was issued (`"str"`,
    /// `"coll"`, `"nl"`, `"setup"`, …).
    pub phase: String,
    /// Wall time this rank spent blocked in the operation, microseconds.
    /// Zero when timing was disabled (`XGYRO_OBS=0`) or the operation
    /// never completed — consumers (xgreplay's time-weighted summary)
    /// treat 0 as "untimed", not "instant".
    pub elapsed_us: u64,
}

/// Append-only per-rank traffic log with a settable phase context.
#[derive(Debug, Default)]
pub struct TrafficLog {
    inner: Mutex<LogInner>,
    /// Bytes of communication-buffer capacity drained (cleared and handed
    /// back for reuse) instead of freed and reallocated — the steady-state
    /// allocation savings of persistent send/recv buffers.
    drained_capacity: AtomicU64,
    /// Fused str-phase reductions issued: collective calls that carried
    /// several moments in one buffer.
    fused_reduce_calls: AtomicU64,
    /// Total moments carried by those fused calls (calls saved =
    /// `fused_reduce_moments − fused_reduce_calls`).
    fused_reduce_moments: AtomicU64,
    /// Payload bytes moved by fused reductions.
    fused_reduce_bytes: AtomicU64,
    /// Unfused (one-moment) reduction calls issued.
    unfused_reduce_calls: AtomicU64,
    /// Payload bytes moved by unfused reductions.
    unfused_reduce_bytes: AtomicU64,
}

#[derive(Debug, Default)]
struct LogInner {
    phase: String,
    records: Vec<OpRecord>,
}

impl TrafficLog {
    /// Fresh empty log (phase = empty string).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Set the phase tag applied to subsequently recorded operations.
    pub fn set_phase(&self, phase: &str) {
        self.inner.lock().phase = phase.to_string();
    }

    /// Current phase tag.
    pub fn phase(&self) -> String {
        self.inner.lock().phase.clone()
    }

    /// Record an operation over the communicator whose global members are
    /// `members`. Returns the record's index so the caller can patch in
    /// the measured wait time afterwards ([`TrafficLog::set_elapsed`]) —
    /// index-based because nonblocking collectives share this log from
    /// helper threads, so "the last record" is racy.
    pub fn record(&self, op: OpKind, comm_label: &str, members: &[usize], bytes: u64) -> usize {
        let mut g = self.inner.lock();
        let phase = g.phase.clone();
        g.records.push(OpRecord {
            op,
            comm_label: comm_label.to_string(),
            participants: members.len(),
            members: members.to_vec(),
            bytes,
            phase,
            elapsed_us: 0,
        });
        g.records.len() - 1
    }

    /// Patch the measured wait time into the record at `idx` (as returned
    /// by [`TrafficLog::record`]) and feed the process-wide obs registry's
    /// comm-wait histogram under the record's phase. A stale index (the
    /// log was cleared in between) is ignored.
    pub fn set_elapsed(&self, idx: usize, us: u64) {
        let mut g = self.inner.lock();
        if let Some(r) = g.records.get_mut(idx) {
            r.elapsed_us = us;
            xg_obs::record_comm_wait(&r.phase, us);
        }
    }

    /// Snapshot of all records so far.
    pub fn records(&self) -> Vec<OpRecord> {
        self.inner.lock().records.clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all records (phase is kept).
    pub fn clear(&self) {
        self.inner.lock().records.clear();
    }

    /// Total bytes over records matching a filter.
    pub fn total_bytes_where(&self, pred: impl Fn(&OpRecord) -> bool) -> u64 {
        self.inner.lock().records.iter().filter(|r| pred(r)).map(|r| r.bytes).sum()
    }

    /// Account `bytes` of buffer capacity as drained-and-reused rather
    /// than freed: called by steady-state paths that recycle persistent
    /// send/recv blocks between transposes or steps.
    pub fn note_drained_capacity(&self, bytes: u64) {
        self.drained_capacity.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total bytes of buffer capacity recycled so far (see
    /// [`TrafficLog::note_drained_capacity`]).
    pub fn drained_capacity_bytes(&self) -> u64 {
        self.drained_capacity.load(Ordering::Relaxed)
    }

    /// Account one fused reduction: a single collective call carrying
    /// `moments` logical moments in `bytes` of payload. The op itself is
    /// recorded normally via [`TrafficLog::record`]; this counter makes the
    /// fusion saving (`moments − 1` elided latency terms per call)
    /// observable in traces and `xgreplay`.
    pub fn note_fused_reduction(&self, moments: u64, bytes: u64) {
        self.fused_reduce_calls.fetch_add(1, Ordering::Relaxed);
        self.fused_reduce_moments.fetch_add(moments, Ordering::Relaxed);
        self.fused_reduce_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account one unfused (single-moment) reduction of `bytes` payload.
    pub fn note_unfused_reduction(&self, bytes: u64) {
        self.unfused_reduce_calls.fetch_add(1, Ordering::Relaxed);
        self.unfused_reduce_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// `(calls, moments, bytes)` of fused reductions so far.
    pub fn fused_reduction_stats(&self) -> (u64, u64, u64) {
        (
            self.fused_reduce_calls.load(Ordering::Relaxed),
            self.fused_reduce_moments.load(Ordering::Relaxed),
            self.fused_reduce_bytes.load(Ordering::Relaxed),
        )
    }

    /// `(calls, bytes)` of unfused reductions so far.
    pub fn unfused_reduction_stats(&self) -> (u64, u64) {
        (
            self.unfused_reduce_calls.load(Ordering::Relaxed),
            self.unfused_reduce_bytes.load(Ordering::Relaxed),
        )
    }

    /// Count of operations of `op` in phase `phase` (any phase if empty).
    pub fn count_ops(&self, op: OpKind, phase: &str) -> usize {
        self.inner
            .lock()
            .records
            .iter()
            .filter(|r| r.op == op && (phase.is_empty() || r.phase == phase))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let log = TrafficLog::new();
        assert!(log.is_empty());
        log.set_phase("str");
        log.record(OpKind::AllReduce, "nv", &[0,1,2,3,4,5,6,7], 1024);
        log.set_phase("coll");
        log.record(OpKind::AllToAll, "nv", &[0,1,2,3,4,5,6,7], 4096);
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].phase, "str");
        assert_eq!(recs[0].participants, 8);
        assert_eq!(recs[1].op, OpKind::AllToAll);
        assert_eq!(recs[1].phase, "coll");
    }

    #[test]
    fn filters_and_counts() {
        let log = TrafficLog::new();
        log.set_phase("str");
        log.record(OpKind::AllReduce, "nv", &[0,1,2,3], 100);
        log.record(OpKind::AllReduce, "nv", &[0,1,2,3], 100);
        log.set_phase("coll");
        log.record(OpKind::AllToAll, "nv", &[0,1,2,3], 999);
        assert_eq!(log.count_ops(OpKind::AllReduce, "str"), 2);
        assert_eq!(log.count_ops(OpKind::AllReduce, "coll"), 0);
        assert_eq!(log.count_ops(OpKind::AllToAll, ""), 1);
        assert_eq!(log.total_bytes_where(|r| r.phase == "str"), 200);
    }

    #[test]
    fn clear_keeps_phase() {
        let log = TrafficLog::new();
        log.set_phase("nl");
        log.record(OpKind::Barrier, "world", &[0,1], 0);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.phase(), "nl");
    }

    #[test]
    fn drained_capacity_accumulates() {
        let log = TrafficLog::new();
        assert_eq!(log.drained_capacity_bytes(), 0);
        log.note_drained_capacity(1024);
        log.note_drained_capacity(512);
        assert_eq!(log.drained_capacity_bytes(), 1536);
        // Clearing op records does not reset the recycling counter.
        log.clear();
        assert_eq!(log.drained_capacity_bytes(), 1536);
    }

    #[test]
    fn fused_counters_accumulate_independently() {
        let log = TrafficLog::new();
        assert_eq!(log.fused_reduction_stats(), (0, 0, 0));
        log.note_fused_reduction(3, 3000);
        log.note_fused_reduction(2, 2000);
        log.note_unfused_reduction(500);
        assert_eq!(log.fused_reduction_stats(), (2, 5, 5000));
        assert_eq!(log.unfused_reduction_stats(), (1, 500));
        // Clearing op records leaves the fusion accounting intact.
        log.clear();
        assert_eq!(log.fused_reduction_stats(), (2, 5, 5000));
    }

    #[test]
    fn opkind_display() {
        assert_eq!(OpKind::AllReduce.to_string(), "AllReduce");
        assert_eq!(OpKind::Barrier.to_string(), "Barrier");
    }
}
