//! Handle-based nonblocking collectives.
//!
//! `start_*` methods hand the blocking collective to a helper thread and
//! return a [`PendingOp`] immediately; the caller overlaps local compute
//! with the in-flight exchange and later calls [`PendingOp::wait`] (or
//! [`PendingOp::try_wait`]) for the result. The helper thread runs the
//! exact same `try_*` path as the blocking form, so FaultPlan injection,
//! deadline bounds and typed [`CommError`]s are inherited unchanged — a
//! peer crash or stall between `start` and `wait` surfaces as the same
//! typed error the blocking call would have returned, never a hang.
//!
//! The one-outstanding-op-per-communicator rule of the rendezvous slots
//! still applies: do not issue another operation on the same communicator
//! (from this rank) until the pending one is waited. Overlapping pipelines
//! use a second communicator (see the dist collision exchange) exactly as
//! real MPI codes use a second `MPI_Comm` for double-buffered transposes.

use crate::communicator::Communicator;
use crate::fault::CommError;
use std::thread::JoinHandle;
use xg_linalg::Complex64;

/// An in-flight nonblocking collective (the analogue of an `MPI_Request`).
///
/// Must be consumed with [`PendingOp::wait`] or [`PendingOp::try_wait`];
/// dropping it without waiting detaches the helper thread, which still
/// completes (or fails) the collective on behalf of this rank so peers are
/// never left hanging.
#[must_use = "a pending collective must be wait()ed for its result"]
pub struct PendingOp<T> {
    handle: JoinHandle<Result<T, CommError>>,
}

impl<T> PendingOp<T> {
    fn spawn(f: impl FnOnce() -> Result<T, CommError> + Send + 'static) -> Self
    where
        T: Send + 'static,
    {
        Self { handle: std::thread::spawn(f) }
    }

    /// Block until the collective completes; panics with the typed
    /// [`CommError`] as payload on failure (the plain-form convention, so
    /// `World::run_fallible` converts it back to a `RankOutcome`).
    pub fn wait(self) -> T {
        self.try_wait().unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Block until the collective completes, returning a typed error on
    /// peer failure, injected fault, or deadline expiry.
    pub fn try_wait(self) -> Result<T, CommError> {
        match self.handle.join() {
            Ok(res) => res,
            // The helper runs only `try_` paths, so a panic there is either
            // a typed error thrown through a plain-form call or a real bug.
            Err(payload) => match payload.downcast::<CommError>() {
                Ok(e) => Err(*e),
                Err(other) => std::panic::resume_unwind(other),
            },
        }
    }

    /// True once the collective has completed (successfully or not);
    /// `wait` will not block after this returns true.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

impl Communicator {
    /// Nonblocking [`Communicator::all_reduce_sum_complex`]: takes the
    /// buffer by value, returns a handle whose `wait` yields the reduced
    /// buffer (bitwise identical to the blocking form's rank-order sum).
    pub fn start_all_reduce_sum_complex(
        &self,
        mut buf: Vec<Complex64>,
    ) -> PendingOp<Vec<Complex64>> {
        let c = self.clone();
        PendingOp::spawn(move || {
            c.try_all_reduce_sum_complex(&mut buf)?;
            Ok(buf)
        })
    }

    /// Nonblocking [`Communicator::all_to_all_v_take`]: the transpose runs
    /// on a helper thread while this rank computes; `wait` returns the
    /// received blocks with the same move semantics as the blocking form.
    pub fn start_all_to_all_v_take<T: Send + 'static>(
        &self,
        send: Vec<Vec<T>>,
    ) -> PendingOp<Vec<Vec<T>>> {
        let c = self.clone();
        PendingOp::spawn(move || c.try_all_to_all_v_take(send))
    }
}

#[cfg(test)]
mod tests {
    use crate::World;
    use xg_linalg::Complex64;

    #[test]
    fn nonblocking_allreduce_matches_blocking() {
        let out = World::new(3).run(|c| {
            let buf: Vec<Complex64> =
                (0..5).map(|i| Complex64::new(i as f64, c.rank() as f64)).collect();
            let mut blocking = buf.clone();
            let pending = c.start_all_reduce_sum_complex(buf);
            let reduced = pending.wait();
            c.all_reduce_sum_complex(&mut blocking);
            (reduced, blocking)
        });
        for (nb, b) in out {
            assert_eq!(nb, b);
        }
    }

    #[test]
    fn nonblocking_transpose_overlaps_compute() {
        let p = 4;
        let out = World::new(p).run(|c| {
            let send: Vec<Vec<u32>> =
                (0..p).map(|j| vec![(c.rank() * 100 + j) as u32; j + 1]).collect();
            let pending = c.start_all_to_all_v_take(send);
            // "Compute" while the exchange is in flight.
            let local: u32 = (0..100u32).sum();
            let recv = pending.wait();
            (local, recv)
        });
        for (me, (local, recv)) in out.into_iter().enumerate() {
            assert_eq!(local, 4950);
            for (src, blk) in recv.into_iter().enumerate() {
                assert_eq!(blk, vec![(src * 100 + me) as u32; me + 1]);
            }
        }
    }
}
