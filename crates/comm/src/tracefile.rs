//! Trace serialization: save per-rank [`OpRecord`] sequences to a CSV-like
//! text format and load them back — so traces captured by one run (or one
//! machine) can be replayed offline against any cost model.
//!
//! Format (one op per line, `|`-separated member lists, trailing
//! `elapsed_us` column carrying the measured wait time — 0 when timing was
//! off):
//!
//! ```text
//! rank,op,comm,phase,bytes,members,elapsed_us
//! 0,AllReduce,nv,str,2048,0|2|4|6,137
//! ```
//!
//! Files written before the timing column (header
//! `rank,op,comm,phase,bytes,members`) still load; their records get
//! `elapsed_us = 0`.
//!
//! Directly after the header a file may carry `#key=value` metadata lines
//! (run configuration the replay tools report alongside the cost model —
//! e.g. the autotuned collision kernel). The header stays the first line
//! so version sniffing is unchanged; parsers ignore every `#` line, so
//! files with metadata load in older readers and vice versa.

use crate::stats::{OpKind, OpRecord};
use std::fmt::Write as _;

/// A trace-file problem.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFileError {
    /// 1-based line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceFileError {}

const HEADER: &str = "rank,op,comm,phase,bytes,members,elapsed_us";
const HEADER_V1: &str = "rank,op,comm,phase,bytes,members";

fn op_to_str(op: OpKind) -> &'static str {
    match op {
        OpKind::AllReduce => "AllReduce",
        OpKind::AllToAll => "AllToAll",
        OpKind::AllGather => "AllGather",
        OpKind::Broadcast => "Broadcast",
        OpKind::Barrier => "Barrier",
        OpKind::Send => "Send",
        OpKind::Recv => "Recv",
        OpKind::Fault => "Fault",
        OpKind::Recover => "Recover",
    }
}

fn op_from_str(s: &str) -> Option<OpKind> {
    Some(match s {
        "AllReduce" => OpKind::AllReduce,
        "AllToAll" => OpKind::AllToAll,
        "AllGather" => OpKind::AllGather,
        "Broadcast" => OpKind::Broadcast,
        "Barrier" => OpKind::Barrier,
        "Send" => OpKind::Send,
        "Recv" => OpKind::Recv,
        "Fault" => OpKind::Fault,
        "Recover" => OpKind::Recover,
        _ => return None,
    })
}

/// Serialize per-rank traces.
pub fn traces_to_csv(traces: &[Vec<OpRecord>]) -> String {
    traces_to_csv_with_meta(traces, &[])
}

/// Serialize per-rank traces with `#key=value` metadata lines after the
/// header. Keys and values must not contain newlines; `=` in values is
/// fine (the reader splits on the first `=` only).
pub fn traces_to_csv_with_meta(traces: &[Vec<OpRecord>], meta: &[(&str, &str)]) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for (key, value) in meta {
        debug_assert!(
            !key.contains(['\n', '=']) && !value.contains('\n'),
            "trace metadata key/value must be line- and '='-safe"
        );
        let _ = writeln!(out, "#{key}={value}");
    }
    for (rank, recs) in traces.iter().enumerate() {
        for r in recs {
            let members = r
                .members
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join("|");
            let _ = writeln!(
                out,
                "{rank},{},{},{},{},{members},{}",
                op_to_str(r.op),
                r.comm_label,
                r.phase,
                r.bytes,
                r.elapsed_us
            );
        }
    }
    out
}

/// Parse per-rank traces. The number of ranks is inferred from the highest
/// rank index present.
pub fn traces_from_csv(text: &str) -> Result<Vec<Vec<OpRecord>>, TraceFileError> {
    let mut traces: Vec<Vec<OpRecord>> = Vec::new();
    // Pre-timing files (6 columns, no elapsed_us) still load.
    let mut has_elapsed = true;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if idx == 0 {
            match line {
                l if l == HEADER => has_elapsed = true,
                l if l == HEADER_V1 => has_elapsed = false,
                _ => {
                    return Err(TraceFileError {
                        line: 1,
                        message: format!("bad header '{line}'"),
                    })
                }
            }
            continue;
        }
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let ncols = if has_elapsed { 7 } else { 6 };
        let cols: Vec<&str> = line.splitn(ncols, ',').collect();
        if cols.len() != ncols {
            return Err(TraceFileError {
                line: line_no,
                message: format!("expected {ncols} columns"),
            });
        }
        let err = |m: String| TraceFileError { line: line_no, message: m };
        let rank: usize =
            cols[0].parse().map_err(|_| err(format!("bad rank '{}'", cols[0])))?;
        let op = op_from_str(cols[1]).ok_or_else(|| err(format!("bad op '{}'", cols[1])))?;
        let bytes: u64 =
            cols[4].parse().map_err(|_| err(format!("bad bytes '{}'", cols[4])))?;
        let members: Vec<usize> = if cols[5].is_empty() {
            Vec::new()
        } else {
            cols[5]
                .split('|')
                .map(|m| m.parse().map_err(|_| err(format!("bad member '{m}'"))))
                .collect::<Result<_, _>>()?
        };
        let elapsed_us: u64 = if has_elapsed {
            cols[6].parse().map_err(|_| err(format!("bad elapsed_us '{}'", cols[6])))?
        } else {
            0
        };
        while traces.len() <= rank {
            traces.push(Vec::new());
        }
        traces[rank].push(OpRecord {
            op,
            comm_label: cols[2].to_string(),
            phase: cols[3].to_string(),
            participants: members.len(),
            members,
            bytes,
            elapsed_us,
        });
    }
    Ok(traces)
}

/// Read the `#key=value` metadata lines of a trace file, in file order.
/// Files without metadata (or pre-metadata files) yield an empty list;
/// malformed `#` lines (no `=`) are skipped rather than rejected, since
/// `#` is the comment namespace.
pub fn trace_meta(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter(|l| l.starts_with('#'))
        .filter_map(|l| l[1..].split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<OpRecord>> {
        let rec = |op, phase: &str, members: Vec<usize>, bytes| OpRecord {
            op,
            comm_label: "nv".into(),
            phase: phase.into(),
            participants: members.len(),
            members,
            bytes,
            elapsed_us: 42,
        };
        vec![
            vec![
                rec(OpKind::AllReduce, "str", vec![0, 1], 128),
                rec(OpKind::AllToAll, "coll", vec![0, 1], 4096),
            ],
            vec![
                rec(OpKind::AllReduce, "str", vec![0, 1], 128),
                rec(OpKind::AllToAll, "coll", vec![0, 1], 4096),
            ],
        ]
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let csv = traces_to_csv(&t);
        let back = traces_from_csv(&csv).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn every_op_kind_roundtrips() {
        for op in [
            OpKind::AllReduce,
            OpKind::AllToAll,
            OpKind::AllGather,
            OpKind::Broadcast,
            OpKind::Barrier,
            OpKind::Send,
            OpKind::Recv,
            OpKind::Fault,
            OpKind::Recover,
        ] {
            assert_eq!(op_from_str(op_to_str(op)), Some(op));
        }
        assert_eq!(op_from_str("Nonsense"), None);
    }

    #[test]
    fn malformed_lines_rejected_with_line_numbers() {
        assert_eq!(traces_from_csv("wrong header\n").unwrap_err().line, 1);
        let base = format!("{HEADER}\n0,AllReduce,nv,str,notanumber,0|1,5\n");
        assert_eq!(traces_from_csv(&base).unwrap_err().line, 2);
        let base = format!("{HEADER}\n0,BadOp,nv,str,12,0,5\n");
        assert!(traces_from_csv(&base).unwrap_err().message.contains("bad op"));
        let base = format!("{HEADER}\n0,AllReduce,nv,str,12,0,notanumber\n");
        assert!(traces_from_csv(&base).unwrap_err().message.contains("bad elapsed_us"));
        let base = format!("{HEADER}\nonly,two\n");
        assert!(traces_from_csv(&base).is_err());
    }

    #[test]
    fn sparse_ranks_padded() {
        let csv = format!("{HEADER}\n3,Barrier,world,setup,0,0|1|2|3,0\n");
        let t = traces_from_csv(&csv).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t[0].is_empty());
        assert_eq!(t[3].len(), 1);
    }

    #[test]
    fn metadata_roundtrips_and_is_invisible_to_record_parsing() {
        let t = sample();
        let meta = [("kernel", "avx512/t128"), ("kernel_predicted", "avx2/t64")];
        let csv = traces_to_csv_with_meta(&t, &meta);
        // Header stays line 1 (version sniffing), meta directly after.
        assert!(csv.starts_with(&format!("{HEADER}\n#kernel=avx512/t128\n")));
        assert_eq!(traces_from_csv(&csv).unwrap(), t, "meta must not change records");
        assert_eq!(
            trace_meta(&csv),
            vec![
                ("kernel".to_string(), "avx512/t128".to_string()),
                ("kernel_predicted".to_string(), "avx2/t64".to_string()),
            ]
        );
        // Meta-free files: empty meta, identical to traces_to_csv.
        assert_eq!(traces_to_csv_with_meta(&t, &[]), traces_to_csv(&t));
        assert!(trace_meta(&traces_to_csv(&t)).is_empty());
        // Stray comment lines are skipped, not rejected.
        let csv = format!("{HEADER}\n# free-form comment, no equals\n");
        assert_eq!(traces_from_csv(&csv).unwrap(), Vec::<Vec<OpRecord>>::new());
        assert!(trace_meta(&csv).is_empty());
    }

    #[test]
    fn pre_timing_files_still_load() {
        // A file written before the elapsed_us column existed.
        let csv = format!("{HEADER_V1}\n0,AllReduce,nv,str,128,0|1\n");
        let t = traces_from_csv(&csv).unwrap();
        assert_eq!(t[0].len(), 1);
        assert_eq!(t[0][0].elapsed_us, 0);
        assert_eq!(t[0][0].bytes, 128);
        // And the old column count is enforced for the old header.
        let csv = format!("{HEADER_V1}\n0,AllReduce,nv,str,128,0|1,99\n");
        assert!(traces_from_csv(&csv).is_err());
    }

    #[test]
    fn functional_trace_roundtrips() {
        let out = crate::World::new(3).run_with_logs(|c| {
            let mut v = vec![0.0f64; 4];
            c.all_reduce_sum_f64(&mut v);
            c.barrier();
        });
        let traces: Vec<Vec<OpRecord>> = out.into_iter().map(|(_, t)| t).collect();
        let csv = traces_to_csv(&traces);
        assert_eq!(traces_from_csv(&csv).unwrap(), traces);
    }
}
