//! Communicators and collective operations.
//!
//! A [`Communicator`] is a handle held by one rank onto a group of ranks
//! sharing a rendezvous [`crate::exchange::Slot`] — collectives are
//! blocking and totally ordered per communicator; disjoint communicators
//! proceed independently (so the k per-simulation str communicators of an
//! XGYRO ensemble never serialize against each other).
//!
//! Reductions are **deterministic**: contributions are combined in
//! communicator-rank order, so repeated runs and re-partitioned ensembles
//! with identical sub-grids produce bitwise-identical results — the
//! property the equivalence experiment (T-correct) relies on.
//!
//! Every blocking operation exists in two forms: the plain form (panics on
//! peer failure — the legacy abort path) and a `try_` form returning
//! `Result<_, CommError>`. When the world was built with a deadline
//! ([`crate::World::with_deadline`]), a dead or stalled peer surfaces as a
//! typed [`CommError`] within the deadline instead of hanging forever; the
//! plain forms re-throw that error as a panic payload, which
//! [`crate::World::run_fallible`] catches and converts back — so an
//! unmodified simulation stack still yields typed failures at the world
//! boundary.

use crate::exchange::{Slot, SlotError};
use crate::fault::{CommError, FaultKind, FaultPlan, FaultState};
use crate::p2p::Mailbox;
use crate::stats::{OpKind, TrafficLog};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xg_linalg::Complex64;

/// Shared world-level infrastructure every communicator hangs off.
pub(crate) struct WorldShared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) next_comm_id: AtomicU64,
    pub(crate) slot_registry: parking_lot::Mutex<Vec<std::sync::Weak<Slot>>>,
    /// Deadline for blocking waits; `None` means wait forever (legacy).
    pub(crate) deadline: Option<Duration>,
    /// Fault-injection state, when a plan was installed.
    pub(crate) fault: Option<FaultState>,
}

impl WorldShared {
    pub(crate) fn new(
        size: usize,
        deadline: Option<Duration>,
        plan: Option<FaultPlan>,
    ) -> Arc<Self> {
        Arc::new(Self {
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            next_comm_id: AtomicU64::new(1),
            slot_registry: parking_lot::Mutex::new(Vec::new()),
            deadline,
            fault: plan.map(|p| FaultState::new(p, size)),
        })
    }

    pub(crate) fn register_slot(&self, slot: &Arc<Slot>) {
        self.slot_registry.lock().push(Arc::downgrade(slot));
    }

    /// Poison every live slot and mailbox so ranks blocked in collectives
    /// fail fast instead of deadlocking when a peer panics.
    pub(crate) fn poison_all(&self) {
        for w in self.slot_registry.lock().iter() {
            if let Some(s) = w.upgrade() {
                s.poison();
            }
        }
        for mb in &self.mailboxes {
            mb.poison();
        }
    }

    /// Mark every live slot and mailbox failed: global rank `rank` is known
    /// dead, so blocked peers surface typed [`CommError`]s promptly.
    pub(crate) fn fail_all(&self, rank: usize, detail: &str) {
        for w in self.slot_registry.lock().iter() {
            if let Some(s) = w.upgrade() {
                s.fail(rank, detail);
            }
        }
        for mb in &self.mailboxes {
            mb.fail(rank, detail);
        }
    }
}

/// A per-rank handle to a communicator (a rank group + rendezvous slot).
#[derive(Clone)]
pub struct Communicator {
    /// Rank within this communicator.
    rank: usize,
    /// Global rank (within the world), used for mailboxes and logging.
    global_rank: usize,
    /// Global ranks of the members, indexed by communicator rank.
    members: Arc<Vec<usize>>,
    slot: Arc<Slot>,
    world: Arc<WorldShared>,
    log: Arc<TrafficLog>,
    label: Arc<str>,
    comm_id: u64,
}

impl Communicator {
    pub(crate) fn new_world(
        global_rank: usize,
        size: usize,
        slot: Arc<Slot>,
        world: Arc<WorldShared>,
        log: Arc<TrafficLog>,
    ) -> Self {
        Self {
            rank: global_rank,
            global_rank,
            members: Arc::new((0..size).collect()),
            slot,
            world,
            log,
            label: Arc::from("world"),
            comm_id: 0,
        }
    }

    /// Rank of this process within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global (world) rank of this process.
    pub fn global_rank(&self) -> usize {
        self.global_rank
    }

    /// Global ranks of all members, in communicator-rank order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Human-readable label (`"world"`, `"nv"`, `"coll-ens"`, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The per-rank traffic log this communicator records into.
    pub fn log(&self) -> &Arc<TrafficLog> {
        &self.log
    }

    /// Tag the current logical phase for traffic accounting.
    pub fn set_phase(&self, phase: &str) {
        self.log.set_phase(phase);
    }

    /// Count one issued operation against the fault plan; fire any fault
    /// scheduled at this point. Delays and stalls sleep here (and leave an
    /// [`OpKind::Fault`] record, `bytes` = downtime µs); a crash marks the
    /// whole world failed and returns the error the dying rank observes.
    fn preflight(&self) -> Result<(), CommError> {
        let Some(fault) = &self.world.fault else {
            return Ok(());
        };
        match fault.on_op(self.global_rank) {
            None => Ok(()),
            Some(FaultKind::Delay(ms)) => {
                self.log.record(OpKind::Fault, &self.label, &[self.global_rank], ms * 1000);
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
            Some(FaultKind::Stall(ms)) => {
                self.log.record(OpKind::Fault, &self.label, &[self.global_rank], ms * 1000);
                std::thread::sleep(Duration::from_millis(ms));
                // Proceed: if the stall exceeded the deadline, peers have
                // already timed out and failed the slot, and the next wait
                // on it returns the typed error to this rank too.
                Ok(())
            }
            Some(FaultKind::Crash) => {
                self.log.record(OpKind::Fault, &self.label, &[self.global_rank], 0);
                let detail = format!(
                    "injected crash at op {}",
                    fault.ops_issued(self.global_rank).saturating_sub(1)
                );
                self.world.fail_all(self.global_rank, &detail);
                Err(CommError::PeerFailed { rank: self.global_rank, detail })
            }
        }
    }

    /// Map a slot-level failure to a world-level [`CommError`]: failed
    /// ranks are already global; timeout `missing` lists are slot-local
    /// and translate through the member table. A timeout also marks the
    /// whole world failed (the first missing rank is the presumed culprit)
    /// so every other rank fails fast instead of timing out serially.
    fn slot_error(&self, op: OpKind, e: SlotError) -> CommError {
        match e {
            SlotError::Failed { rank, detail } => CommError::PeerFailed { rank, detail },
            SlotError::Timeout { waited_ms, missing } => {
                let missing: Vec<usize> = missing
                    .into_iter()
                    .map(|i| self.members.get(i).copied().unwrap_or(i))
                    .collect();
                let culprit = missing.first().copied().unwrap_or(self.global_rank);
                self.world.fail_all(culprit, "collective timed out");
                CommError::Timeout { op: op.to_string(), waited_ms, missing }
            }
        }
    }

    /// Preflight + log + deadline-aware exchange: the shared body of every
    /// fallible collective.
    fn run_collective<T, R, F>(
        &self,
        op: OpKind,
        bytes: u64,
        contribution: T,
        assemble: F,
    ) -> Result<Arc<R>, CommError>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>) -> R,
    {
        self.preflight()?;
        // Record *before* the exchange (fault-plan rebase counts records,
        // including those of operations that then fail), then patch the
        // measured wait in by index once the exchange returns. No clock is
        // read when observability is off.
        let idx = self.log.record(op, &self.label, &self.members, bytes);
        let start = xg_obs::enabled().then(std::time::Instant::now);
        let res = self
            .slot
            .try_exchange(self.rank, contribution, assemble, self.world.deadline)
            .map_err(|e| self.slot_error(op, e));
        if let Some(start) = start {
            self.log.set_elapsed(idx, start.elapsed().as_micros() as u64);
        }
        res
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::barrier`].
    pub fn try_barrier(&self) -> Result<(), CommError> {
        self.run_collective(OpKind::Barrier, 0, (), |_| ()).map(|_| ())
    }

    /// Gather every rank's slice; returns the per-rank vectors in rank
    /// order.
    pub fn all_gather<T: Clone + Send + Sync + 'static>(&self, local: &[T]) -> Vec<Vec<T>> {
        self.try_all_gather(local).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::all_gather`].
    pub fn try_all_gather<T: Clone + Send + Sync + 'static>(
        &self,
        local: &[T],
    ) -> Result<Vec<Vec<T>>, CommError> {
        let bytes = std::mem::size_of_val(local) as u64;
        let res = self.run_collective(OpKind::AllGather, bytes, local.to_vec(), |items| items)?;
        Ok((*res).clone())
    }

    /// Element-wise sum-reduction of `buf` across all ranks, result
    /// replacing `buf` on every rank. Deterministic (rank-order) summation.
    pub fn all_reduce_sum_f64(&self, buf: &mut [f64]) {
        self.try_all_reduce_sum_f64(buf).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::all_reduce_sum_f64`].
    pub fn try_all_reduce_sum_f64(&self, buf: &mut [f64]) -> Result<(), CommError> {
        let bytes = std::mem::size_of_val(buf) as u64;
        let n = buf.len();
        let res = self.run_collective(OpKind::AllReduce, bytes, buf.to_vec(), move |items| {
            let mut acc = vec![0.0f64; n];
            for item in items {
                assert_eq!(item.len(), n, "AllReduce length mismatch across ranks");
                for (a, v) in acc.iter_mut().zip(&item) {
                    *a += v;
                }
            }
            acc
        })?;
        buf.copy_from_slice(&res);
        Ok(())
    }

    /// Element-wise complex sum-reduction (deterministic rank order).
    pub fn all_reduce_sum_complex(&self, buf: &mut [Complex64]) {
        self.try_all_reduce_sum_complex(buf).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::all_reduce_sum_complex`].
    pub fn try_all_reduce_sum_complex(&self, buf: &mut [Complex64]) -> Result<(), CommError> {
        let bytes = std::mem::size_of_val(buf) as u64;
        let n = buf.len();
        let res = self.run_collective(OpKind::AllReduce, bytes, buf.to_vec(), move |items| {
            let mut acc = vec![Complex64::ZERO; n];
            for item in items {
                assert_eq!(item.len(), n, "AllReduce length mismatch across ranks");
                for (a, v) in acc.iter_mut().zip(&item) {
                    *a += *v;
                }
            }
            acc
        })?;
        buf.copy_from_slice(&res);
        Ok(())
    }

    /// Element-wise max-reduction (used for CFL/diagnostic scalars).
    pub fn all_reduce_max_f64(&self, buf: &mut [f64]) {
        self.try_all_reduce_max_f64(buf).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::all_reduce_max_f64`].
    pub fn try_all_reduce_max_f64(&self, buf: &mut [f64]) -> Result<(), CommError> {
        let bytes = std::mem::size_of_val(buf) as u64;
        let n = buf.len();
        let res = self.run_collective(OpKind::AllReduce, bytes, buf.to_vec(), move |items| {
            let mut acc = vec![f64::NEG_INFINITY; n];
            for item in items {
                assert_eq!(item.len(), n, "AllReduce length mismatch across ranks");
                for (a, v) in acc.iter_mut().zip(&item) {
                    *a = a.max(*v);
                }
            }
            acc
        })?;
        buf.copy_from_slice(&res);
        Ok(())
    }

    /// Personalized all-to-all: `send[j]` goes to communicator rank `j`;
    /// returns `recv` with `recv[j]` the block sent by rank `j` to this
    /// rank. Blocks may have arbitrary (including zero) per-pair sizes —
    /// this is MPI_Alltoallv.
    ///
    /// ```
    /// use xg_comm::World;
    ///
    /// let out = World::new(3).run(|c| {
    ///     // Rank r sends the value 10*r + j to rank j.
    ///     let send: Vec<Vec<u32>> =
    ///         (0..3).map(|j| vec![10 * c.rank() as u32 + j as u32]).collect();
    ///     c.all_to_all_v(send)
    /// });
    /// // Rank 1 received [01, 11, 21] from ranks 0, 1, 2.
    /// assert_eq!(out[1], vec![vec![1], vec![11], vec![21]]);
    /// ```
    pub fn all_to_all_v<T: Clone + Send + Sync + 'static>(
        &self,
        send: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        self.try_all_to_all_v(send).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::all_to_all_v`].
    pub fn try_all_to_all_v<T: Clone + Send + Sync + 'static>(
        &self,
        send: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>, CommError> {
        let p = self.size();
        assert_eq!(send.len(), p, "all_to_all_v needs one block per peer");
        let bytes: u64 =
            send.iter().map(|b| (b.len() * std::mem::size_of::<T>()) as u64).sum();
        let res = self.run_collective(OpKind::AllToAll, bytes, send, move |items| {
            // items[src][dst] -> matrix[dst][src]. Pop from the back of each
            // source's block list so every block moves exactly once: source
            // `src`'s last block (dst = p−1) lands in row p−1, and each row
            // receives one block per source in src order.
            let mut matrix: Vec<Vec<Vec<T>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
            for (src, mut blocks) in items.into_iter().enumerate() {
                assert_eq!(blocks.len(), p, "rank {src} sent wrong number of blocks");
                for row in matrix.iter_mut().rev() {
                    row.push(blocks.pop().expect("block count checked"));
                }
            }
            matrix
        })?;
        Ok(res[self.rank].clone())
    }

    /// Move-semantics [`Communicator::all_to_all_v`]: identical exchange,
    /// but each rank *takes ownership* of its received blocks instead of
    /// cloning them out of the shared assembled result. Blocks therefore
    /// move exactly once end-to-end, `T` only needs `Send` (not `Clone` or
    /// `Sync`), and the returned `Vec<Vec<T>>` allocations can be recycled
    /// as the next transpose's send buffers.
    pub fn all_to_all_v_take<T: Send + 'static>(&self, send: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.try_all_to_all_v_take(send).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::all_to_all_v_take`].
    pub fn try_all_to_all_v_take<T: Send + 'static>(
        &self,
        send: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>, CommError> {
        let p = self.size();
        assert_eq!(send.len(), p, "all_to_all_v needs one block per peer");
        let bytes: u64 =
            send.iter().map(|b| (b.len() * std::mem::size_of::<T>()) as u64).sum();
        let rank = self.rank;
        // The assembled result is shared behind an Arc, so per-rank rows sit
        // behind mutexes holding Options: each rank locks its own row once
        // and moves it out, leaving None behind.
        let res = self.run_collective(OpKind::AllToAll, bytes, send, move |items| {
            let mut matrix: Vec<Vec<Vec<T>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
            for (src, mut blocks) in items.into_iter().enumerate() {
                assert_eq!(blocks.len(), p, "rank {src} sent wrong number of blocks");
                for row in matrix.iter_mut().rev() {
                    row.push(blocks.pop().expect("block count checked"));
                }
            }
            matrix
                .into_iter()
                .map(|row| parking_lot::Mutex::new(Some(row)))
                .collect::<Vec<_>>()
        })?;
        let row = res[rank]
            .lock()
            .take()
            .expect("each rank takes its own row exactly once per exchange");
        Ok(row)
    }

    /// Broadcast from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all ranks return the root's value.
    pub fn broadcast<T: Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> T {
        self.try_broadcast(root, value).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::broadcast`].
    pub fn try_broadcast<T: Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<T, CommError> {
        assert!(root < self.size(), "broadcast root out of range");
        assert_eq!(
            value.is_some(),
            self.rank == root,
            "exactly the root must provide the broadcast value"
        );
        let bytes = std::mem::size_of::<T>() as u64;
        let res = self.run_collective(OpKind::Broadcast, bytes, value, move |mut items| {
            items.swap_remove(root).expect("root deposited None")
        })?;
        Ok((*res).clone())
    }

    /// Sum-reduce to `root` only: the root returns the element-wise sum,
    /// everyone else an empty vector (MPI_Reduce).
    pub fn reduce_sum_f64(&self, root: usize, buf: &[f64]) -> Vec<f64> {
        self.try_reduce_sum_f64(root, buf).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::reduce_sum_f64`].
    pub fn try_reduce_sum_f64(&self, root: usize, buf: &[f64]) -> Result<Vec<f64>, CommError> {
        assert!(root < self.size(), "reduce root out of range");
        let bytes = std::mem::size_of_val(buf) as u64;
        let n = buf.len();
        let res = self.run_collective(OpKind::AllReduce, bytes, buf.to_vec(), move |items| {
            let mut acc = vec![0.0f64; n];
            for item in items {
                assert_eq!(item.len(), n, "reduce length mismatch across ranks");
                for (a, v) in acc.iter_mut().zip(&item) {
                    *a += v;
                }
            }
            acc
        })?;
        Ok(if self.rank == root { (*res).clone() } else { Vec::new() })
    }

    /// Gather every rank's slice to `root` only; non-root ranks receive an
    /// empty vector.
    pub fn gather<T: Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        local: &[T],
    ) -> Vec<Vec<T>> {
        self.try_gather(root, local).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::gather`].
    pub fn try_gather<T: Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        local: &[T],
    ) -> Result<Vec<Vec<T>>, CommError> {
        assert!(root < self.size(), "gather root out of range");
        let bytes = std::mem::size_of_val(local) as u64;
        let res = self.run_collective(OpKind::AllGather, bytes, local.to_vec(), |items| items)?;
        Ok(if self.rank == root { (*res).clone() } else { Vec::new() })
    }

    /// Scatter: `root` provides one block per rank; every rank returns its
    /// own block. Non-root ranks pass `None`.
    pub fn scatter<T: Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        blocks: Option<Vec<Vec<T>>>,
    ) -> Vec<T> {
        self.try_scatter(root, blocks).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::scatter`].
    pub fn try_scatter<T: Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        blocks: Option<Vec<Vec<T>>>,
    ) -> Result<Vec<T>, CommError> {
        assert!(root < self.size(), "scatter root out of range");
        assert_eq!(
            blocks.is_some(),
            self.rank == root,
            "exactly the root must provide the scatter blocks"
        );
        if let Some(b) = &blocks {
            assert_eq!(b.len(), self.size(), "scatter needs one block per rank");
        }
        let bytes = blocks
            .as_ref()
            .map(|b| b.iter().map(|x| (x.len() * std::mem::size_of::<T>()) as u64).sum())
            .unwrap_or(0);
        let res = self.run_collective(OpKind::Broadcast, bytes, blocks, move |mut items| {
            items.swap_remove(root).expect("root deposited None")
        })?;
        Ok(res[self.rank].clone())
    }

    /// Reduce-scatter (sum): element-wise sum of every rank's `buf`, then
    /// each rank keeps only its `counts[rank]`-sized block of the result.
    /// `Σ counts` must equal `buf.len()` on every rank.
    pub fn reduce_scatter_sum_f64(&self, buf: &[f64], counts: &[usize]) -> Vec<f64> {
        self.try_reduce_scatter_sum_f64(buf, counts)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::reduce_scatter_sum_f64`].
    pub fn try_reduce_scatter_sum_f64(
        &self,
        buf: &[f64],
        counts: &[usize],
    ) -> Result<Vec<f64>, CommError> {
        assert_eq!(counts.len(), self.size(), "one count per rank");
        let total: usize = counts.iter().sum();
        assert_eq!(total, buf.len(), "counts must tile the buffer");
        let bytes = std::mem::size_of_val(buf) as u64;
        let n = buf.len();
        let res = self.run_collective(OpKind::AllReduce, bytes, buf.to_vec(), move |items| {
            let mut acc = vec![0.0f64; n];
            for item in items {
                assert_eq!(item.len(), n, "reduce_scatter length mismatch across ranks");
                for (a, v) in acc.iter_mut().zip(&item) {
                    *a += v;
                }
            }
            acc
        })?;
        let start: usize = counts[..self.rank].iter().sum();
        Ok(res[start..start + counts[self.rank]].to_vec())
    }

    /// Complex reduce-scatter (sum): element-wise sum of every rank's
    /// `buf`, then each rank keeps only its `counts[rank]`-sized block.
    /// Summation is in rank order, so the kept block is bitwise identical
    /// to the corresponding slice of an `all_reduce_sum_complex` result.
    pub fn reduce_scatter_sum_complex(
        &self,
        buf: &[Complex64],
        counts: &[usize],
    ) -> Vec<Complex64> {
        self.try_reduce_scatter_sum_complex(buf, counts)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::reduce_scatter_sum_complex`].
    pub fn try_reduce_scatter_sum_complex(
        &self,
        buf: &[Complex64],
        counts: &[usize],
    ) -> Result<Vec<Complex64>, CommError> {
        assert_eq!(counts.len(), self.size(), "one count per rank");
        let total: usize = counts.iter().sum();
        assert_eq!(total, buf.len(), "counts must tile the buffer");
        let bytes = std::mem::size_of_val(buf) as u64;
        let n = buf.len();
        let res = self.run_collective(OpKind::AllReduce, bytes, buf.to_vec(), move |items| {
            let mut acc = vec![Complex64::ZERO; n];
            for item in items {
                assert_eq!(item.len(), n, "reduce_scatter length mismatch across ranks");
                for (a, v) in acc.iter_mut().zip(&item) {
                    *a += *v;
                }
            }
            acc
        })?;
        let start: usize = counts[..self.rank].iter().sum();
        Ok(res[start..start + counts[self.rank]].to_vec())
    }

    /// Allgather of ragged per-rank slices into one flat rank-ordered
    /// vector (the inverse of a reduce-scatter's partitioning): the result
    /// is `concat(block_0, block_1, …, block_{p−1})` on every rank.
    pub fn all_gather_into_flat<T: Clone + Send + Sync + 'static>(
        &self,
        local: &[T],
    ) -> Vec<T> {
        self.try_all_gather_into_flat(local).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::all_gather_into_flat`].
    pub fn try_all_gather_into_flat<T: Clone + Send + Sync + 'static>(
        &self,
        local: &[T],
    ) -> Result<Vec<T>, CommError> {
        let bytes = std::mem::size_of_val(local) as u64;
        let res = self.run_collective(OpKind::AllGather, bytes, local.to_vec(), |items| {
            let total: usize = items.iter().map(Vec::len).sum();
            let mut flat = Vec::with_capacity(total);
            for block in items {
                flat.extend(block);
            }
            flat
        })?;
        Ok((*res).clone())
    }

    /// Combined send+recv with the same peer (deadlock-free pairwise
    /// exchange).
    pub fn sendrecv<T: Send + 'static>(&self, peer: usize, tag: u64, data: T) -> T {
        self.try_sendrecv(peer, tag, data).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::sendrecv`].
    pub fn try_sendrecv<T: Send + 'static>(
        &self,
        peer: usize,
        tag: u64,
        data: T,
    ) -> Result<T, CommError> {
        self.try_send(peer, tag, data)?;
        self.try_recv(peer, tag)
    }

    /// Split into disjoint sub-communicators by `color`; ranks within a
    /// color are ordered by `(key, global_rank)`. Collective over the
    /// parent. `label` names the child for traces and logs.
    ///
    /// ```
    /// use xg_comm::World;
    ///
    /// // Split 4 ranks into even/odd pairs; each pair sums its ranks.
    /// let out = World::new(4).run(|c| {
    ///     let pair = c.split((c.rank() % 2) as u64, c.rank() as u64, "pair");
    ///     let mut v = vec![c.rank() as f64];
    ///     pair.all_reduce_sum_f64(&mut v);
    ///     v[0]
    /// });
    /// assert_eq!(out, vec![2.0, 4.0, 2.0, 4.0]); // 0+2, 1+3
    /// ```
    pub fn split(&self, color: u64, key: u64, label: &str) -> Communicator {
        let world = self.world.clone();
        let world2 = self.world.clone();
        let grank = self.global_rank;
        let res = self
            .slot
            .try_exchange(
                self.rank,
                (color, key, grank),
                move |items| {
                    // Group by color; order members by (key, global_rank).
                    let mut groups: HashMap<u64, Vec<(u64, usize)>> = HashMap::new();
                    for (c, k, g) in items {
                        groups.entry(c).or_default().push((k, g));
                    }
                    let mut out: HashMap<u64, (Arc<Slot>, Vec<usize>, u64)> = HashMap::new();
                    for (c, mut v) in groups {
                        v.sort_unstable();
                        let members: Vec<usize> = v.into_iter().map(|(_, g)| g).collect();
                        let slot = Arc::new(Slot::new(members.len()));
                        world2.register_slot(&slot);
                        let id = world2.next_comm_id.fetch_add(1, Ordering::Relaxed);
                        out.insert(c, (slot, members, id));
                    }
                    out
                },
                self.world.deadline,
            )
            .unwrap_or_else(|e| {
                std::panic::panic_any(self.slot_error(OpKind::Barrier, e))
            });
        let (slot, members, comm_id) = res.get(&color).expect("own color must exist").clone();
        let rank = members
            .iter()
            .position(|&g| g == grank)
            .expect("this rank must be in its own color group");
        Communicator {
            rank,
            global_rank: grank,
            members: Arc::new(members),
            slot,
            world,
            log: self.log.clone(),
            label: Arc::from(label),
            comm_id,
        }
    }

    /// Blocking typed send to communicator rank `dest`.
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, data: T) {
        self.try_send(dest, tag, data).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::send`]. Delivery itself cannot block; the
    /// error case is this rank's own injected fault firing here.
    pub fn try_send<T: Send + 'static>(
        &self,
        dest: usize,
        tag: u64,
        data: T,
    ) -> Result<(), CommError> {
        assert!(dest < self.size(), "send dest out of range");
        self.preflight()?;
        let bytes = std::mem::size_of::<T>() as u64;
        self.log.record(OpKind::Send, &self.label, &self.members, bytes);
        let gdest = self.members[dest];
        let full_tag = (self.comm_id << 24) | (tag & 0xFF_FFFF);
        self.world.mailboxes[gdest].deliver(self.global_rank, full_tag, Box::new(data));
        Ok(())
    }

    /// Blocking typed receive from communicator rank `src`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        self.try_recv(src, tag).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Communicator::recv`]: a dead peer or an expired deadline
    /// yields a typed [`CommError`] instead of blocking forever.
    pub fn try_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Result<T, CommError> {
        assert!(src < self.size(), "recv src out of range");
        self.preflight()?;
        let idx = self.log.record(OpKind::Recv, &self.label, &self.members, 0);
        let start = xg_obs::enabled().then(std::time::Instant::now);
        let gsrc = self.members[src];
        let full_tag = (self.comm_id << 24) | (tag & 0xFF_FFFF);
        let out = self.world.mailboxes[self.global_rank]
            .try_recv(gsrc, full_tag, self.world.deadline);
        if let Some(start) = start {
            self.log.set_elapsed(idx, start.elapsed().as_micros() as u64);
        }
        if let Err(CommError::Timeout { .. }) = &out {
            // The sender never showed up within the deadline; presume it
            // dead so the rest of the world fails fast too.
            self.world.fail_all(gsrc, "recv timed out");
        }
        out
    }
}
