//! Seeded fault injection for the thread-backed MPI substitute.
//!
//! Real ensemble jobs at XGYRO scale run long enough that node failures are
//! an operational fact, not a corner case: a k-member ensemble occupies k×
//! the nodes of one CGYRO run, so its job-level MTBF is k× worse. This
//! module provides the substrate for exercising that regime
//! deterministically:
//!
//! * a [`FaultPlan`] describes *what* goes wrong — which world rank, at
//!   which operation count, in which way ([`FaultKind`]);
//! * [`CommError`] is the typed result surviving ranks observe when the
//!   plan fires, replacing an indefinite hang inside a blocking collective;
//! * plans are injected via [`crate::World::with_fault_plan`] and surfaced
//!   through [`crate::World::run_fallible`].
//!
//! Injection is **deterministic**: the trigger is a per-rank count of
//! communication operations issued (not wall-clock), so a seeded plan
//! reproduces the same failure point on every run — the property the
//! degraded-mode equivalence tests rely on.

use std::sync::atomic::{AtomicU64, Ordering};

/// Typed communication failure observed by a surviving rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank is known dead (crashed, or evicted after a timeout);
    /// the collective or receive cannot complete.
    PeerFailed {
        /// Global (world) rank of the failed peer.
        rank: usize,
        /// Human-readable cause ("injected crash at op 17", "timeout", …).
        detail: String,
    },
    /// A blocking wait exceeded the configured deadline with no progress
    /// and no identified dead peer (e.g. a stalled — not crashed — rank).
    Timeout {
        /// Operation that timed out ("AllReduce", "Recv", …).
        op: String,
        /// How long the rank waited before giving up.
        waited_ms: u64,
        /// Global ranks that had not arrived when the deadline expired
        /// (best effort; empty when unknown).
        missing: Vec<usize>,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerFailed { rank, detail } => {
                write!(f, "peer rank {rank} failed: {detail}")
            }
            CommError::Timeout { op, waited_ms, missing } => {
                write!(f, "{op} timed out after {waited_ms} ms; missing ranks {missing:?}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// What an injected fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank dies: every peer's blocking operation returns
    /// [`CommError::PeerFailed`], and the rank itself returns the same
    /// error from the operation it crashed at.
    Crash,
    /// The rank goes silent for this many milliseconds before issuing the
    /// operation. Meant to exceed the world deadline, so peers observe
    /// [`CommError::Timeout`]; the stalled rank finds the collective
    /// aborted when it wakes.
    Stall(u64),
    /// The rank is late by this many milliseconds but recovers. Meant to
    /// stay under the deadline: no error anywhere, but the wait shows up
    /// in the traffic trace as an [`crate::OpKind::Fault`] record.
    Delay(u64),
}

/// One scheduled fault: `rank` misbehaves when issuing its `at_op`-th
/// communication operation (0-based, counted per rank across all
/// communicators).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Global (world) rank that misbehaves.
    pub rank: usize,
    /// 0-based index of the communication operation at which to fire.
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults for one [`crate::World`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault; builder-style.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Convenience: crash `rank` at its `at_op`-th operation.
    pub fn crash(rank: usize, at_op: u64) -> Self {
        Self::new().with(FaultSpec { rank, at_op, kind: FaultKind::Crash })
    }

    /// Seeded single-crash plan: derive (rank, op index) from `seed` via
    /// SplitMix64 so property tests can sweep random failure points
    /// reproducibly. The op index lands in `[0, max_op)`.
    pub fn seeded_crash(seed: u64, world_size: usize, max_op: u64) -> Self {
        assert!(world_size > 0 && max_op > 0, "seeded_crash needs a non-empty domain");
        let r = splitmix64(seed);
        let o = splitmix64(seed.wrapping_add(1));
        Self::crash((r % world_size as u64) as usize, o % max_op)
    }

    /// The scheduled faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Live per-world injection state: the plan plus per-rank op counters.
pub(crate) struct FaultState {
    plan: FaultPlan,
    counters: Vec<AtomicU64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, world_size: usize) -> Self {
        Self { plan, counters: (0..world_size).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Count one operation issued by `global_rank` and return the fault
    /// scheduled at that point, if any.
    pub(crate) fn on_op(&self, global_rank: usize) -> Option<FaultKind> {
        let n = self.counters[global_rank].fetch_add(1, Ordering::Relaxed);
        self.plan
            .specs
            .iter()
            .find(|s| s.rank == global_rank && s.at_op == n)
            .map(|s| s.kind)
    }

    /// Current op count for `global_rank` (for diagnostics).
    pub(crate) fn ops_issued(&self, global_rank: usize) -> u64 {
        self.counters[global_rank].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic_and_in_range() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded_crash(seed, 8, 100);
            let b = FaultPlan::seeded_crash(seed, 8, 100);
            assert_eq!(a, b);
            let s = &a.specs()[0];
            assert!(s.rank < 8);
            assert!(s.at_op < 100);
            assert_eq!(s.kind, FaultKind::Crash);
        }
    }

    #[test]
    fn fault_state_fires_exactly_once_at_the_scheduled_op() {
        let st = FaultState::new(FaultPlan::crash(1, 2), 3);
        assert_eq!(st.on_op(1), None); // op 0
        assert_eq!(st.on_op(1), None); // op 1
        assert_eq!(st.on_op(1), Some(FaultKind::Crash)); // op 2
        assert_eq!(st.on_op(1), None); // op 3
        assert_eq!(st.on_op(0), None);
        assert_eq!(st.ops_issued(1), 4);
        assert_eq!(st.ops_issued(2), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CommError::PeerFailed { rank: 3, detail: "injected crash".into() };
        assert!(e.to_string().contains("rank 3"));
        let t = CommError::Timeout { op: "AllReduce".into(), waited_ms: 50, missing: vec![2] };
        assert!(t.to_string().contains("AllReduce"));
        assert!(t.to_string().contains("[2]"));
    }
}
