//! The core rendezvous primitive behind every collective.
//!
//! A [`Slot`] implements an epoch-numbered deposit/assemble/drain protocol
//! over a mutex + condvar: each participating rank deposits one boxed
//! contribution, the last depositor assembles the full vector and publishes
//! it behind an `Arc`, every rank takes a handle, and the last rank to leave
//! resets the slot and advances the epoch so the next collective can begin.
//!
//! The protocol is sequentially consistent per communicator (collectives on
//! one communicator are totally ordered by the epoch counter) and
//! independent across communicators (each has its own slot), which is what
//! MPI guarantees for blocking collectives on disjoint communicators.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::Arc;
use std::time::{Duration, Instant};

type BoxedAny = Box<dyn Any + Send>;
type SharedAny = Arc<dyn Any + Send + Sync>;

/// Why a fallible exchange could not complete.
///
/// Distinct from poisoning: a poisoned slot means a rank *panicked* and the
/// whole run is aborting (untyped, legacy path); a failed slot means a rank
/// is *known dead or unresponsive* and survivors get this typed error to
/// act on (e.g. degraded-mode recovery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotError {
    /// A participant is known dead. `rank` is the slot-rank index of the
    /// culprit when known (first missing depositor for timeouts).
    Failed {
        /// Slot-rank index of the dead participant.
        rank: usize,
        /// Cause ("injected crash", "collective timed out", …).
        detail: String,
    },
    /// The deadline expired before the round completed.
    Timeout {
        /// Milliseconds waited before giving up.
        waited_ms: u64,
        /// Slot-rank indices that had not deposited when time ran out.
        missing: Vec<usize>,
    },
}

/// Rendezvous slot for one communicator.
pub struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

struct SlotState {
    epoch: u64,
    arrived: usize,
    departed: usize,
    deposits: Vec<Option<BoxedAny>>,
    result: Option<SharedAny>,
    poisoned: bool,
    failed: Option<(usize, String)>,
}

impl Slot {
    /// New slot for `size` participants.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "a communicator needs at least one rank");
        Self {
            state: Mutex::new(SlotState {
                epoch: 0,
                arrived: 0,
                departed: 0,
                deposits: (0..size).map(|_| None).collect(),
                result: None,
                poisoned: false,
                failed: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Mark the slot poisoned (a participant died); wakes all waiters, which
    /// then panic instead of blocking forever.
    pub fn poison(&self) {
        self.state.lock().poisoned = true;
        self.cv.notify_all();
    }

    /// Mark the slot failed (participant `rank` is known dead); wakes all
    /// waiters, which then surface [`SlotError::Failed`] from
    /// [`Slot::try_exchange`] instead of blocking forever. The first cause
    /// wins; later calls are no-ops.
    pub fn fail(&self, rank: usize, detail: &str) {
        let mut st = self.state.lock();
        if st.failed.is_none() {
            st.failed = Some((rank, detail.to_string()));
        }
        self.cv.notify_all();
    }

    /// Number of participants.
    pub fn size(&self) -> usize {
        self.state.lock().deposits.len()
    }

    /// Execute one collective round: deposit `contribution` as `rank`, wait
    /// for all ranks, and return the assembled result produced by
    /// `assemble` (run exactly once, by the last depositor, over the
    /// contributions in rank order).
    ///
    /// All ranks must call with the same types `T`/`R` in the same round.
    pub fn exchange<T, R, F>(&self, rank: usize, contribution: T, assemble: F) -> Arc<R>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>) -> R,
    {
        match self.try_exchange(rank, contribution, assemble, None) {
            Ok(r) => r,
            Err(SlotError::Failed { rank, detail }) => {
                panic!("collective aborted: participant {rank} failed: {detail}")
            }
            Err(SlotError::Timeout { .. }) => {
                unreachable!("no deadline was set, so the wait cannot time out")
            }
        }
    }

    /// Like [`Slot::exchange`], but with an optional deadline: instead of
    /// blocking indefinitely on a dead or stalled peer, the wait gives up
    /// after `deadline`, marks the slot failed (so every other participant
    /// fails fast too) and returns [`SlotError::Timeout`]. A slot another
    /// participant already marked failed yields [`SlotError::Failed`]
    /// immediately.
    ///
    /// A panicked (poisoned) peer still panics — that is the legacy
    /// untyped abort path and is deliberately left intact.
    pub fn try_exchange<T, R, F>(
        &self,
        rank: usize,
        contribution: T,
        assemble: F,
        deadline: Option<Duration>,
    ) -> Result<Arc<R>, SlotError>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>) -> R,
    {
        let start = Instant::now();
        let mut st = self.state.lock();
        let size = st.deposits.len();
        assert!(rank < size, "rank {rank} out of range for slot of {size}");

        // Wait for the previous round to fully drain before depositing.
        while st.result.is_some() && !st.poisoned && st.failed.is_none() {
            if self.wait_step(&mut st, deadline, start) {
                return Err(self.give_up(&mut st, rank, start));
            }
        }
        assert!(!st.poisoned, "collective aborted: another rank panicked");
        if let Some((r, detail)) = &st.failed {
            return Err(SlotError::Failed { rank: *r, detail: detail.clone() });
        }
        let epoch = st.epoch;
        assert!(
            st.deposits[rank].is_none(),
            "rank {rank} deposited twice in one collective (protocol misuse)"
        );
        st.deposits[rank] = Some(Box::new(contribution));
        st.arrived += 1;

        if st.arrived == size {
            // Last depositor assembles.
            let items: Vec<T> = st
                .deposits
                .iter_mut()
                .map(|d| {
                    *d.take()
                        .expect("missing deposit")
                        .downcast::<T>()
                        .expect("mixed contribution types in one collective")
                })
                .collect();
            let result = assemble(items);
            st.result = Some(Arc::new(result));
            st.arrived = 0;
            self.cv.notify_all();
        } else {
            while st.epoch == epoch && st.result.is_none() && !st.poisoned && st.failed.is_none()
            {
                if self.wait_step(&mut st, deadline, start) {
                    return Err(self.give_up(&mut st, rank, start));
                }
            }
            assert!(!st.poisoned, "collective aborted: another rank panicked");
            // Prefer delivering a completed round over reporting a failure
            // that arrived concurrently; the next operation will fail.
            if st.epoch == epoch && st.result.is_none() {
                if let Some((r, detail)) = &st.failed {
                    return Err(SlotError::Failed { rank: *r, detail: detail.clone() });
                }
            }
        }

        let shared = st.result.clone().expect("result must be present");
        st.departed += 1;
        if st.departed == size {
            st.result = None;
            st.departed = 0;
            st.epoch = st.epoch.wrapping_add(1);
            self.cv.notify_all();
        }
        drop(st);

        Ok(shared.downcast::<R>().expect("mixed result types in one collective"))
    }

    /// One bounded (or unbounded) condvar wait; true means the deadline
    /// expired.
    fn wait_step(
        &self,
        st: &mut parking_lot::MutexGuard<'_, SlotState>,
        deadline: Option<Duration>,
        start: Instant,
    ) -> bool {
        match deadline {
            None => {
                self.cv.wait(st);
                false
            }
            Some(d) => {
                let elapsed = start.elapsed();
                if elapsed >= d {
                    return true;
                }
                self.cv.wait_for(st, d - elapsed);
                // Re-check conditions and remaining time on the next loop
                // iteration; spurious wakeups are handled the same way.
                false
            }
        }
    }

    /// Deadline expired: build the timeout error. Marking the rest of the
    /// world failed is the caller's job — the slot only knows slot-local
    /// rank indices, while failure records carry global ranks.
    fn give_up(
        &self,
        st: &mut parking_lot::MutexGuard<'_, SlotState>,
        rank: usize,
        start: Instant,
    ) -> SlotError {
        let missing: Vec<usize> = st
            .deposits
            .iter()
            .enumerate()
            .filter(|(i, d)| *i != rank && d.is_none())
            .map(|(i, _)| i)
            .collect();
        SlotError::Timeout { waited_ms: start.elapsed().as_millis() as u64, missing }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_rank_exchange() {
        let slot = Slot::new(1);
        let r = slot.exchange(0, 41, |v| v[0] + 1);
        assert_eq!(*r, 42);
    }

    #[test]
    fn contributions_assembled_in_rank_order() {
        let slot = Arc::new(Slot::new(4));
        let results: Vec<Vec<usize>> = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let slot = slot.clone();
                    s.spawn(move || (*slot.exchange(r, r * 10, |v| v)).clone())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for res in results {
            assert_eq!(res, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn many_rounds_no_crosstalk() {
        const ROUNDS: usize = 200;
        let slot = Arc::new(Slot::new(3));
        thread::scope(|s| {
            for r in 0..3 {
                let slot = slot.clone();
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        let sum = slot.exchange(r, round + r, |v| v.iter().sum::<usize>());
                        assert_eq!(*sum, 3 * round + 3);
                    }
                });
            }
        });
    }

    #[test]
    fn assemble_runs_once_per_round() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let slot = Arc::new(Slot::new(4));
        let count = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for r in 0..4 {
                let slot = slot.clone();
                let count = count.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        slot.exchange(r, (), |_| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 50);
    }

    #[test]
    fn heterogeneous_rounds_on_same_slot() {
        // Different T/R types in successive rounds are fine; within a round
        // they must match.
        let slot = Arc::new(Slot::new(2));
        thread::scope(|s| {
            for r in 0..2 {
                let slot = slot.clone();
                s.spawn(move || {
                    let a = slot.exchange(r, r as f64, |v| v.iter().sum::<f64>());
                    assert_eq!(*a, 1.0);
                    let b = slot.exchange(r, format!("r{r}"), |v| v.join(","));
                    assert_eq!(*b, "r0,r1");
                });
            }
        });
    }
}
