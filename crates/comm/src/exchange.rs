//! The core rendezvous primitive behind every collective.
//!
//! A [`Slot`] implements an epoch-numbered deposit/assemble/drain protocol
//! over a mutex + condvar: each participating rank deposits one boxed
//! contribution, the last depositor assembles the full vector and publishes
//! it behind an `Arc`, every rank takes a handle, and the last rank to leave
//! resets the slot and advances the epoch so the next collective can begin.
//!
//! The protocol is sequentially consistent per communicator (collectives on
//! one communicator are totally ordered by the epoch counter) and
//! independent across communicators (each has its own slot), which is what
//! MPI guarantees for blocking collectives on disjoint communicators.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::Arc;

type BoxedAny = Box<dyn Any + Send>;
type SharedAny = Arc<dyn Any + Send + Sync>;

/// Rendezvous slot for one communicator.
pub struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

struct SlotState {
    epoch: u64,
    arrived: usize,
    departed: usize,
    deposits: Vec<Option<BoxedAny>>,
    result: Option<SharedAny>,
    poisoned: bool,
}

impl Slot {
    /// New slot for `size` participants.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "a communicator needs at least one rank");
        Self {
            state: Mutex::new(SlotState {
                epoch: 0,
                arrived: 0,
                departed: 0,
                deposits: (0..size).map(|_| None).collect(),
                result: None,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Mark the slot poisoned (a participant died); wakes all waiters, which
    /// then panic instead of blocking forever.
    pub fn poison(&self) {
        self.state.lock().poisoned = true;
        self.cv.notify_all();
    }

    /// Number of participants.
    pub fn size(&self) -> usize {
        self.state.lock().deposits.len()
    }

    /// Execute one collective round: deposit `contribution` as `rank`, wait
    /// for all ranks, and return the assembled result produced by
    /// `assemble` (run exactly once, by the last depositor, over the
    /// contributions in rank order).
    ///
    /// All ranks must call with the same types `T`/`R` in the same round.
    pub fn exchange<T, R, F>(&self, rank: usize, contribution: T, assemble: F) -> Arc<R>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>) -> R,
    {
        let mut st = self.state.lock();
        let size = st.deposits.len();
        assert!(rank < size, "rank {rank} out of range for slot of {size}");

        // Wait for the previous round to fully drain before depositing.
        while st.result.is_some() && !st.poisoned {
            self.cv.wait(&mut st);
        }
        assert!(!st.poisoned, "collective aborted: another rank panicked");
        let epoch = st.epoch;
        assert!(
            st.deposits[rank].is_none(),
            "rank {rank} deposited twice in one collective (protocol misuse)"
        );
        st.deposits[rank] = Some(Box::new(contribution));
        st.arrived += 1;

        if st.arrived == size {
            // Last depositor assembles.
            let items: Vec<T> = st
                .deposits
                .iter_mut()
                .map(|d| {
                    *d.take()
                        .expect("missing deposit")
                        .downcast::<T>()
                        .expect("mixed contribution types in one collective")
                })
                .collect();
            let result = assemble(items);
            st.result = Some(Arc::new(result));
            st.arrived = 0;
            self.cv.notify_all();
        } else {
            while st.epoch == epoch && st.result.is_none() && !st.poisoned {
                self.cv.wait(&mut st);
            }
            assert!(!st.poisoned, "collective aborted: another rank panicked");
        }

        let shared = st.result.clone().expect("result must be present");
        st.departed += 1;
        if st.departed == size {
            st.result = None;
            st.departed = 0;
            st.epoch = st.epoch.wrapping_add(1);
            self.cv.notify_all();
        }
        drop(st);

        shared.downcast::<R>().expect("mixed result types in one collective")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_rank_exchange() {
        let slot = Slot::new(1);
        let r = slot.exchange(0, 41, |v| v[0] + 1);
        assert_eq!(*r, 42);
    }

    #[test]
    fn contributions_assembled_in_rank_order() {
        let slot = Arc::new(Slot::new(4));
        let results: Vec<Vec<usize>> = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let slot = slot.clone();
                    s.spawn(move || (*slot.exchange(r, r * 10, |v| v)).clone())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for res in results {
            assert_eq!(res, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn many_rounds_no_crosstalk() {
        const ROUNDS: usize = 200;
        let slot = Arc::new(Slot::new(3));
        thread::scope(|s| {
            for r in 0..3 {
                let slot = slot.clone();
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        let sum = slot.exchange(r, round + r, |v| v.iter().sum::<usize>());
                        assert_eq!(*sum, 3 * round + 3);
                    }
                });
            }
        });
    }

    #[test]
    fn assemble_runs_once_per_round() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let slot = Arc::new(Slot::new(4));
        let count = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for r in 0..4 {
                let slot = slot.clone();
                let count = count.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        slot.exchange(r, (), |_| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 50);
    }

    #[test]
    fn heterogeneous_rounds_on_same_slot() {
        // Different T/R types in successive rounds are fine; within a round
        // they must match.
        let slot = Arc::new(Slot::new(2));
        thread::scope(|s| {
            for r in 0..2 {
                let slot = slot.clone();
                s.spawn(move || {
                    let a = slot.exchange(r, r as f64, |v| v.iter().sum::<f64>());
                    assert_eq!(*a, 1.0);
                    let b = slot.exchange(r, format!("r{r}"), |v| v.join(","));
                    assert_eq!(*b, "r0,r1");
                });
            }
        });
    }
}
