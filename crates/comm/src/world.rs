//! The world: spawn one thread per rank and hand each a world communicator.
//!
//! This plays the role of `mpirun` + `MPI_Init`. [`World::run`] blocks until
//! every rank's closure returns and yields the per-rank results in rank
//! order. If any rank panics, all communication primitives are poisoned so
//! the remaining ranks abort promptly, and the panic is re-thrown with the
//! failing rank identified.
//!
//! For fault-tolerant callers there is [`World::run_fallible`]: combined
//! with [`World::with_deadline`] (bounded blocking waits) and
//! [`World::with_fault_plan`] (seeded fault injection), a dead or stalled
//! rank surfaces as a typed [`RankOutcome::Failed`] on every surviving rank
//! instead of hanging the job — the substrate the degraded-mode ensemble
//! recovery in `xgyro-core` is built on.

use crate::communicator::{Communicator, WorldShared};
use crate::exchange::Slot;
use crate::fault::{CommError, FaultPlan};
use crate::stats::TrafficLog;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

/// How one rank's closure ended under [`World::run_fallible`].
#[derive(Debug)]
pub enum RankOutcome<R> {
    /// The rank completed and returned a value.
    Ok(R),
    /// The rank observed a typed communication failure (dead peer,
    /// expired deadline, or its own injected crash).
    Failed(CommError),
    /// The rank panicked with something other than a [`CommError`]
    /// (message extracted best-effort).
    Panicked(String),
}

impl<R> RankOutcome<R> {
    /// True for [`RankOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, RankOutcome::Ok(_))
    }

    /// The value, if the rank completed.
    pub fn ok(self) -> Option<R> {
        match self {
            RankOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// The typed failure, if the rank failed.
    pub fn err(&self) -> Option<&CommError> {
        match self {
            RankOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Re-thrown panic payload for a rank whose panic value was neither a
/// string nor a [`CommError`]: the original payload is preserved intact so
/// callers that panic with structured values can downcast them back.
pub struct RankPanic {
    /// The rank that panicked.
    pub rank: usize,
    /// The rank's original panic payload.
    pub payload: Box<dyn std::any::Any + Send>,
}

impl std::fmt::Debug for RankPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RankPanic {{ rank: {}, payload: <opaque> }}", self.rank)
    }
}

/// A fixed-size group of simulated MPI ranks.
///
/// ```
/// use xg_comm::World;
///
/// // Four ranks sum their ranks with an AllReduce; everyone sees 6.
/// let results = World::new(4).run(|comm| {
///     let mut v = vec![comm.rank() as f64];
///     comm.all_reduce_sum_f64(&mut v);
///     v[0]
/// });
/// assert_eq!(results, vec![6.0; 4]);
/// ```
pub struct World {
    size: usize,
    deadline: Option<Duration>,
    fault_plan: Option<FaultPlan>,
}

impl World {
    /// Create a world of `size` ranks (no threads yet).
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world needs at least one rank");
        Self { size, deadline: None, fault_plan: None }
    }

    /// Bound every blocking wait (collectives and receives) by `deadline`:
    /// instead of hanging on a dead or stalled peer, operations give up
    /// and surface [`CommError::Timeout`] / [`CommError::PeerFailed`].
    /// Without a deadline, waits block forever (the legacy behavior).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Install a seeded fault-injection plan; see [`FaultPlan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` on every rank concurrently. Each invocation receives the
    /// world [`Communicator`] for its rank; results are returned in rank
    /// order. Also returns each rank's traffic log alongside its result.
    pub fn run_with_logs<F, R>(&self, f: F) -> Vec<(R, Vec<crate::stats::OpRecord>)>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        let shared = WorldShared::new(self.size, self.deadline, self.fault_plan.clone());
        let world_slot = Arc::new(Slot::new(self.size));
        shared.register_slot(&world_slot);
        let logs: Vec<Arc<TrafficLog>> = (0..self.size).map(|_| TrafficLog::new()).collect();
        let f = &f;

        let results: Vec<Result<R, Box<dyn std::any::Any + Send>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.size)
                    .map(|rank| {
                        let comm = Communicator::new_world(
                            rank,
                            self.size,
                            world_slot.clone(),
                            shared.clone(),
                            logs[rank].clone(),
                        );
                        let shared = shared.clone();
                        scope.spawn(move || {
                            let out =
                                std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                            if out.is_err() {
                                shared.poison_all();
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(rank, h)| {
                        h.join().unwrap_or_else(|e| {
                            // The worker thread itself died (panic escaped
                            // the catch_unwind, e.g. inside poison_all).
                            // Report which rank's thread it was instead of
                            // tearing down the harness.
                            shared.poison_all();
                            Err(Box::new(format!(
                                "worker thread for rank {rank} died: {}",
                                panic_message(&e)
                            )) as Box<dyn std::any::Any + Send>)
                        })
                    })
                    .collect()
            });

        let mut out = Vec::with_capacity(self.size);
        let mut failures: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
        for (rank, res) in results.into_iter().enumerate() {
            match res {
                Ok(r) => out.push((r, logs[rank].records())),
                Err(e) => failures.push((rank, e)),
            }
        }
        if !failures.is_empty() {
            // Two-pass root-cause selection: prefer the first failure a
            // rank *originated* over panics induced by another rank's
            // death; fall back to the first failure in rank order when
            // every payload looks induced.
            let root = failures
                .iter()
                .position(|(rank, e)| is_root_cause(*rank, e))
                .unwrap_or(0);
            let (rank, e) = failures.swap_remove(root);
            rethrow(rank, e);
        }
        out
    }

    /// Run `f` on every rank; return the per-rank results in rank order.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        self.run_with_logs(f).into_iter().map(|(r, _)| r).collect()
    }

    /// Run `f` on every rank, surviving failures: instead of re-throwing
    /// the first panic, every rank's ending is reported as a
    /// [`RankOutcome`] next to its traffic log.
    ///
    /// Typed communication failures — whether returned as `Err` by `f` or
    /// thrown as a [`CommError`] panic payload from the plain (panicking)
    /// collectives deep inside an unmodified call stack — come back as
    /// [`RankOutcome::Failed`]. Only non-`CommError` panics poison the
    /// world and report as [`RankOutcome::Panicked`].
    pub fn run_fallible<F, R>(&self, f: F) -> Vec<(RankOutcome<R>, Vec<crate::stats::OpRecord>)>
    where
        F: Fn(Communicator) -> Result<R, CommError> + Send + Sync,
        R: Send,
    {
        let shared = WorldShared::new(self.size, self.deadline, self.fault_plan.clone());
        let world_slot = Arc::new(Slot::new(self.size));
        shared.register_slot(&world_slot);
        let logs: Vec<Arc<TrafficLog>> = (0..self.size).map(|_| TrafficLog::new()).collect();
        let f = &f;

        let outcomes: Vec<RankOutcome<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.size)
                .map(|rank| {
                    let comm = Communicator::new_world(
                        rank,
                        self.size,
                        world_slot.clone(),
                        shared.clone(),
                        logs[rank].clone(),
                    );
                    let shared = shared.clone();
                    scope.spawn(move || {
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(comm))) {
                            Ok(Ok(r)) => RankOutcome::Ok(r),
                            Ok(Err(e)) => {
                                // A rank bowing out early is indistinguishable
                                // from death for its peers; make sure they
                                // fail fast rather than time out one by one.
                                // (No-op if the world is already failed —
                                // the first cause wins.)
                                shared.fail_all(rank, &format!("rank {rank} aborted: {e}"));
                                RankOutcome::Failed(e)
                            }
                            Err(payload) => match payload.downcast::<CommError>() {
                                Ok(e) => RankOutcome::Failed(*e),
                                Err(payload) => {
                                    shared.poison_all();
                                    RankOutcome::Panicked(panic_message(&payload))
                                }
                            },
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| {
                    h.join().unwrap_or_else(|e| {
                        shared.poison_all();
                        RankOutcome::Panicked(format!(
                            "worker thread for rank {rank} died: {}",
                            panic_message(&e)
                        ))
                    })
                })
                .collect()
        });

        outcomes
            .into_iter()
            .enumerate()
            .map(|(rank, o)| (o, logs[rank].records()))
            .collect()
    }
}

fn panic_message(e: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else if let Some(c) = e.downcast_ref::<CommError>() {
        c.to_string()
    } else if let Some(p) = e.downcast_ref::<RankPanic>() {
        format!("rank {} panicked: {}", p.rank, panic_message(&p.payload))
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Did `rank` originate this failure, or was it induced by another rank's
/// death (poisoning, typed peer-failure, timeout)?
fn is_root_cause(rank: usize, e: &Box<dyn std::any::Any + Send>) -> bool {
    if let Some(c) = e.downcast_ref::<CommError>() {
        return match c {
            CommError::PeerFailed { rank: r, .. } => *r == rank,
            CommError::Timeout { .. } => false,
        };
    }
    !panic_message(e).contains("another rank panicked")
}

/// Re-throw a rank failure: string-like payloads (including [`CommError`])
/// keep the legacy `"rank N panicked: <msg>"` format; any other payload is
/// preserved intact inside a [`RankPanic`] so callers can downcast it.
fn rethrow(rank: usize, e: Box<dyn std::any::Any + Send>) -> ! {
    let stringy = e.is::<&str>() || e.is::<String>() || e.is::<CommError>();
    if stringy {
        std::panic::panic_any(format!("rank {rank} panicked: {}", panic_message(&e)));
    }
    std::panic::panic_any(RankPanic { rank, payload: e })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSpec};

    #[test]
    fn ranks_get_distinct_ids_in_order() {
        let ids = World::new(6).run(|c| (c.rank(), c.size()));
        assert_eq!(ids, (0..6).map(|r| (r, 6)).collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_world() {
        let out = World::new(1).run(|c| {
            c.barrier();
            c.rank() + 100
        });
        assert_eq!(out, vec![100]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn panic_in_rank_propagates_with_rank_id() {
        World::new(4).run(|c| {
            if c.rank() == 2 {
                panic!("boom");
            }
            // Other ranks block in a collective; poisoning must free them.
            c.barrier();
        });
    }

    #[test]
    fn root_cause_panic_wins_over_induced_aborts() {
        // Even when a low-numbered rank reports the induced abort first,
        // the re-thrown panic must name the rank that originated it.
        let err = std::panic::catch_unwind(|| {
            World::new(4).run(|c| {
                if c.rank() == 3 {
                    panic!("original failure");
                }
                c.barrier();
            });
        })
        .unwrap_err();
        let msg = panic_message(&err);
        assert!(msg.contains("rank 3 panicked"), "got: {msg}");
        assert!(msg.contains("original failure"), "got: {msg}");
    }

    #[test]
    fn non_string_payloads_are_preserved() {
        #[derive(Debug, PartialEq)]
        struct Custom(u32);
        let err = std::panic::catch_unwind(|| {
            World::new(3).run(|c| {
                if c.rank() == 1 {
                    std::panic::panic_any(Custom(7));
                }
                c.barrier();
            });
        })
        .unwrap_err();
        let rp = err.downcast::<RankPanic>().expect("payload must be a RankPanic");
        assert_eq!(rp.rank, 1);
        assert_eq!(*rp.payload.downcast::<Custom>().unwrap(), Custom(7));
    }

    #[test]
    fn logs_are_returned_per_rank() {
        let out = World::new(3).run_with_logs(|c| {
            c.set_phase("str");
            c.barrier();
            c.rank()
        });
        for (rank, (r, log)) in out.into_iter().enumerate() {
            assert_eq!(r, rank);
            assert_eq!(log.len(), 1);
            assert_eq!(log[0].phase, "str");
            assert_eq!(log[0].participants, 3);
        }
    }

    #[test]
    fn run_fallible_without_faults_returns_ok_everywhere() {
        let out = World::new(4).run_fallible(|c| {
            let mut v = vec![c.rank() as f64];
            c.try_all_reduce_sum_f64(&mut v)?;
            Ok(v[0])
        });
        assert_eq!(out.len(), 4);
        for (o, log) in out {
            assert_eq!(o.ok(), Some(6.0));
            assert_eq!(log.len(), 1);
        }
    }

    #[test]
    fn injected_crash_yields_typed_failures_not_hangs() {
        let plan = FaultPlan::new().with(FaultSpec {
            rank: 1,
            at_op: 2,
            kind: FaultKind::Crash,
        });
        let out = World::new(3)
            .with_deadline(Duration::from_secs(5))
            .with_fault_plan(plan)
            .run_fallible(|c| {
                for _ in 0..5 {
                    c.try_barrier()?;
                }
                Ok(c.rank())
            });
        for (rank, (o, _)) in out.iter().enumerate() {
            let e = o.err().unwrap_or_else(|| panic!("rank {rank} must fail, got {o:?}"));
            match e {
                CommError::PeerFailed { rank: r, .. } => assert_eq!(*r, 1),
                other => panic!("rank {rank}: expected PeerFailed, got {other}"),
            }
        }
    }

    #[test]
    fn deep_panicking_collectives_surface_typed_errors() {
        // The sim stack uses the plain (panicking) collectives; a crash
        // must still come back typed through run_fallible.
        let plan = FaultPlan::crash(0, 1);
        let out = World::new(2)
            .with_deadline(Duration::from_secs(5))
            .with_fault_plan(plan)
            .run_fallible(|c| {
                c.barrier(); // op 0
                c.barrier(); // op 1: rank 0 crashes here
                Ok(())
            });
        for (o, _) in &out {
            assert!(matches!(o, RankOutcome::Failed(CommError::PeerFailed { rank: 0, .. })));
        }
    }
}
