//! The world: spawn one thread per rank and hand each a world communicator.
//!
//! This plays the role of `mpirun` + `MPI_Init`. [`World::run`] blocks until
//! every rank's closure returns and yields the per-rank results in rank
//! order. If any rank panics, all communication primitives are poisoned so
//! the remaining ranks abort promptly, and the panic is re-thrown with the
//! failing rank identified.

use crate::communicator::{Communicator, WorldShared};
use crate::exchange::Slot;
use crate::stats::TrafficLog;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// A fixed-size group of simulated MPI ranks.
///
/// ```
/// use xg_comm::World;
///
/// // Four ranks sum their ranks with an AllReduce; everyone sees 6.
/// let results = World::new(4).run(|comm| {
///     let mut v = vec![comm.rank() as f64];
///     comm.all_reduce_sum_f64(&mut v);
///     v[0]
/// });
/// assert_eq!(results, vec![6.0; 4]);
/// ```
pub struct World {
    size: usize,
}

impl World {
    /// Create a world of `size` ranks (no threads yet).
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world needs at least one rank");
        Self { size }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` on every rank concurrently. Each invocation receives the
    /// world [`Communicator`] for its rank; results are returned in rank
    /// order. Also returns each rank's traffic log alongside its result.
    pub fn run_with_logs<F, R>(&self, f: F) -> Vec<(R, Vec<crate::stats::OpRecord>)>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        let shared = WorldShared::new(self.size);
        let world_slot = Arc::new(Slot::new(self.size));
        shared.register_slot(&world_slot);
        let logs: Vec<Arc<TrafficLog>> = (0..self.size).map(|_| TrafficLog::new()).collect();
        let f = &f;

        let results: Vec<Result<R, Box<dyn std::any::Any + Send>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.size)
                    .map(|rank| {
                        let comm = Communicator::new_world(
                            rank,
                            self.size,
                            world_slot.clone(),
                            shared.clone(),
                            logs[rank].clone(),
                        );
                        let shared = shared.clone();
                        scope.spawn(move || {
                            let out =
                                std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                            if out.is_err() {
                                shared.poison_all();
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rank thread itself must not die"))
                    .collect()
            });

        let mut out = Vec::with_capacity(self.size);
        let mut first_failure: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (rank, res) in results.into_iter().enumerate() {
            match res {
                Ok(r) => out.push((r, logs[rank].records())),
                Err(e) => {
                    // Prefer reporting a root-cause panic over the induced
                    // "another rank panicked" aborts.
                    let induced = panic_is_induced(&e);
                    match &first_failure {
                        Some((_, prev)) if !panic_is_induced(prev) => {}
                        _ if !induced => first_failure = Some((rank, e)),
                        None => first_failure = Some((rank, e)),
                        _ => {}
                    }
                }
            }
        }
        if let Some((rank, e)) = first_failure {
            std::panic::panic_any(format!("rank {rank} panicked: {}", panic_message(&e)));
        }
        out
    }

    /// Run `f` on every rank; return the per-rank results in rank order.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        self.run_with_logs(f).into_iter().map(|(r, _)| r).collect()
    }
}

fn panic_message(e: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn panic_is_induced(e: &Box<dyn std::any::Any + Send>) -> bool {
    panic_message(e).contains("another rank panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_get_distinct_ids_in_order() {
        let ids = World::new(6).run(|c| (c.rank(), c.size()));
        assert_eq!(ids, (0..6).map(|r| (r, 6)).collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_world() {
        let out = World::new(1).run(|c| {
            c.barrier();
            c.rank() + 100
        });
        assert_eq!(out, vec![100]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn panic_in_rank_propagates_with_rank_id() {
        World::new(4).run(|c| {
            if c.rank() == 2 {
                panic!("boom");
            }
            // Other ranks block in a collective; poisoning must free them.
            c.barrier();
        });
    }

    #[test]
    fn logs_are_returned_per_rank() {
        let out = World::new(3).run_with_logs(|c| {
            c.set_phase("str");
            c.barrier();
            c.rank()
        });
        for (rank, (r, log)) in out.into_iter().enumerate() {
            assert_eq!(r, rank);
            assert_eq!(log.len(), 1);
            assert_eq!(log[0].phase, "str");
            assert_eq!(log[0].participants, 3);
        }
    }
}
