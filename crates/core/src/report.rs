//! Memory-sharing arithmetic and trace summaries for ensemble runs.

use crate::ensemble::EnsembleConfig;
use xg_comm::{OpKind, OpRecord};
use xg_sim::cmat_total_bytes;

/// The cmat memory law of the paper, evaluated analytically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmatMemoryLaw {
    /// Bytes of the full (per-simulation) constant tensor.
    pub total_bytes: u64,
    /// Per-rank bytes in CGYRO mode (split over `n1·n2` ranks).
    pub cgyro_per_rank: u64,
    /// Per-rank bytes in XGYRO mode (split over `k·n1·n2` ranks).
    pub xgyro_per_rank: u64,
    /// Ensemble size.
    pub k: usize,
}

/// Evaluate the law for an ensemble configuration.
///
/// In CGYRO each of the `k` simulations holds its own full copy split over
/// its `n1` ranks (per toroidal slice); in XGYRO one copy is split over all
/// `k·n1` ranks — per-rank consumption drops by exactly `k`.
pub fn cmat_memory_law(config: &EnsembleConfig) -> CmatMemoryLaw {
    let total = cmat_total_bytes(&config.members()[0]);
    let per_sim_ranks = config.ranks_per_sim() as u64;
    CmatMemoryLaw {
        total_bytes: total,
        cgyro_per_rank: total / per_sim_ranks,
        xgyro_per_rank: total / (per_sim_ranks * config.k() as u64),
        k: config.k(),
    }
}

/// Summary of one rank's trace: AllReduce participant counts and byte
/// volumes per phase, and which communicator labels appeared where.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// (phase, op, comm label) → (count, total bytes, participants).
    pub rows: Vec<TraceRow>,
}

/// One aggregated trace row.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Logical phase.
    pub phase: String,
    /// Operation kind.
    pub op: OpKind,
    /// Communicator label.
    pub comm_label: String,
    /// Participant count.
    pub participants: usize,
    /// Number of operations.
    pub count: usize,
    /// Total bytes.
    pub bytes: u64,
    /// Total measured wait microseconds (0 when the trace was captured
    /// with timing off).
    pub elapsed_us: u64,
}

/// Aggregate a per-rank trace.
pub fn summarize_trace(records: &[OpRecord]) -> TraceSummary {
    let mut rows: Vec<TraceRow> = Vec::new();
    for r in records {
        if let Some(row) = rows.iter_mut().find(|w| {
            w.phase == r.phase
                && w.op == r.op
                && w.comm_label == r.comm_label
                && w.participants == r.participants
        }) {
            row.count += 1;
            row.bytes += r.bytes;
            row.elapsed_us += r.elapsed_us;
        } else {
            rows.push(TraceRow {
                phase: r.phase.clone(),
                op: r.op,
                comm_label: r.comm_label.clone(),
                participants: r.participants,
                count: 1,
                bytes: r.bytes,
                elapsed_us: r.elapsed_us,
            });
        }
    }
    rows.sort_by(|a, b| {
        (&a.phase, format!("{}", a.op), &a.comm_label)
            .cmp(&(&b.phase, format!("{}", b.op), &b.comm_label))
    });
    TraceSummary { rows }
}

impl TraceSummary {
    /// Find the str-phase AllReduce row (the paper's headline metric).
    pub fn str_allreduce(&self) -> Option<&TraceRow> {
        self.rows
            .iter()
            .find(|r| r.phase == "str" && r.op == OpKind::AllReduce)
    }

    /// Find the coll-phase AllToAll row.
    pub fn coll_alltoall(&self) -> Option<&TraceRow> {
        self.rows
            .iter()
            .find(|r| r.phase == "coll" && r.op == OpKind::AllToAll)
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "phase   op         comm       parts  count      bytes   wait(ms)\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<7} {:<10} {:<10} {:>5} {:>6} {:>10} {:>10.3}\n",
                r.phase,
                r.op.to_string(),
                r.comm_label,
                r.participants,
                r.count,
                r.bytes,
                r.elapsed_us as f64 / 1000.0,
            ));
        }
        out
    }

    /// Time-weighted per-phase rollup: `(phase, ops, bytes, wait_us)` in
    /// descending wait order — where the communication time actually went,
    /// not just where the bytes moved. All zeros in the wait column means
    /// the trace was captured with timing off.
    pub fn phase_time_rollup(&self) -> Vec<(String, usize, u64, u64)> {
        let mut rollup: Vec<(String, usize, u64, u64)> = Vec::new();
        for r in &self.rows {
            match rollup.iter_mut().find(|(p, ..)| *p == r.phase) {
                Some((_, count, bytes, us)) => {
                    *count += r.count;
                    *bytes += r.bytes;
                    *us += r.elapsed_us;
                }
                None => rollup.push((r.phase.clone(), r.count, r.bytes, r.elapsed_us)),
            }
        }
        rollup.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
        rollup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::gradient_sweep;
    use xg_sim::CgyroInput;
    use xg_tensor::ProcGrid;

    #[test]
    fn memory_law_divides_by_k() {
        let cfg = gradient_sweep(&CgyroInput::test_small(), 4, ProcGrid::new(2, 2));
        let law = cmat_memory_law(&cfg);
        assert_eq!(law.cgyro_per_rank, law.total_bytes / 4);
        assert_eq!(law.xgyro_per_rank, law.total_bytes / 16);
        assert_eq!(law.cgyro_per_rank, law.xgyro_per_rank * 4);
    }

    #[test]
    fn trace_summary_aggregates() {
        let recs = vec![
            OpRecord {
                op: OpKind::AllReduce,
                comm_label: "nv".into(),
                participants: 4,
                members: vec![0, 1, 2, 3],
                bytes: 100,
                phase: "str".into(),
                elapsed_us: 30,
            },
            OpRecord {
                op: OpKind::AllReduce,
                comm_label: "nv".into(),
                participants: 4,
                members: vec![0, 1, 2, 3],
                bytes: 100,
                phase: "str".into(),
                elapsed_us: 50,
            },
            OpRecord {
                op: OpKind::AllToAll,
                comm_label: "coll-ens".into(),
                participants: 8,
                members: (0..8).collect(),
                bytes: 999,
                phase: "coll".into(),
                elapsed_us: 200,
            },
        ];
        let s = summarize_trace(&recs);
        assert_eq!(s.rows.len(), 2);
        let ar = s.str_allreduce().unwrap();
        assert_eq!((ar.count, ar.bytes, ar.participants), (2, 200, 4));
        assert_eq!(ar.elapsed_us, 80);
        let a2a = s.coll_alltoall().unwrap();
        assert_eq!(a2a.comm_label, "coll-ens");
        let table = s.to_table();
        assert!(table.contains("coll-ens"));
        assert!(table.contains("AllReduce"));
        assert!(table.contains("wait(ms)"));
        // Time-weighted rollup: coll waited longer than str despite fewer ops.
        let rollup = s.phase_time_rollup();
        assert_eq!(rollup[0], ("coll".to_string(), 1, 999, 200));
        assert_eq!(rollup[1], ("str".to_string(), 2, 200, 80));
    }
}
