//! # xgyro-core — the paper's contribution
//!
//! XGYRO executes an ensemble of CGYRO-class simulations as a single job,
//! sharing one copy of the collisional constant tensor (`cmat`) across all
//! members. This crate provides:
//!
//! * [`ensemble`] — ensemble configuration and the `cmat`-key admission
//!   check (only simulations whose collision-relevant inputs match may
//!   share; gradient-drive parameter sweeps always qualify);
//! * [`topology`] — the Figure-3 communicator construction: per-simulation
//!   `nv` (str AllReduce) and `nt` communicators, plus the **separated**,
//!   ensemble-wide coll communicator over which `cmat` is distributed;
//! * [`runner`] — functional execution of the ensemble (and of the
//!   sequential CGYRO baseline) over the thread-backed comm substrate;
//! * [`report`] — the memory-sharing law and communication-trace
//!   summaries;
//! * [`recovery`] — degraded-mode execution: checkpointed segments over
//!   the fallible comm substrate, with failed members evicted and the
//!   survivors resumed bitwise-identically from the last coherent
//!   checkpoint.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod ensemble;
pub mod recovery;
pub mod report;
pub mod runner;
pub mod topology;

pub use checkpoint::{run_xgyro_checkpointed, CheckpointError, EnsembleCheckpoint};
pub use recovery::{
    run_xgyro_resilient, run_xgyro_resilient_from, run_xgyro_resilient_with_capacities,
    RecoveryError, RecoveryEvent, RecoveryOutcome,
};
pub use ensemble::{gradient_sweep, EnsembleConfig, EnsembleError};
pub use report::{cmat_memory_law, summarize_trace, CmatMemoryLaw, TraceSummary};
pub use runner::{
    run_cgyro_baseline, run_single_cgyro, run_xgyro, run_xgyro_with_history, RunOutcome,
    SimResult,
};
pub use topology::{assignment, build_xgyro_topology, RankAssignment};
