//! Ensemble-level checkpointing.
//!
//! Production campaigns checkpoint constantly; an XGYRO job checkpoints
//! *all* members coherently (same step count — the ensemble steps in
//! lockstep). An [`EnsembleCheckpoint`] stores one restart image per
//! member (each member's full global state, reassembled), plus the
//! ensemble identity, and can seed a resumed run that continues **bitwise
//! identically** to an uninterrupted one.

use crate::ensemble::EnsembleConfig;
use crate::runner::RunOutcome;
use crate::topology::build_xgyro_topology;
use xg_comm::World;
use xg_linalg::Complex64;
use xg_sim::Simulation;
use xg_tensor::{PhaseLayout, Tensor3};

/// A coherent checkpoint of every ensemble member.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleCheckpoint {
    pub(crate) cmat_key: u64,
    pub(crate) k: usize,
    pub(crate) time: f64,
    pub(crate) steps_taken: u64,
    /// Per-member global state (str layout `(nc, nv, nt)` flattened).
    pub(crate) members: Vec<Vec<Complex64>>,
    pub(crate) dims: (usize, usize, usize),
}

/// Checkpoint-specific failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The checkpoint belongs to a different ensemble (cmat key or size).
    WrongEnsemble,
    /// Serialized image is corrupt.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::WrongEnsemble => {
                write!(f, "checkpoint was written by a different ensemble")
            }
            CheckpointError::Corrupt(m) => write!(f, "corrupt ensemble checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl EnsembleCheckpoint {
    /// Steps taken at capture time.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Simulation time at capture time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of member images held.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The cmat key of the ensemble that wrote this checkpoint. External
    /// resume glue (the campaign server's journal replay) validates this
    /// against the rebuilt ensemble before seeding a resumed run.
    pub fn cmat_key(&self) -> u64 {
        self.cmat_key
    }

    /// Per-member global dims `(nc, nv, nt)` at capture time.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Degraded-mode eviction: drop member `index`'s restart image so the
    /// checkpoint seeds the surviving (k−1)-way ensemble. The member states
    /// are untouched — a resume from the evicted checkpoint is bitwise
    /// identical to a fresh (k−1)-member run that reached the same step.
    pub fn evict_member(&self, index: usize) -> Result<Self, CheckpointError> {
        if index >= self.k || self.k == 1 {
            return Err(CheckpointError::WrongEnsemble);
        }
        let mut out = self.clone();
        out.members.remove(index);
        out.k -= 1;
        Ok(out)
    }

    /// Serialize to bytes (little-endian, versioned).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"XGEN");
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&self.cmat_key.to_le_bytes());
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.steps_taken.to_le_bytes());
        for d in [self.dims.0, self.dims.1, self.dims.2] {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for m in &self.members {
            for z in m {
                out.extend_from_slice(&z.re.to_le_bytes());
                out.extend_from_slice(&z.im.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let hdr = 4 + 4 + 8 + 8 + 8 + 8 + 24;
        if bytes.len() < hdr {
            return Err(CheckpointError::Corrupt("truncated header".into()));
        }
        if &bytes[0..4] != b"XGEN" {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let rd_u64 =
            |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("bounds checked"));
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("bounds checked"));
        if version != 1 {
            return Err(CheckpointError::Corrupt(format!("unknown version {version}")));
        }
        let cmat_key = rd_u64(8);
        let k = rd_u64(16) as usize;
        let time = f64::from_le_bytes(bytes[24..32].try_into().expect("bounds checked"));
        let steps_taken = rd_u64(32);
        let dims = (rd_u64(40) as usize, rd_u64(48) as usize, rd_u64(56) as usize);
        let per_member = dims.0 * dims.1 * dims.2;
        let expected = hdr + k * per_member * 16;
        if bytes.len() != expected {
            return Err(CheckpointError::Corrupt(format!(
                "length {} != expected {expected}",
                bytes.len()
            )));
        }
        let mut members = Vec::with_capacity(k);
        let mut off = hdr;
        for _ in 0..k {
            let mut m = Vec::with_capacity(per_member);
            for _ in 0..per_member {
                let re =
                    f64::from_le_bytes(bytes[off..off + 8].try_into().expect("bounds checked"));
                let im = f64::from_le_bytes(
                    bytes[off + 8..off + 16].try_into().expect("bounds checked"),
                );
                m.push(Complex64::new(re, im));
                off += 16;
            }
            members.push(m);
        }
        Ok(Self { cmat_key, k, time, steps_taken, members, dims })
    }
}

/// Run the ensemble for `steps`, checkpointing at the end. Optionally seed
/// from a prior checkpoint (resuming its step counter).
pub fn run_xgyro_checkpointed(
    config: &EnsembleConfig,
    steps: usize,
    resume_from: Option<&EnsembleCheckpoint>,
) -> Result<(RunOutcome, EnsembleCheckpoint), CheckpointError> {
    if let Some(cp) = resume_from {
        if cp.cmat_key != config.cmat_key() || cp.k != config.k() {
            return Err(CheckpointError::WrongEnsemble);
        }
        let d = config.members()[0].dims();
        if cp.dims != (d.nc, d.nv, d.nt) {
            return Err(CheckpointError::WrongEnsemble);
        }
    }

    let grid = config.grid();
    let dims = config.members()[0].dims();
    let world = World::new(config.total_ranks());
    let results = world.run_with_logs(|comm| {
        let (a, topo) = build_xgyro_topology(config, &comm);
        let layout =
            PhaseLayout::new(dims, grid, grid.rank(a.i1, a.i2));
        let mut sim = Simulation::new(config.members()[a.sim].clone(), topo);
        if let Some(cp) = resume_from {
            // Carve this rank's local slice out of the member's global
            // state.
            let global = &cp.members[a.sim];
            let (nc, nvl, ntl) = layout.str_shape();
            let mut local = vec![Complex64::ZERO; nc * nvl * ntl];
            for ic in 0..nc {
                for (ivl, iv) in layout.nv_range().enumerate() {
                    for (itl, it) in layout.nt_range().enumerate() {
                        local[(ic * nvl + ivl) * ntl + itl] =
                            global[(ic * dims.nv + iv) * dims.nt + it];
                    }
                }
            }
            sim.restore_state(&local, cp.time, cp.steps_taken);
        }
        sim.run_steps(steps);
        let d = sim.diagnostics();
        let bytes = 0u64;
        (a, layout, sim.h().clone(), sim.time(), sim.steps_taken(), d, bytes)
    });

    // Reassemble.
    let mut members: Vec<Vec<Complex64>> =
        (0..config.k()).map(|_| vec![Complex64::ZERO; dims.state_len()]).collect();
    let mut time = 0.0;
    let mut steps_taken = 0;
    let mut sims: Vec<crate::runner::SimResult> = (0..config.k())
        .map(|i| crate::runner::SimResult {
            sim: i,
            h: Tensor3::new(1, 1, 1),
            diagnostics: xg_sim::Diagnostics {
                time: 0.0,
                field_energy: 0.0,
                heat_flux: 0.0,
                h_norm2: 0.0,
            },
            cmat_bytes_per_rank: Vec::new(),
        })
        .collect();
    let mut traces = Vec::new();
    let mut shards: Vec<Vec<(PhaseLayout, Tensor3<Complex64>)>> =
        (0..config.k()).map(|_| Vec::new()).collect();
    for ((a, layout, h, t, s, d, _), trace) in results {
        for ic in 0..dims.nc {
            for (ivl, iv) in layout.nv_range().enumerate() {
                for (itl, it) in layout.nt_range().enumerate() {
                    members[a.sim][(ic * dims.nv + iv) * dims.nt + it] =
                        h[(ic, ivl, itl)];
                }
            }
        }
        shards[a.sim].push((layout, h));
        time = t;
        steps_taken = s;
        sims[a.sim].diagnostics = d;
        traces.push(trace);
    }
    for (i, sh) in shards.into_iter().enumerate() {
        let mut g = Tensor3::new(dims.nc, dims.nv, dims.nt);
        for (layout, h) in sh {
            for ic in 0..dims.nc {
                for (ivl, iv) in layout.nv_range().enumerate() {
                    for (itl, it) in layout.nt_range().enumerate() {
                        g[(ic, iv, it)] = h[(ic, ivl, itl)];
                    }
                }
            }
        }
        sims[i].h = g;
    }

    let checkpoint = EnsembleCheckpoint {
        cmat_key: config.cmat_key(),
        k: config.k(),
        time,
        steps_taken,
        members,
        dims: (dims.nc, dims.nv, dims.nt),
    };
    Ok((RunOutcome { sims, traces }, checkpoint))
}
