//! Figure-3 communicator construction.
//!
//! Global rank layout of an XGYRO job with k simulations of `n1·n2` ranks:
//! simulation `s` owns ranks `[s·n1·n2, (s+1)·n1·n2)`, and within a
//! simulation `rank = i2·n1 + i1` (the CGYRO convention). From the world
//! communicator this module derives:
//!
//! * `sim`  — all ranks of one simulation (`n1·n2`), for diagnostics;
//! * `nv`   — the per-simulation str communicator (`n1` ranks): AllReduce
//!   for *field* and *upwind* stay **per simulation** (Figure 3, top);
//! * `nt`   — the per-simulation toroidal communicator (`n2` ranks);
//! * `coll-ens` — the ensemble-wide coll communicator (`k·n1` ranks): all
//!   simulations' ranks sharing a toroidal slice `i2`, ordered `(s, i1)`
//!   lexicographic (Figure 3, bottom). This is the communicator that had
//!   to be **separated** from the `nv` communicator, "as the number of
//!   processes involved differs between the two" (paper §2.1).

use crate::ensemble::EnsembleConfig;
use xg_comm::Communicator;
use xg_sim::DistTopology;

/// This rank's place in the ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankAssignment {
    /// Which member simulation this rank works on.
    pub sim: usize,
    /// `i1` (position in the nv/coll splitting).
    pub i1: usize,
    /// `i2` (toroidal slice).
    pub i2: usize,
}

/// Decode a world rank into its assignment under `config`.
pub fn assignment(config: &EnsembleConfig, world_rank: usize) -> RankAssignment {
    let per_sim = config.ranks_per_sim();
    let sim = world_rank / per_sim;
    let local = world_rank % per_sim;
    let (i1, i2) = config.grid().coords(local);
    RankAssignment { sim, i1, i2 }
}

/// Build the XGYRO topology (Figure 3) for this rank from the world
/// communicator. Collective over the world.
pub fn build_xgyro_topology(
    config: &EnsembleConfig,
    world: &Communicator,
) -> (RankAssignment, DistTopology) {
    assert_eq!(
        world.size(),
        config.total_ranks(),
        "world must have k·n1·n2 = {} ranks, got {}",
        config.total_ranks(),
        world.size()
    );
    let grid = config.grid();
    let a = assignment(config, world.rank());

    // Per-simulation communicator (diagnostics, phase tags); ranked by the
    // grid's local rank order so `PhaseLayout` coordinates line up.
    let sim_comm = world.split(a.sim as u64, grid.rank(a.i1, a.i2) as u64, "sim");
    // Per-simulation nv (str) communicator: same (sim, i2), ordered by i1.
    let nv_comm = sim_comm.split(a.i2 as u64, a.i1 as u64, "nv");
    // Per-simulation toroidal communicator: same (sim, i1), ordered by i2.
    let nt_comm = sim_comm.split(a.i1 as u64, a.i2 as u64, "nt");
    // Ensemble-wide coll communicator: same i2 across ALL simulations,
    // ordered (sim, i1) lexicographic — required by the shared-cmat
    // exchange in xg-sim::dist.
    let coll_comm = world.split(
        a.i2 as u64,
        (a.sim * grid.n1 + a.i1) as u64,
        "coll-ens",
    );

    let input = &config.members()[a.sim];
    let topo = DistTopology::with_shared_coll_cuts(
        input,
        grid,
        sim_comm,
        nv_comm,
        nt_comm,
        coll_comm,
        config.k(),
        config.coll_cuts(),
    );
    (a, topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_sim::CgyroInput;
    use xg_tensor::ProcGrid;

    #[test]
    fn assignment_decodes_rank_layout() {
        let cfg = crate::ensemble::gradient_sweep(
            &CgyroInput::test_small(),
            3,
            ProcGrid::new(2, 2),
        );
        assert_eq!(
            assignment(&cfg, 0),
            RankAssignment { sim: 0, i1: 0, i2: 0 }
        );
        assert_eq!(
            assignment(&cfg, 3),
            RankAssignment { sim: 0, i1: 1, i2: 1 }
        );
        assert_eq!(
            assignment(&cfg, 4),
            RankAssignment { sim: 1, i1: 0, i2: 0 }
        );
        assert_eq!(
            assignment(&cfg, 11),
            RankAssignment { sim: 2, i1: 1, i2: 1 }
        );
    }
}
