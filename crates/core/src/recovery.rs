//! Degraded-mode ensemble recovery.
//!
//! A k-member XGYRO job occupies k× the nodes of one CGYRO run, so its
//! job-level MTBF is k× worse — at production scale a member loss is a
//! *when*, not an *if*. The classic MPI answer is to kill the whole job and
//! resubmit; [`run_xgyro_resilient`] instead runs the ensemble in
//! checkpointed segments over the fallible comm substrate
//! ([`xg_comm::World::run_fallible`]) and, when a rank fails:
//!
//! 1. every survivor surfaces a typed [`xg_comm::CommError`] within the
//!    configured deadline (no hangs — the whole point of the substrate);
//! 2. the failed world rank is decoded to its member simulation via
//!    [`crate::topology::assignment`] and that member is **evicted** from
//!    both the [`EnsembleConfig`] and the latest coherent
//!    [`EnsembleCheckpoint`];
//! 3. the run resumes from that checkpoint as a (k−1)-member ensemble —
//!    the Figure-3 topology is rebuilt and the shared `cmat` rows are
//!    re-distributed over the survivors automatically by
//!    [`crate::topology::build_xgyro_topology`].
//!
//! By default the shared coll rows shrink **uniformly** onto the survivors.
//! [`run_xgyro_resilient_with_capacities`] instead rebalances them onto the
//! survivors' *actual* capacities: given per-rank relative speeds (from the
//! machinefile's `NODE_SPEEDS=`, or measured), the post-eviction rebuild
//! apportions coll `nc` rows to each surviving coll position in proportion
//! to its capacity ([`xg_tensor::RaggedDecomp::weighted`]), so a degraded
//! run on a heterogeneous machine is not gated by its slowest survivor.
//! Coll cuts are bitwise-neutral, so the rebalanced continuation keeps the
//! bitwise-identity guarantee below.
//!
//! Because every reduction combines contributions in communicator-rank
//! order and member trajectories only couple through the *shared, constant*
//! `cmat` (identical for any k), the degraded continuation is **bitwise
//! identical** to an unfaulted run of the surviving members alone — the
//! property `tests/degraded_mode.rs` asserts.

use crate::checkpoint::{CheckpointError, EnsembleCheckpoint};
use crate::ensemble::{EnsembleConfig, EnsembleError};
use crate::runner::{RunOutcome, SimResult};
use crate::topology::{assignment, build_xgyro_topology};
use std::time::{Duration, Instant};
use xg_comm::{CommError, FaultPlan, OpKind, OpRecord, RankOutcome, World};
use xg_linalg::Complex64;
use xg_sim::Simulation;
use xg_tensor::{PhaseLayout, RaggedDecomp, Tensor3};

/// Why a resilient run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The rolled-back checkpoint could not seed the degraded ensemble.
    Checkpoint(CheckpointError),
    /// Eviction was impossible (e.g. the last surviving member failed).
    Ensemble(EnsembleError),
    /// A rank died with an untyped panic — a bug, not a modeled fault; the
    /// run cannot be recovered and the panic message is preserved here.
    Unrecoverable(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Checkpoint(e) => write!(f, "recovery checkpoint rejected: {e}"),
            RecoveryError::Ensemble(e) => write!(f, "cannot form degraded ensemble: {e}"),
            RecoveryError::Unrecoverable(m) => write!(f, "unrecoverable rank death: {m}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// One observed failure and the recovery action taken.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Global world rank (in the world that was running when the fault
    /// fired) that failed.
    pub failed_rank: usize,
    /// **Original** member index (position in the initial config) of the
    /// evicted simulation.
    pub failed_member: usize,
    /// Typed cause observed by the survivors.
    pub cause: CommError,
    /// Step count of the checkpoint the survivors rolled back to (0 when
    /// the fault predates the first checkpoint).
    pub resumed_from_step: u64,
    /// Steps of lost work re-executed because of this failure (the
    /// abandoned segment's length).
    pub steps_replayed: u64,
    /// Original member indices still running after the eviction.
    pub survivors: Vec<usize>,
    /// Coll `nc` rows placed differently from a uniform shrink by the
    /// capacity-aware rebalance (0 when capacities are uniform or the run
    /// uses the default uniform-shrink recovery).
    pub moved_rows: u64,
}

/// The outcome of a resilient run.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// Final results of the surviving members. `SimResult::sim` holds each
    /// member's **original** index, so results line up with the initial
    /// sweep even after evictions. Traces concatenate every segment
    /// (including aborted ones, whose logs carry the `Fault` records).
    pub outcome: RunOutcome,
    /// Coherent checkpoint of the survivors at `total_steps`.
    pub checkpoint: EnsembleCheckpoint,
    /// Every failure/recovery, in order.
    pub events: Vec<RecoveryEvent>,
    /// The per-rank traces of each *aborted* segment, one entry per
    /// recovery event. Unlike `outcome.traces` (a flat concatenation for
    /// accounting), each entry here is a coherent single-world trace set —
    /// exportable via [`xg_comm::traces_to_csv`] and replayable by
    /// `xg-cluster`'s discrete-event replay, `Fault`/`Recover` records and
    /// all.
    pub faulty_segments: Vec<Vec<Vec<OpRecord>>>,
    /// Original member indices that survived to the end.
    pub surviving_members: Vec<usize>,
    /// Total steps of lost work re-executed across all recoveries.
    pub steps_replayed: u64,
}

/// What one checkpointed segment attempt produced.
enum Segment {
    /// All ranks completed; ensemble state is coherent at the new step.
    Done(Box<(RunOutcome, EnsembleCheckpoint)>),
    /// A rank failed; survivors reported typed errors. Carries the culprit
    /// world rank, the cause, the partial traces (with `Fault` records) and
    /// the wall-clock cost of the abandoned attempt in microseconds.
    Failed { rank: usize, cause: CommError, traces: Vec<Vec<OpRecord>>, wasted_us: u64 },
    /// A rank died with an untyped panic.
    Panicked(String),
}

/// Run the ensemble to `total_steps` over the fallible substrate,
/// checkpointing every `ckpt_every` steps and recovering from failures in
/// degraded (k−1) mode. `plan` seeds the faults to inject (empty plan:
/// plain checkpointed execution); a spec's `at_op` counts operations over
/// the *whole* run (the plan is rebased across segment boundaries), so a
/// fault can land in any segment — including after checkpoints exist.
/// `deadline` bounds every blocking wait — it is what converts a dead peer
/// into a typed error instead of a hang.
pub fn run_xgyro_resilient(
    config: &EnsembleConfig,
    total_steps: usize,
    ckpt_every: usize,
    plan: FaultPlan,
    deadline: Duration,
) -> Result<RecoveryOutcome, RecoveryError> {
    run_xgyro_resilient_from(config, None, total_steps, ckpt_every, plan, deadline)
}

/// [`run_xgyro_resilient`], seeded from a prior [`EnsembleCheckpoint`].
///
/// This is the serving-side entry point: a campaign service executing a
/// batch in bounded segments (so it can apply cancellations or rebalance at
/// segment boundaries) calls this repeatedly, feeding each call the
/// checkpoint the previous one returned. `total_steps` counts steps *beyond*
/// the checkpoint; the returned checkpoint's absolute step counter keeps
/// advancing across calls. With `resume_from = None` this is exactly
/// [`run_xgyro_resilient`]. The checkpoint must match the config's identity
/// (cmat key, k, dims) or the run is rejected with
/// [`RecoveryError::Checkpoint`].
pub fn run_xgyro_resilient_from(
    config: &EnsembleConfig,
    resume_from: Option<EnsembleCheckpoint>,
    total_steps: usize,
    ckpt_every: usize,
    plan: FaultPlan,
    deadline: Duration,
) -> Result<RecoveryOutcome, RecoveryError> {
    run_resilient(config, resume_from, total_steps, ckpt_every, plan, deadline, None)
}

/// [`run_xgyro_resilient_from`] with **capacity-aware rebalancing**.
///
/// `capacities[r]` is the relative speed of *original* world rank `r`
/// (length = the initial config's `total_ranks()`; 1.0 = full speed). After
/// each eviction the rebuild derives one capacity per surviving coll
/// position `(s, i1)` — the minimum over its `i2` slice, since a position's
/// cut is shared across all slices — and re-apportions the coll `nc` rows
/// with [`RaggedDecomp::weighted`] instead of shrinking uniformly. Rows
/// moved relative to the uniform shrink are counted on each
/// [`RecoveryEvent::moved_rows`] and on the process-wide obs registry
/// (`xgyro_rebalance_*` in the Prometheus export). With `None` or uniform
/// capacities this is exactly [`run_xgyro_resilient_from`].
pub fn run_xgyro_resilient_with_capacities(
    config: &EnsembleConfig,
    resume_from: Option<EnsembleCheckpoint>,
    total_steps: usize,
    ckpt_every: usize,
    plan: FaultPlan,
    deadline: Duration,
    capacities: Option<&[f64]>,
) -> Result<RecoveryOutcome, RecoveryError> {
    run_resilient(config, resume_from, total_steps, ckpt_every, plan, deadline, capacities)
}

fn run_resilient(
    config: &EnsembleConfig,
    resume_from: Option<EnsembleCheckpoint>,
    total_steps: usize,
    ckpt_every: usize,
    plan: FaultPlan,
    deadline: Duration,
    capacities: Option<&[f64]>,
) -> Result<RecoveryOutcome, RecoveryError> {
    assert!(ckpt_every > 0, "checkpoint cadence must be positive");
    if let Some(caps) = capacities {
        assert_eq!(
            caps.len(),
            config.total_ranks(),
            "capacities must cover every original world rank"
        );
        assert!(
            caps.iter().all(|c| c.is_finite() && *c > 0.0),
            "capacities must be positive and finite"
        );
    }
    if let Some(cp) = resume_from.as_ref() {
        let d = config.members()[0].dims();
        if cp.cmat_key != config.cmat_key()
            || cp.k != config.k()
            || cp.dims != (d.nc, d.nv, d.nt)
        {
            return Err(RecoveryError::Checkpoint(CheckpointError::WrongEnsemble));
        }
    }
    let mut cfg = config.clone();
    // Current config position -> original member index.
    let mut original: Vec<usize> = (0..cfg.k()).collect();
    let mut checkpoint: Option<EnsembleCheckpoint> = resume_from;
    let mut armed = if plan.is_empty() { None } else { Some(plan) };
    let mut events = Vec::new();
    let mut faulty_segments = Vec::new();
    let mut steps_replayed = 0u64;
    let mut traces: Vec<Vec<OpRecord>> = Vec::new();
    let mut last: Option<RunOutcome> = None;
    let mut done = 0usize;

    while done < total_steps {
        let seg = ckpt_every.min(total_steps - done);
        match run_segment(&cfg, seg, checkpoint.as_ref(), armed.clone(), deadline) {
            Segment::Done(boxed) => {
                let (outcome, cp) = *boxed;
                done += seg;
                // Rebase the armed plan: each segment runs in a fresh
                // world whose per-rank op counters start at zero, so
                // subtract the ops each rank already issued. This makes a
                // spec's `at_op` a *global* op index over the whole
                // resilient run — a plan can target any segment.
                armed = armed.map(|p| {
                    let mut rebased = FaultPlan::new();
                    for s in p.specs() {
                        let issued = outcome.traces[s.rank]
                            .iter()
                            .filter(|r| !matches!(r.op, OpKind::Fault | OpKind::Recover))
                            .count() as u64;
                        if s.at_op < issued {
                            // Already fired inside this segment (a Delay,
                            // or a Stall the segment survived) — one-shot.
                            continue;
                        }
                        let mut s = s.clone();
                        s.at_op -= issued;
                        rebased = rebased.with(s);
                    }
                    rebased
                });
                traces.extend(outcome.traces.iter().cloned());
                checkpoint = Some(cp);
                last = Some(outcome);
            }
            Segment::Failed { rank, cause, traces: mut partial, wasted_us } => {
                armed = None; // the injected fault fired; don't re-fire on retry
                // Unified recovery accounting: the same wasted_us that lands
                // in the Recover trace records also feeds the process-wide
                // obs registry (xgyro_recovery_* in the Prometheus export).
                xg_obs::record_recovery_waste(wasted_us);
                let a = assignment(&cfg, rank);
                let failed_member = original[a.sim];
                cfg = cfg.evict_member(a.sim).map_err(RecoveryError::Ensemble)?;
                original.remove(a.sim);
                // Capacity-aware rebalance: apportion the coll rows to the
                // survivors' actual speeds instead of shrinking uniformly.
                // (`evict_member` already dropped any previous cuts.)
                let mut moved_rows = 0u64;
                if let Some(caps) = capacities {
                    let (cuts, moved) = capacity_cuts(&cfg, &original, caps);
                    if let Some(cuts) = cuts {
                        moved_rows = moved;
                        cfg = cfg
                            .with_coll_cuts(Some(cuts))
                            .map_err(RecoveryError::Ensemble)?;
                        xg_obs::record_rebalance(moved_rows);
                    }
                }
                if let Some(cp) = checkpoint.take() {
                    checkpoint = Some(cp.evict_member(a.sim).map_err(RecoveryError::Checkpoint)?);
                }
                let resumed_from_step =
                    checkpoint.as_ref().map(|c| c.steps_taken()).unwrap_or(0);
                // Stamp every survivor's partial trace with a Recover
                // record: members = the degraded world's ranks, bytes = the
                // wall-clock cost of the abandoned attempt in microseconds.
                let survivors_ranks: Vec<usize> = (0..cfg.total_ranks()).collect();
                for (r, t) in partial.iter_mut().enumerate() {
                    if r != rank {
                        t.push(OpRecord {
                            op: OpKind::Recover,
                            comm_label: "world".to_string(),
                            participants: survivors_ranks.len(),
                            members: survivors_ranks.clone(),
                            bytes: wasted_us,
                            phase: "recover".to_string(),
                            elapsed_us: wasted_us,
                        });
                    }
                }
                faulty_segments.push(partial.clone());
                traces.extend(partial);
                steps_replayed += seg as u64;
                events.push(RecoveryEvent {
                    failed_rank: rank,
                    failed_member,
                    cause,
                    resumed_from_step,
                    steps_replayed: seg as u64,
                    survivors: original.clone(),
                    moved_rows,
                });
                // `done` is unchanged: the abandoned segment re-runs from
                // the rolled-back checkpoint with the degraded ensemble.
            }
            Segment::Panicked(msg) => return Err(RecoveryError::Unrecoverable(msg)),
        }
    }

    let mut outcome = match last {
        Some(o) => o,
        None => {
            // total_steps == 0: produce an empty-but-coherent outcome by
            // running a zero-step segment.
            match run_segment(&cfg, 0, checkpoint.as_ref(), None, deadline) {
                Segment::Done(boxed) => {
                    let (o, cp) = *boxed;
                    checkpoint = Some(cp);
                    o
                }
                Segment::Failed { cause, .. } => {
                    return Err(RecoveryError::Unrecoverable(cause.to_string()))
                }
                Segment::Panicked(msg) => return Err(RecoveryError::Unrecoverable(msg)),
            }
        }
    };
    // Report survivors under their original sweep indices, and carry the
    // full multi-segment trace set.
    for (i, s) in outcome.sims.iter_mut().enumerate() {
        s.sim = original[i];
    }
    outcome.traces = traces;
    Ok(RecoveryOutcome {
        outcome,
        checkpoint: checkpoint.expect("loop ran at least one segment"),
        events,
        faulty_segments,
        surviving_members: original,
        steps_replayed,
    })
}

/// Capacity-weighted coll cuts for the surviving ensemble, plus the rows
/// they move relative to the uniform shrink. `original` maps each surviving
/// config position to its original member index; `caps` is indexed by
/// original world rank. Returns `(None, 0)` when the surviving positions'
/// capacities are uniform (the balanced split is already optimal — leave
/// `coll_cuts` unset so the run stays on the canonical path).
fn capacity_cuts(
    cfg: &EnsembleConfig,
    original: &[usize],
    caps: &[f64],
) -> (Option<Vec<usize>>, u64) {
    let grid = cfg.grid();
    let per_sim = cfg.ranks_per_sim();
    let nc = cfg.members()[0].dims().nc;
    // One weight per surviving coll position (s, i1): a position's cut is
    // shared across every i2 slice, so it runs at its slowest rank's pace.
    let mut weights = Vec::with_capacity(cfg.k() * grid.n1);
    for &orig in original {
        for i1 in 0..grid.n1 {
            let w = (0..grid.n2)
                .map(|i2| caps[orig * per_sim + grid.rank(i1, i2)])
                .fold(f64::INFINITY, f64::min);
            weights.push(w);
        }
    }
    if weights.iter().all(|&w| w == weights[0]) {
        return (None, 0);
    }
    let cuts = RaggedDecomp::weighted(nc, &weights).counts();
    let ragged = RaggedDecomp::from_counts(&cuts);
    let uniform = RaggedDecomp::balanced(nc, cuts.len());
    let mut overlap = 0usize;
    for p in 0..ragged.parts() {
        let (r, s) = (ragged.range(p), uniform.range(p));
        overlap += r.end.min(s.end).saturating_sub(r.start.max(s.start));
    }
    (Some(cuts), (nc - overlap) as u64)
}

/// Run one segment of `steps` over the fallible substrate, resuming from
/// `resume_from` when given, and classify the result.
fn run_segment(
    cfg: &EnsembleConfig,
    steps: usize,
    resume_from: Option<&EnsembleCheckpoint>,
    plan: Option<FaultPlan>,
    deadline: Duration,
) -> Segment {
    let grid = cfg.grid();
    let dims = cfg.members()[0].dims();
    let mut world = World::new(cfg.total_ranks()).with_deadline(deadline);
    if let Some(p) = plan {
        world = world.with_fault_plan(p);
    }
    let start = Instant::now();
    let results = world.run_fallible(|comm| {
        let (a, topo) = build_xgyro_topology(cfg, &comm);
        let layout = PhaseLayout::new(dims, grid, grid.rank(a.i1, a.i2));
        let mut sim = Simulation::new(cfg.members()[a.sim].clone(), topo);
        if let Some(cp) = resume_from {
            // Carve this rank's local slice out of the member's global
            // state (same layout walk as `run_xgyro_checkpointed`).
            let global = &cp.members[a.sim];
            let (nc, nvl, ntl) = layout.str_shape();
            let mut local = vec![Complex64::ZERO; nc * nvl * ntl];
            for ic in 0..nc {
                for (ivl, iv) in layout.nv_range().enumerate() {
                    for (itl, it) in layout.nt_range().enumerate() {
                        local[(ic * nvl + ivl) * ntl + itl] =
                            global[(ic * dims.nv + iv) * dims.nt + it];
                    }
                }
            }
            sim.restore_state(&local, cp.time, cp.steps_taken);
        }
        sim.run_steps(steps);
        let d = sim.diagnostics();
        Ok((a, layout, sim.h().clone(), sim.time(), sim.steps_taken(), d))
    });
    let wasted_us = start.elapsed().as_micros() as u64;

    let mut traces = Vec::with_capacity(results.len());
    let mut oks = Vec::with_capacity(results.len());
    let mut cause: Option<(usize, CommError)> = None;
    let mut panicked: Option<String> = None;
    for (rank, (out, trace)) in results.into_iter().enumerate() {
        match out {
            RankOutcome::Ok(v) => oks.push(v),
            RankOutcome::Failed(e) => {
                let better = match (&cause, &e) {
                    // Prefer a PeerFailed cause (it names the culprit) over
                    // a bare Timeout; keep the first of each kind.
                    (None, _) => true,
                    (Some((_, CommError::Timeout { .. })), CommError::PeerFailed { .. }) => true,
                    _ => false,
                };
                if better {
                    let culprit = match &e {
                        CommError::PeerFailed { rank, .. } => *rank,
                        CommError::Timeout { missing, .. } => {
                            *missing.first().unwrap_or(&rank)
                        }
                    };
                    cause = Some((culprit, e));
                }
            }
            RankOutcome::Panicked(m) => panicked = Some(m),
        }
        traces.push(trace);
    }
    if let Some(m) = panicked {
        return Segment::Panicked(m);
    }
    if let Some((rank, cause)) = cause {
        return Segment::Failed { rank, cause, traces, wasted_us };
    }

    // All ranks completed: reassemble members, final tensors, diagnostics.
    let mut members: Vec<Vec<Complex64>> =
        (0..cfg.k()).map(|_| vec![Complex64::ZERO; dims.state_len()]).collect();
    let mut shards: Vec<Vec<(PhaseLayout, Tensor3<Complex64>)>> =
        (0..cfg.k()).map(|_| Vec::new()).collect();
    let mut sims: Vec<SimResult> = (0..cfg.k())
        .map(|i| SimResult {
            sim: i,
            h: Tensor3::new(1, 1, 1),
            diagnostics: xg_sim::Diagnostics {
                time: 0.0,
                field_energy: 0.0,
                heat_flux: 0.0,
                h_norm2: 0.0,
            },
            cmat_bytes_per_rank: Vec::new(),
        })
        .collect();
    let mut time = 0.0;
    let mut steps_taken = 0;
    for (a, layout, h, t, s, d) in oks {
        for ic in 0..dims.nc {
            for (ivl, iv) in layout.nv_range().enumerate() {
                for (itl, it) in layout.nt_range().enumerate() {
                    members[a.sim][(ic * dims.nv + iv) * dims.nt + it] = h[(ic, ivl, itl)];
                }
            }
        }
        shards[a.sim].push((layout, h));
        time = t;
        steps_taken = s;
        sims[a.sim].diagnostics = d;
    }
    for (i, sh) in shards.into_iter().enumerate() {
        let mut g = Tensor3::new(dims.nc, dims.nv, dims.nt);
        for (layout, h) in sh {
            for ic in 0..dims.nc {
                for (ivl, iv) in layout.nv_range().enumerate() {
                    for (itl, it) in layout.nt_range().enumerate() {
                        g[(ic, iv, it)] = h[(ic, ivl, itl)];
                    }
                }
            }
        }
        sims[i].h = g;
    }
    let checkpoint = EnsembleCheckpoint {
        cmat_key: cfg.cmat_key(),
        k: cfg.k(),
        time,
        steps_taken,
        members,
        dims: (dims.nc, dims.nv, dims.nt),
    };
    Segment::Done(Box::new((RunOutcome { sims, traces }, checkpoint)))
}
