//! Functional ensemble execution.
//!
//! [`run_xgyro`] executes a whole ensemble as one job (one thread per
//! rank, k·n1·n2 ranks) and returns the per-simulation results;
//! [`run_cgyro_baseline`] runs the same members **sequentially** as
//! independent CGYRO jobs — the paper's comparison baseline — on the same
//! per-simulation grid. The two must agree bitwise: sharing the constant
//! tensor redistributes *where* `cmat` rows live, never *what* is computed.

use crate::ensemble::EnsembleConfig;
use crate::topology::build_xgyro_topology;
use xg_comm::{OpRecord, World};
use xg_linalg::Complex64;
use xg_sim::{CgyroInput, Diagnostics, DistTopology, Simulation};
use xg_tensor::{PhaseLayout, ProcGrid, Tensor3};

/// The outcome of one member simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Member index.
    pub sim: usize,
    /// Reassembled global distribution (str layout `(nc, nv, nt)`).
    pub h: Tensor3<Complex64>,
    /// Diagnostics at the end of the run.
    pub diagnostics: Diagnostics,
    /// Per-rank cmat bytes held by this simulation's ranks (XGYRO: the
    /// ensemble slice; CGYRO: the per-simulation slice).
    pub cmat_bytes_per_rank: Vec<u64>,
}

/// The outcome of an ensemble (or baseline) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-member results, indexed by member.
    pub sims: Vec<SimResult>,
    /// Per-world-rank communication traces.
    pub traces: Vec<Vec<OpRecord>>,
}

/// Reassemble per-rank `h` shards of one simulation into the global tensor.
fn assemble(
    dims: xg_tensor::SimDims,
    shards: Vec<(PhaseLayout, Tensor3<Complex64>)>,
) -> Tensor3<Complex64> {
    let mut global = Tensor3::new(dims.nc, dims.nv, dims.nt);
    for (layout, h) in shards {
        for ic in 0..dims.nc {
            for (ivl, iv) in layout.nv_range().enumerate() {
                for (itl, it) in layout.nt_range().enumerate() {
                    global[(ic, iv, it)] = h[(ic, ivl, itl)];
                }
            }
        }
    }
    global
}

/// Run the ensemble as a single XGYRO job for `steps` time steps.
pub fn run_xgyro(config: &EnsembleConfig, steps: usize) -> RunOutcome {
    let world = World::new(config.total_ranks());
    let grid = config.grid();
    let results = world.run_with_logs(|comm| {
        let (a, topo) = build_xgyro_topology(config, &comm);
        let cmat_bytes = topo.cmat().bytes();
        let layout = PhaseLayout::new(
            config.members()[a.sim].dims(),
            grid,
            grid.rank(a.i1, a.i2),
        );
        let mut sim = Simulation::new(config.members()[a.sim].clone(), topo);
        sim.run_steps(steps);
        let d = sim.diagnostics();
        (a.sim, layout, sim.h().clone(), d, cmat_bytes)
    });

    let dims = config.members()[0].dims();
    let mut per_sim: Vec<Vec<(PhaseLayout, Tensor3<Complex64>)>> =
        (0..config.k()).map(|_| Vec::new()).collect();
    let mut per_sim_diag: Vec<Option<Diagnostics>> = vec![None; config.k()];
    let mut per_sim_bytes: Vec<Vec<u64>> = (0..config.k()).map(|_| Vec::new()).collect();
    let mut traces = Vec::with_capacity(results.len());
    for ((sim, layout, h, d, bytes), trace) in results {
        per_sim[sim].push((layout, h));
        per_sim_diag[sim] = Some(d);
        per_sim_bytes[sim].push(bytes);
        traces.push(trace);
    }
    let sims = per_sim
        .into_iter()
        .enumerate()
        .map(|(i, shards)| SimResult {
            sim: i,
            h: assemble(dims, shards),
            diagnostics: per_sim_diag[i].expect("every sim produced diagnostics"),
            cmat_bytes_per_rank: std::mem::take(&mut per_sim_bytes[i]),
        })
        .collect();
    RunOutcome { sims, traces }
}

/// Run the ensemble for `reports` reporting intervals, recording each
/// member's diagnostic history (identical on every rank of a member; taken
/// from its lead rank).
pub fn run_xgyro_with_history(
    config: &EnsembleConfig,
    reports: usize,
) -> (RunOutcome, Vec<xg_sim::History>) {
    let world = World::new(config.total_ranks());
    let grid = config.grid();
    let results = world.run_with_logs(|comm| {
        let (a, topo) = build_xgyro_topology(config, &comm);
        let cmat_bytes = topo.cmat().bytes();
        let layout = PhaseLayout::new(
            config.members()[a.sim].dims(),
            grid,
            grid.rank(a.i1, a.i2),
        );
        let mut sim = Simulation::new(config.members()[a.sim].clone(), topo);
        let mut hist = xg_sim::History::new();
        for _ in 0..reports {
            hist.push(sim.run_report_step());
        }
        let d = sim.diagnostics();
        (a, layout, sim.h().clone(), d, cmat_bytes, hist)
    });

    let dims = config.members()[0].dims();
    let mut per_sim: Vec<Vec<(PhaseLayout, Tensor3<Complex64>)>> =
        (0..config.k()).map(|_| Vec::new()).collect();
    let mut per_sim_diag: Vec<Option<Diagnostics>> = vec![None; config.k()];
    let mut per_sim_bytes: Vec<Vec<u64>> = (0..config.k()).map(|_| Vec::new()).collect();
    let mut per_sim_hist: Vec<Option<xg_sim::History>> = vec![None; config.k()];
    let mut traces = Vec::with_capacity(results.len());
    for ((a, layout, h, d, bytes, hist), trace) in results {
        per_sim[a.sim].push((layout, h));
        per_sim_diag[a.sim] = Some(d);
        per_sim_bytes[a.sim].push(bytes);
        if a.i1 == 0 && a.i2 == 0 {
            per_sim_hist[a.sim] = Some(hist);
        }
        traces.push(trace);
    }
    let sims = per_sim
        .into_iter()
        .enumerate()
        .map(|(i, shards)| SimResult {
            sim: i,
            h: assemble(dims, shards),
            diagnostics: per_sim_diag[i].expect("every sim produced diagnostics"),
            cmat_bytes_per_rank: std::mem::take(&mut per_sim_bytes[i]),
        })
        .collect();
    let histories =
        per_sim_hist.into_iter().map(|h| h.expect("lead rank recorded history")).collect();
    (RunOutcome { sims, traces }, histories)
}

/// Run the members **sequentially** as independent CGYRO jobs on the same
/// per-simulation grid (the paper's baseline: "running 8 variants … either
/// sequentially with CGYRO or as an ensemble with XGYRO").
pub fn run_cgyro_baseline(config: &EnsembleConfig, steps: usize) -> RunOutcome {
    let grid = config.grid();
    let mut sims = Vec::with_capacity(config.k());
    let mut traces = Vec::new();
    for (i, input) in config.members().iter().enumerate() {
        let (result, mut t) = run_single_cgyro(input, grid, steps, i);
        sims.push(result);
        traces.append(&mut t);
    }
    RunOutcome { sims, traces }
}

/// Run one CGYRO simulation distributed over `grid`.
pub fn run_single_cgyro(
    input: &CgyroInput,
    grid: ProcGrid,
    steps: usize,
    sim_index: usize,
) -> (SimResult, Vec<Vec<OpRecord>>) {
    let world = World::new(grid.size());
    let dims = input.dims();
    let results = world.run_with_logs(|comm| {
        let rank = comm.rank();
        let topo = DistTopology::cgyro(input, grid, comm);
        let cmat_bytes = topo.cmat().bytes();
        let layout = PhaseLayout::new(dims, grid, rank);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(steps);
        let d = sim.diagnostics();
        (layout, sim.h().clone(), d, cmat_bytes)
    });
    let mut shards = Vec::new();
    let mut diag = None;
    let mut bytes = Vec::new();
    let mut traces = Vec::new();
    for ((layout, h, d, b), t) in results {
        shards.push((layout, h));
        diag = Some(d);
        bytes.push(b);
        traces.push(t);
    }
    (
        SimResult {
            sim: sim_index,
            h: assemble(dims, shards),
            diagnostics: diag.expect("at least one rank"),
            cmat_bytes_per_rank: bytes,
        },
        traces,
    )
}
