//! `xgyro` — run an ensemble of CGYRO-class input decks as one job with a
//! shared collisional constant tensor, mirroring how the real XGYRO is
//! invoked (a list of per-simulation input directories).
//!
//! ```text
//! xgyro --grid N1xN2 --reports R [--out DIR] SIM_DIR [SIM_DIR ...]
//! ```
//!
//! Each `SIM_DIR` must contain `input.cgyro`. Results (`out.diag.csv`, one
//! per member) and a run summary are written to `--out` (default: each
//! member's own directory).

use std::path::PathBuf;
use std::process::exit;
use xg_tensor::{Decomposition, ProcGrid};
use xgyro_core::{run_xgyro_with_history, summarize_trace, EnsembleConfig};

struct Args {
    grid: ProcGrid,
    reports: usize,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    coll_cuts: Option<Vec<usize>>,
    selftest: bool,
    dirs: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: xgyro --grid N1xN2 [--reports R] [--out DIR] [--trace FILE]\n\
         \x20            [--coll-cuts A,B,...] [--decomp FILE] [--selftest] SIM_DIR [SIM_DIR ...]\n\
         \n\
         Runs the simulations found in SIM_DIR/input.cgyro as a single XGYRO\n\
         ensemble (k = number of dirs) sharing one collisional constant tensor.\n\
         Spawns k * N1 * N2 worker threads (one per MPI-equivalent rank).\n\
         \n\
         --coll-cuts gives an unbalanced coll-phase nc split (one row count per\n\
         coll position, k*N1 entries summing to NC) — e.g. the layout searched\n\
         by `xgplan --decomp`. --decomp loads grid and cuts from such a file.\n\
         Output is bitwise-identical to the balanced run either way."
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut grid = None;
    let mut reports = 1usize;
    let mut out = None;
    let mut trace = None;
    let mut coll_cuts: Option<Vec<usize>> = None;
    let mut selftest = false;
    let mut dirs = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => {
                let v = it.next().unwrap_or_else(|| usage());
                let Some((a, b)) = v.split_once('x') else { usage() };
                let (Ok(n1), Ok(n2)) = (a.parse(), b.parse()) else { usage() };
                grid = Some(ProcGrid::new(n1, n2));
            }
            "--reports" => {
                reports = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => {
                out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--trace" => {
                trace = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--coll-cuts" => {
                let v = it.next().unwrap_or_else(|| usage());
                let parsed: Result<Vec<usize>, _> =
                    v.split(',').map(|t| t.trim().parse()).collect();
                match parsed {
                    Ok(c) if !c.is_empty() => coll_cuts = Some(c),
                    _ => {
                        eprintln!("xgyro: --coll-cuts wants comma-separated row counts");
                        usage()
                    }
                }
            }
            "--decomp" => {
                let path = PathBuf::from(it.next().unwrap_or_else(|| usage()));
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("xgyro: cannot read {}: {e}", path.display());
                    exit(1);
                });
                let d = Decomposition::parse(&text).unwrap_or_else(|e| {
                    eprintln!("xgyro: bad decomposition file {}: {e}", path.display());
                    exit(1);
                });
                grid = Some(d.grid);
                coll_cuts = d.coll_cuts;
            }
            "--selftest" => selftest = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage()
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.is_empty() {
        usage()
    }
    Args { grid: grid.unwrap_or_else(|| usage()), reports, out, trace, coll_cuts, selftest, dirs }
}

fn main() {
    let args = parse_args();
    let cfg = match EnsembleConfig::from_deck_dirs(&args.dirs, args.grid)
        .and_then(|c| c.with_coll_cuts(args.coll_cuts.clone()))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xgyro: ensemble rejected: {e}");
            exit(1);
        }
    };
    let nc = cfg.members()[0].dims().nc;
    let decomp = Decomposition {
        grid: cfg.grid(),
        k: cfg.k(),
        coll_cuts: cfg.coll_cuts().map(|c| c.to_vec()),
    };
    eprintln!(
        "xgyro: k={} simulations, {}x{} grid each, {} ranks total, layout {}, cmat key {:#018x}",
        cfg.k(),
        cfg.grid().n1,
        cfg.grid().n2,
        cfg.total_ranks(),
        decomp.label(nc),
        cfg.cmat_key()
    );
    let start = std::time::Instant::now();
    let (outcome, histories) = run_xgyro_with_history(&cfg, args.reports);
    let wall = start.elapsed().as_secs_f64();

    for (i, hist) in histories.iter().enumerate() {
        let dir = args.out.clone().unwrap_or_else(|| args.dirs[i].clone());
        let path = dir.join(format!("out.diag.{i:02}.csv"));
        if let Err(e) = std::fs::write(&path, hist.to_csv()) {
            eprintln!("xgyro: cannot write {}: {e}", path.display());
            exit(1);
        }
        let last = hist.entries().last().expect("at least one report");
        println!(
            "sim {i:2}: t={:8.3}  |phi|^2={:.4e}  Q={:+.4e}  -> {}",
            last.time,
            last.field_energy,
            last.heat_flux,
            path.display()
        );
    }
    let cmat_per_rank: u64 =
        outcome.sims.iter().flat_map(|s| &s.cmat_bytes_per_rank).copied().max().unwrap_or(0);
    println!(
        "done: {} reporting steps in {:.2}s wall; cmat {} B/rank (1/{} of a full copy)",
        args.reports,
        wall,
        cmat_per_rank,
        cfg.k() * cfg.grid().n1 * cfg.grid().n2
    );
    if let Some(path) = &args.trace {
        // Stamp the trace with the autotuned collision kernel (the cached
        // choice the topologies resolved at build time) and its shape, so
        // xgreplay/xgplan can report predicted-vs-chosen offline.
        let dims = cfg.members()[0].dims();
        let kernel = xg_costmodel::tune_collision_kernel(dims.nv, cfg.k());
        let meta_owned = [
            ("kernel", kernel.to_string()),
            ("kernel_nv", dims.nv.to_string()),
            ("kernel_k", cfg.k().to_string()),
            ("simd_level", xg_linalg::selected_level().to_string()),
            ("decomp", decomp.label(dims.nc)),
            ("decomp_nc", dims.nc.to_string()),
            ("decomp_k", cfg.k().to_string()),
            ("decomp_n1", cfg.grid().n1.to_string()),
            ("decomp_n2", cfg.grid().n2.to_string()),
        ];
        let meta: Vec<(&str, &str)> =
            meta_owned.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let csv = xg_comm::traces_to_csv_with_meta(&outcome.traces, &meta);
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("xgyro: cannot write trace {}: {e}", path.display());
            exit(1);
        }
        println!(
            "communication trace written to {} (collision kernel {kernel})",
            path.display()
        );
    }
    let s = summarize_trace(&outcome.traces[0]);
    println!("\nrank-0 communication summary:\n{}", s.to_table());
    // Per-phase wall-time table from the real timers (all ranks, so sums
    // are rank-time). Empty when XGYRO_OBS=0.
    if let Some(table) = xg_obs::expo::render_table(xg_obs::Registry::global()) {
        println!("per-phase wall time (all ranks, XGYRO_OBS=0 to disable):\n{table}");
    }

    if args.selftest {
        // Re-run every member as an independent CGYRO job on the same
        // per-simulation grid and require bitwise-identical trajectories —
        // the strongest runtime check that sharing cmat changed nothing.
        eprintln!("selftest: re-running {} members as independent CGYRO jobs...", cfg.k());
        let steps = args.reports * cfg.members()[0].steps_per_report;
        let baseline = xgyro_core::run_cgyro_baseline(&cfg, steps);
        let mut failures = 0;
        for (x, c) in outcome.sims.iter().zip(&baseline.sims) {
            if x.h.as_slice() != c.h.as_slice() {
                eprintln!("selftest: sim {} DIVERGED from its CGYRO baseline", x.sim);
                failures += 1;
            }
        }
        if failures > 0 {
            eprintln!("selftest FAILED: {failures} member(s) diverged");
            exit(1);
        }
        println!("selftest passed: all {} members bitwise-match independent CGYRO runs", cfg.k());
    }
}
