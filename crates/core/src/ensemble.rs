//! Ensemble configuration and admission checks.
//!
//! XGYRO runs k independent simulations as one job **iff** they can share
//! one collisional constant tensor. The admission check is the `cmat` key
//! ([`xg_sim::CgyroInput::cmat_key`]): identical grids, species, collision
//! frequency, geometry and time step — gradient drives, seeds, drive
//! amplitudes are free to vary (that's the parameter sweep).

use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;

/// Why an ensemble was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EnsembleError {
    /// Fewer than one member.
    Empty,
    /// A member deck failed its own validation.
    InvalidMember {
        /// Member index.
        index: usize,
        /// Underlying message.
        reason: String,
    },
    /// Member `index` has a different `cmat` key than member 0 — it cannot
    /// share the constant tensor.
    CmatKeyMismatch {
        /// Offending member index.
        index: usize,
        /// Key of member 0.
        expected: u64,
        /// Key of the offending member.
        found: u64,
        /// The cmat-relevant inputs on which the offender disagrees with
        /// member 0, each as `"name (member-0 value vs offender value)"`
        /// (from [`CgyroInput::cmat_divergence`]). Empty only in the
        /// astronomically unlikely event of a pure hash collision.
        diverging: Vec<String>,
    },
    /// The per-simulation process grid is invalid for these dims.
    BadGrid {
        /// Explanation.
        reason: String,
    },
    /// Member `index` steps on a different reporting cadence. The shared
    /// coll communicator synchronizes every time step across the whole
    /// ensemble, so all members must take the same number of steps per
    /// reporting interval (the cmat key deliberately ignores cadence, so
    /// this is a separate admission requirement).
    CadenceMismatch {
        /// Offending member index.
        index: usize,
        /// Member 0's steps per report.
        expected: usize,
        /// The offending member's steps per report.
        found: usize,
    },
}

impl std::fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleError::Empty => write!(f, "ensemble has no members"),
            EnsembleError::InvalidMember { index, reason } => {
                write!(f, "member {index} is invalid: {reason}")
            }
            EnsembleError::CmatKeyMismatch { index, expected, found, diverging } => {
                write!(
                    f,
                    "member {index} cannot share cmat: its key {found:#018x} != member 0's \
                     {expected:#018x}"
                )?;
                if diverging.is_empty() {
                    write!(f, " (no differing input found: cmat key hash collision?)")
                } else {
                    write!(f, "; differing collision-relevant inputs: {}", diverging.join(", "))
                }
            }
            EnsembleError::BadGrid { reason } => write!(f, "bad process grid: {reason}"),
            EnsembleError::CadenceMismatch { index, expected, found } => write!(
                f,
                "member {index} reports every {found} steps but the ensemble steps in \
                 lockstep every {expected} (the coll exchange synchronizes all members)"
            ),
        }
    }
}

impl std::error::Error for EnsembleError {}

/// A validated XGYRO ensemble: k member decks + the per-simulation process
/// grid.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    members: Vec<CgyroInput>,
    grid: ProcGrid,
    /// Planned coll-phase `nc` cuts (one row count per coll position,
    /// `k·n1` entries summing to `nc`), or `None` for the balanced split.
    /// Bitwise-neutral: cuts move whole `(ic, it)` matvecs between ranks
    /// without reassociating any sum.
    coll_cuts: Option<Vec<usize>>,
}

impl EnsembleConfig {
    /// Validate and build. All members must share one `cmat` key and have
    /// identical tensor dimensions.
    ///
    /// ```
    /// use xg_sim::CgyroInput;
    /// use xg_tensor::ProcGrid;
    /// use xgyro_core::EnsembleConfig;
    ///
    /// let base = CgyroInput::test_small();
    /// let sweep = vec![base.with_gradients(1.0, 2.0), base.with_gradients(1.5, 3.0)];
    /// let cfg = EnsembleConfig::new(sweep, ProcGrid::new(2, 1)).unwrap();
    /// assert_eq!(cfg.k(), 2);
    /// assert_eq!(cfg.total_ranks(), 4);
    ///
    /// // A member with different collisionality cannot share cmat.
    /// let mut rogue = base.clone();
    /// rogue.nu_ee *= 2.0;
    /// assert!(EnsembleConfig::new(vec![base, rogue], ProcGrid::new(1, 1)).is_err());
    /// ```
    pub fn new(members: Vec<CgyroInput>, grid: ProcGrid) -> Result<Self, EnsembleError> {
        if members.is_empty() {
            return Err(EnsembleError::Empty);
        }
        for (i, m) in members.iter().enumerate() {
            m.validate().map_err(|reason| EnsembleError::InvalidMember { index: i, reason })?;
        }
        let key0 = members[0].cmat_key();
        for (i, m) in members.iter().enumerate().skip(1) {
            let k = m.cmat_key();
            if k != key0 {
                return Err(EnsembleError::CmatKeyMismatch {
                    index: i,
                    expected: key0,
                    found: k,
                    diverging: members[0].cmat_divergence(m),
                });
            }
        }
        let cadence = members[0].steps_per_report;
        for (i, m) in members.iter().enumerate().skip(1) {
            if m.steps_per_report != cadence {
                return Err(EnsembleError::CadenceMismatch {
                    index: i,
                    expected: cadence,
                    found: m.steps_per_report,
                });
            }
        }
        let dims = members[0].dims();
        if grid.n1 > dims.nv {
            return Err(EnsembleError::BadGrid {
                reason: format!("n1={} exceeds nv={}", grid.n1, dims.nv),
            });
        }
        if grid.n2 > dims.nt {
            return Err(EnsembleError::BadGrid {
                reason: format!("n2={} exceeds nt={}", grid.n2, dims.nt),
            });
        }
        Ok(Self { members, grid, coll_cuts: None })
    }

    /// Replace the coll-phase `nc` cuts with a planned (possibly
    /// unbalanced) layout. `None` restores the balanced split. The cut
    /// list must have one entry per coll position (`k·n1`) and sum to
    /// `nc`; zero counts are allowed (a position can own no rows).
    pub fn with_coll_cuts(
        mut self,
        coll_cuts: Option<Vec<usize>>,
    ) -> Result<Self, EnsembleError> {
        if let Some(cuts) = &coll_cuts {
            let want = self.k() * self.grid.n1;
            if cuts.len() != want {
                return Err(EnsembleError::BadGrid {
                    reason: format!(
                        "coll cuts have {} entries, need one per coll position (k*n1 = {want})",
                        cuts.len()
                    ),
                });
            }
            let nc = self.members[0].dims().nc;
            let sum: usize = cuts.iter().sum();
            if sum != nc {
                return Err(EnsembleError::BadGrid {
                    reason: format!("coll cuts sum to {sum}, need nc = {nc}"),
                });
            }
        }
        self.coll_cuts = coll_cuts;
        Ok(self)
    }

    /// Planned coll-phase `nc` cuts (`None` = balanced).
    pub fn coll_cuts(&self) -> Option<&[usize]> {
        self.coll_cuts.as_deref()
    }

    /// Number of member simulations (k).
    pub fn k(&self) -> usize {
        self.members.len()
    }

    /// Member decks.
    pub fn members(&self) -> &[CgyroInput] {
        &self.members
    }

    /// Per-simulation process grid.
    pub fn grid(&self) -> ProcGrid {
        self.grid
    }

    /// Ranks per simulation.
    pub fn ranks_per_sim(&self) -> usize {
        self.grid.size()
    }

    /// Total ranks of the ensemble job.
    pub fn total_ranks(&self) -> usize {
        self.k() * self.ranks_per_sim()
    }

    /// The shared `cmat` key.
    pub fn cmat_key(&self) -> u64 {
        self.members[0].cmat_key()
    }

    /// Degraded-mode eviction: drop member `index`, producing the (k−1)-way
    /// ensemble the survivors re-form after a failure. The result is
    /// exactly what [`EnsembleConfig::new`] would build from the surviving
    /// decks — all admission invariants (shared `cmat` key, cadence, grid)
    /// are preserved by removal. Errors with [`EnsembleError::Empty`] when
    /// evicting the last member. Planned coll cuts are dropped (their
    /// length no longer matches the shrunken coll communicator); the
    /// capacity-aware recovery path re-plans them for the survivors.
    pub fn evict_member(&self, index: usize) -> Result<Self, EnsembleError> {
        assert!(index < self.members.len(), "evict_member: no member {index}");
        if self.members.len() == 1 {
            return Err(EnsembleError::Empty);
        }
        let mut members = self.members.clone();
        members.remove(index);
        Ok(Self { members, grid: self.grid, coll_cuts: None })
    }
}

impl EnsembleConfig {
    /// Load an ensemble the way the real XGYRO is invoked: a list of
    /// per-simulation input directories, each containing `input.cgyro`.
    pub fn from_deck_dirs(
        dirs: &[std::path::PathBuf],
        grid: ProcGrid,
    ) -> Result<Self, EnsembleError> {
        let mut members = Vec::with_capacity(dirs.len());
        for (i, dir) in dirs.iter().enumerate() {
            let path = dir.join("input.cgyro");
            let input = xg_sim::load_deck(&path).map_err(|e| EnsembleError::InvalidMember {
                index: i,
                reason: e.to_string(),
            })?;
            members.push(input);
        }
        Self::new(members, grid)
    }
}

/// Build the canonical parameter-sweep ensemble of the paper's benchmark:
/// `k` gradient variants of a base deck.
pub fn gradient_sweep(base: &CgyroInput, k: usize, grid: ProcGrid) -> EnsembleConfig {
    let members: Vec<CgyroInput> = (0..k)
        .map(|i| {
            base.with_gradients(1.0 + 0.25 * i as f64, 2.0 + 0.5 * i as f64)
                .with_seed(base.seed + i as u64)
        })
        .collect();
    EnsembleConfig::new(members, grid).expect("gradient sweep always shares cmat")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_gradient_sweep() {
        let base = CgyroInput::test_small();
        let cfg = gradient_sweep(&base, 4, ProcGrid::new(2, 1));
        assert_eq!(cfg.k(), 4);
        assert_eq!(cfg.total_ranks(), 8);
        assert_eq!(cfg.cmat_key(), base.cmat_key());
    }

    #[test]
    fn rejects_mixed_collision_frequencies() {
        let base = CgyroInput::test_small();
        let mut other = base.clone();
        other.nu_ee *= 2.0;
        let err = EnsembleConfig::new(vec![base, other], ProcGrid::new(1, 1)).unwrap_err();
        match err {
            EnsembleError::CmatKeyMismatch { index, expected, found, diverging } => {
                assert_eq!(index, 1);
                assert_ne!(expected, found);
                assert_eq!(diverging.len(), 1);
                assert!(diverging[0].starts_with("nu_ee"), "{diverging:?}");
            }
            e => panic!("wrong error: {e}"),
        }
    }

    #[test]
    fn rejects_mixed_grids() {
        let base = CgyroInput::test_small();
        let mut other = base.clone();
        other.n_xi += 2;
        let err = EnsembleConfig::new(vec![base, other], ProcGrid::new(1, 1)).unwrap_err();
        assert!(matches!(err, EnsembleError::CmatKeyMismatch { .. }));
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert_eq!(
            EnsembleConfig::new(vec![], ProcGrid::new(1, 1)).unwrap_err(),
            EnsembleError::Empty
        );
        let mut bad = CgyroInput::test_small();
        bad.delta_t = -1.0;
        let err = EnsembleConfig::new(vec![bad], ProcGrid::new(1, 1)).unwrap_err();
        assert!(matches!(err, EnsembleError::InvalidMember { index: 0, .. }));
    }

    #[test]
    fn rejects_oversized_grid() {
        let base = CgyroInput::test_small(); // nv = 24, nt = 2
        let err =
            EnsembleConfig::new(vec![base.clone()], ProcGrid::new(25, 1)).unwrap_err();
        assert!(matches!(err, EnsembleError::BadGrid { .. }));
        let err = EnsembleConfig::new(vec![base], ProcGrid::new(1, 3)).unwrap_err();
        assert!(matches!(err, EnsembleError::BadGrid { .. }));
    }

    #[test]
    fn error_messages_are_informative() {
        let base = CgyroInput::test_small();
        let mut other = base.clone();
        other.q = 9.0;
        let key0 = base.cmat_key();
        let rogue = other.cmat_key();
        let err = EnsembleConfig::new(vec![base, other], ProcGrid::new(1, 1)).unwrap_err();
        let msg = err.to_string();
        // The message must name the offender, print both keys, and point at
        // the exact input that broke sharing — not a bare "mismatch".
        assert!(msg.contains("member 1"), "{msg}");
        assert!(msg.contains(&format!("{rogue:#018x}")), "{msg}");
        assert!(msg.contains(&format!("{key0:#018x}")), "{msg}");
        assert!(msg.contains("q (2 vs 9)"), "{msg}");
    }

    #[test]
    fn coll_cuts_validate_shape_and_sum() {
        let base = CgyroInput::test_small(); // nc = nr * nn
        let nc = base.dims().nc;
        let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 1)); // 4 coll positions
        // Balanced-by-construction cuts are accepted.
        let mut cuts = vec![nc / 4; 4];
        cuts[0] += nc % 4;
        let with = cfg.clone().with_coll_cuts(Some(cuts.clone())).unwrap();
        assert_eq!(with.coll_cuts(), Some(cuts.as_slice()));
        // Eviction drops the planned cuts (k·n1 shrank).
        let evicted = with.evict_member(0).unwrap();
        assert_eq!(evicted.coll_cuts(), None);
        // Wrong length.
        let err = cfg.clone().with_coll_cuts(Some(vec![nc])).unwrap_err();
        assert!(matches!(err, EnsembleError::BadGrid { .. }));
        // Wrong sum.
        let err = cfg.clone().with_coll_cuts(Some(vec![1, 1, 1, 1])).unwrap_err();
        assert!(matches!(err, EnsembleError::BadGrid { .. }));
        // None restores balanced.
        let back = with.with_coll_cuts(None).unwrap();
        assert_eq!(back.coll_cuts(), None);
    }

    #[test]
    fn mismatch_diagnosis_names_every_differing_input() {
        let base = CgyroInput::test_small();
        let mut other = base.clone();
        other.nu_ee = 0.7;
        other.delta_t = 0.004;
        let err =
            EnsembleConfig::new(vec![base, other], ProcGrid::new(1, 1)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nu_ee (0.1 vs 0.7)"), "{msg}");
        assert!(msg.contains("delta_t (0.01 vs 0.004)"), "{msg}");
    }
}
