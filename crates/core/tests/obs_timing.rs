//! Observability must never perturb physics: timing on vs. off produces
//! bitwise-identical trajectories (serial and distributed), and the timers
//! keep working across degraded-mode recovery (member eviction).
//!
//! The obs enabled flag and registry are process-global, so every test in
//! this binary serializes on one mutex and restores the flag before
//! releasing it.

use std::sync::Mutex;
use std::time::Duration;
use xg_comm::FaultPlan;
use xg_obs::{Phase, Registry};
use xg_sim::{serial_simulation, CgyroInput};
use xg_tensor::ProcGrid;
use xgyro_core::{gradient_sweep, run_xgyro, run_xgyro_resilient};

static OBS_FLAG: Mutex<()> = Mutex::new(());

/// Run `f` with the obs flag forced to `on`, restoring `off` afterwards.
fn with_obs<T>(on: bool, f: impl FnOnce() -> T) -> T {
    xg_obs::set_enabled(on);
    let out = f();
    xg_obs::set_enabled(false);
    out
}

#[test]
fn timing_on_and_off_are_bitwise_identical() {
    let _guard = OBS_FLAG.lock().unwrap();
    let base = CgyroInput::test_small();

    // Serial stepper.
    let serial = |steps: usize| {
        let mut s = serial_simulation(&base);
        s.run_steps(steps);
        s.h().as_slice().to_vec()
    };
    let h_on = with_obs(true, || serial(4usize));
    let h_off = with_obs(false, || serial(4usize));
    assert_eq!(h_on, h_off, "serial trajectory must not depend on XGYRO_OBS");

    // Distributed ensemble (k=2 on a 2x2 grid): spans fire in every rank
    // thread and every collective records elapsed_us when on.
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 2));
    let dist = |steps: usize| {
        let out = run_xgyro(&cfg, steps);
        out.sims.iter().map(|s| s.h.as_slice().to_vec()).collect::<Vec<_>>()
    };
    let before = Registry::global().phase(Phase::Str).busy.snapshot().count;
    let on = with_obs(true, || dist(3));
    let after = Registry::global().phase(Phase::Str).busy.snapshot().count;
    assert!(after > before, "obs-on run must actually record str spans");
    let off = with_obs(false, || dist(3));
    for (i, (a, b)) in on.iter().zip(&off).enumerate() {
        assert_eq!(a, b, "sim {i}: distributed trajectory must not depend on XGYRO_OBS");
    }

    // And the timed trace carries nonzero measured waits while the untimed
    // one is all zeros — same physics, different metadata.
    let timed = with_obs(true, || run_xgyro(&cfg, 2));
    let untimed = with_obs(false, || run_xgyro(&cfg, 2));
    assert!(
        timed.traces.iter().flatten().any(|r| r.elapsed_us > 0),
        "timed run records elapsed_us"
    );
    assert!(
        untimed.traces.iter().flatten().all(|r| r.elapsed_us == 0),
        "untimed run leaves elapsed_us at 0"
    );
}

#[test]
fn timers_survive_member_eviction() {
    let _guard = OBS_FLAG.lock().unwrap();
    let cfg = gradient_sweep(&CgyroInput::test_small(), 3, ProcGrid::new(2, 1));
    let (events_before, _) = Registry::global().recovery_stats();

    let rec = with_obs(true, || {
        // Crash a rank of member 1 early: the run recovers in degraded
        // (k-1) mode and must keep timing the surviving members.
        run_xgyro_resilient(&cfg, 8, 4, FaultPlan::crash(2, 4), Duration::from_secs(10))
            .expect("resilient run completes")
    });
    assert_eq!(rec.surviving_members.len(), 2, "one member evicted");

    // The eviction itself is accounted: the unified recovery counters
    // advanced by exactly the events this run produced...
    let (events_after, wasted_us) = Registry::global().recovery_stats();
    assert_eq!(events_after - events_before, rec.events.len() as u64);
    assert!(!rec.events.is_empty(), "the injected crash produced a recovery event");
    assert!(wasted_us > 0, "an abandoned segment has nonzero wasted time");

    // ...and the post-eviction segments still measure communication waits:
    // the final traces (degraded world, rebuilt communicators) carry
    // nonzero elapsed_us.
    assert!(
        rec.outcome.traces.iter().flatten().any(|r| r.elapsed_us > 0),
        "post-eviction collectives are still timed"
    );
    let str_count = Registry::global().phase(Phase::Str).busy.snapshot().count;
    assert!(str_count > 0, "phase spans recorded across the recovery");
}
