//! Property-based version of the headline experiment: for randomized
//! decks (grid shapes, species, collisionality, physics switches),
//! ensemble sizes and process grids, the XGYRO ensemble must reproduce the
//! independent CGYRO runs bitwise. Few cases — each runs two full
//! multi-threaded ensembles — but the case space is the point.

use proptest::prelude::*;
use xg_sim::{CgyroInput, Species};
use xg_tensor::ProcGrid;
use xgyro_core::{run_cgyro_baseline, run_xgyro, EnsembleConfig};

fn deck_strategy() -> impl Strategy<Value = CgyroInput> {
    (
        1usize..3,   // n_radial
        4usize..7,   // n_theta (stencil needs >= 4)
        2usize..5,   // n_xi
        2usize..4,   // n_energy
        1usize..4,   // n_toroidal
        0.0f64..0.5, // nu_ee
        0.0f64..0.2, // nonlinear coupling
        prop_oneof![Just(0.0f64), 0.001f64..0.02], // beta_e
        1usize..3,   // n_species
        0u64..100,   // seed
    )
        .prop_map(|(nr, nth, nxi, nen, nt, nu, cnl, beta, ns, seed)| CgyroInput {
            n_radial: nr,
            n_theta: nth,
            n_xi: nxi,
            n_energy: nen,
            n_toroidal: nt,
            species: (0..ns)
                .map(|i| Species {
                    name: format!("s{i}"),
                    mass: [1.0, 0.0005][i],
                    z: [1.0, -1.0][i],
                    temp: 1.0,
                    dens: 1.0,
                    rln: 1.0,
                    rlt: 2.5,
                })
                .collect(),
            nu_ee: nu,
            q: 2.0,
            shear: 0.7,
            kappa: 1.2,
            delta: 0.1,
            ky_min: 0.3,
            kx_min: 0.1,
            delta_t: 0.01,
            steps_per_report: 5,
            nonlinear_coupling: cnl,
            beta_e: beta,
            upwind_diss: 0.1,
            reduce_algo: Default::default(),
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, max_shrink_iters: 16, ..ProptestConfig::default() })]

    #[test]
    fn xgyro_equals_cgyro_for_random_configurations(
        base in deck_strategy(),
        k in 1usize..4,
        n1 in 1usize..4,
        n2 in 1usize..3,
    ) {
        let dims = base.dims();
        prop_assume!(n1 <= dims.nv && n2 <= dims.nt);
        let grid = ProcGrid::new(n1, n2);
        let members: Vec<CgyroInput> = (0..k)
            .map(|i| {
                base.with_gradients(0.5 + i as f64, 2.0 + 0.5 * i as f64)
                    .with_seed(base.seed + i as u64)
            })
            .collect();
        let cfg = EnsembleConfig::new(members, grid).expect("sweep is admissible");
        let steps = 3;
        let xg = run_xgyro(&cfg, steps);
        let cg = run_cgyro_baseline(&cfg, steps);
        for (x, c) in xg.sims.iter().zip(&cg.sims) {
            prop_assert_eq!(
                x.h.as_slice(),
                c.h.as_slice(),
                "sim {} diverged (deck: nc={} nv={} nt={}, grid {}x{}, k={})",
                x.sim, dims.nc, dims.nv, dims.nt, n1, n2, k
            );
            // Finite, nontrivial trajectories (the equivalence must not be
            // vacuous 0 == 0).
            prop_assert!(x.h.as_slice().iter().all(|z| z.is_finite()));
            prop_assert!(x.diagnostics.h_norm2 > 0.0);
        }
    }
}
