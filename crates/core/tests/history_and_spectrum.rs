//! Ensemble diagnostic histories and mode spectra: the ensemble run must
//! produce the same time traces as serial members, and the spectrum must
//! decompose the field energy exactly.

use xg_comm::World;
use xg_sim::{serial_simulation, CgyroInput, DistTopology, Simulation};
use xg_tensor::ProcGrid;
use xgyro_core::{gradient_sweep, run_xgyro_with_history};

#[test]
fn ensemble_histories_match_serial_members() {
    let base = CgyroInput::test_small();
    let mut b = base.clone();
    b.steps_per_report = 5;
    let cfg = gradient_sweep(&b, 2, ProcGrid::new(2, 1));
    let reports = 3;
    let (_outcome, histories) = run_xgyro_with_history(&cfg, reports);
    assert_eq!(histories.len(), 2);
    for (i, member) in cfg.members().iter().enumerate() {
        let mut s = serial_simulation(member);
        assert_eq!(histories[i].len(), reports);
        for (r, d) in histories[i].entries().iter().enumerate() {
            let sd = s.run_report_step();
            assert!(
                (d.field_energy - sd.field_energy).abs()
                    <= 1e-10 * (1.0 + sd.field_energy.abs()),
                "sim {i} report {r}: {} vs {}",
                d.field_energy,
                sd.field_energy
            );
            assert!((d.time - sd.time).abs() < 1e-12);
        }
    }
}

#[test]
fn mode_energies_sum_to_field_energy_serial() {
    let input = CgyroInput::test_medium();
    let mut sim = serial_simulation(&input);
    sim.run_steps(3);
    let spectrum = sim.mode_energies();
    let d = sim.diagnostics();
    assert_eq!(spectrum.len(), input.n_toroidal);
    let sum: f64 = spectrum.iter().sum();
    assert!(
        (sum - d.field_energy).abs() <= 1e-12 * (1.0 + d.field_energy),
        "{sum} vs {}",
        d.field_energy
    );
    assert!(spectrum.iter().all(|&e| e >= 0.0));
}

#[test]
fn mode_energies_agree_serial_vs_distributed() {
    let input = CgyroInput::test_small();
    let mut serial = serial_simulation(&input);
    serial.run_steps(4);
    let want = serial.mode_energies();

    let grid = ProcGrid::new(2, 2);
    let got_all = World::new(grid.size()).run(|comm| {
        let topo = DistTopology::cgyro(&input, grid, comm);
        let mut sim = Simulation::new(input.clone(), topo);
        sim.run_steps(4);
        sim.mode_energies()
    });
    for got in got_all {
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() <= 1e-11 * (1.0 + b), "{a} vs {b}");
        }
    }
}

#[test]
fn ensemble_mode_energies_match_serial_members() {
    use xgyro_core::build_xgyro_topology;
    let base = CgyroInput::test_small();
    let cfg = xgyro_core::gradient_sweep(&base, 2, ProcGrid::new(2, 1));
    let spectra = xg_comm::World::new(cfg.total_ranks()).run(|comm| {
        let (a, topo) = build_xgyro_topology(&cfg, &comm);
        let mut sim = Simulation::new(cfg.members()[a.sim].clone(), topo);
        sim.run_steps(3);
        (a.sim, sim.mode_energies())
    });
    for member in 0..cfg.k() {
        let mut serial = serial_simulation(&cfg.members()[member]);
        serial.run_steps(3);
        let want = serial.mode_energies();
        for (s, got) in spectra.iter().filter(|(s, _)| *s == member) {
            let _ = s;
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() <= 1e-11 * (1.0 + b), "{a} vs {b}");
            }
        }
    }
}
