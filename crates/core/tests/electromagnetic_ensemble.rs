//! Electromagnetic ensembles: beta scans are admissible (beta is not a
//! cmat input) and the shared-cmat exchange stays exact with A∥ on.

use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{gradient_sweep, run_cgyro_baseline, run_xgyro, EnsembleConfig};

fn em_deck(beta: f64) -> CgyroInput {
    let mut input = CgyroInput::test_small();
    input.beta_e = beta;
    input
}

#[test]
fn beta_scan_is_admissible() {
    let cfg = EnsembleConfig::new(
        vec![em_deck(0.0), em_deck(0.005), em_deck(0.02)],
        ProcGrid::new(2, 1),
    )
    .expect("beta scan must share cmat");
    assert_eq!(cfg.k(), 3);
}

#[test]
fn em_ensemble_matches_baseline_bitwise() {
    let base = em_deck(0.01);
    let grid = ProcGrid::new(2, 1);
    let cfg = gradient_sweep(&base, 2, grid);
    let xg = run_xgyro(&cfg, 3);
    let cg = run_cgyro_baseline(&cfg, 3);
    for (x, c) in xg.sims.iter().zip(&cg.sims) {
        assert_eq!(x.h.as_slice(), c.h.as_slice());
    }
}

#[test]
fn mixed_beta_ensemble_members_evolve_differently() {
    let cfg = EnsembleConfig::new(
        vec![em_deck(0.0), em_deck(0.02)],
        ProcGrid::new(2, 1),
    )
    .unwrap();
    let xg = run_xgyro(&cfg, 4);
    assert_ne!(xg.sims[0].h.as_slice(), xg.sims[1].h.as_slice());
}
