//! Ensemble checkpoint/resume: the interrupted-and-resumed run must be
//! bitwise identical to the uninterrupted one, and wrong checkpoints must
//! be refused.

use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{gradient_sweep, run_xgyro_checkpointed, CheckpointError, EnsembleCheckpoint};

#[test]
fn resume_is_bitwise_identical() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 2));

    // Uninterrupted: 6 steps.
    let (full, _) = run_xgyro_checkpointed(&cfg, 6, None).unwrap();

    // Interrupted: 3 steps, checkpoint (through serialization), resume 3.
    let (_, cp) = run_xgyro_checkpointed(&cfg, 3, None).unwrap();
    assert_eq!(cp.steps_taken(), 3);
    let bytes = cp.to_bytes();
    let loaded = EnsembleCheckpoint::from_bytes(&bytes).unwrap();
    assert_eq!(loaded, cp);
    let (resumed, cp2) = run_xgyro_checkpointed(&cfg, 3, Some(&loaded)).unwrap();
    assert_eq!(cp2.steps_taken(), 6);

    for (a, b) in full.sims.iter().zip(&resumed.sims) {
        assert_eq!(a.h.as_slice(), b.h.as_slice(), "sim {} must resume bitwise", a.sim);
    }
}

#[test]
fn wrong_ensemble_checkpoints_refused() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 1));
    let (_, cp) = run_xgyro_checkpointed(&cfg, 1, None).unwrap();

    // Different physics (cmat key) is refused.
    let mut other = base.clone();
    other.nu_ee *= 3.0;
    let cfg2 = gradient_sweep(&other, 2, ProcGrid::new(2, 1));
    let err = run_xgyro_checkpointed(&cfg2, 1, Some(&cp)).unwrap_err();
    assert_eq!(err, CheckpointError::WrongEnsemble);

    // Different k is refused.
    let cfg3 = gradient_sweep(&base, 3, ProcGrid::new(2, 1));
    let err = run_xgyro_checkpointed(&cfg3, 1, Some(&cp)).unwrap_err();
    assert_eq!(err, CheckpointError::WrongEnsemble);
}

#[test]
fn corrupt_images_rejected() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(1, 1));
    let (_, cp) = run_xgyro_checkpointed(&cfg, 1, None).unwrap();
    let bytes = cp.to_bytes();

    let mut bad = bytes.clone();
    bad[0] = b'Y';
    assert!(matches!(
        EnsembleCheckpoint::from_bytes(&bad),
        Err(CheckpointError::Corrupt(_))
    ));
    assert!(matches!(
        EnsembleCheckpoint::from_bytes(&bytes[..bytes.len() - 4]),
        Err(CheckpointError::Corrupt(_))
    ));
    assert!(matches!(
        EnsembleCheckpoint::from_bytes(&bytes[..10]),
        Err(CheckpointError::Corrupt(_))
    ));
}

#[test]
fn resume_across_different_grids_is_exact() {
    // A checkpoint stores global state: resuming on a DIFFERENT process
    // grid must still continue the same trajectory (to reduction roundoff,
    // since the AllReduce partial structure changes with n1).
    let base = CgyroInput::test_small();
    let cfg_a = gradient_sweep(&base, 2, ProcGrid::new(2, 1));
    let cfg_b = gradient_sweep(&base, 2, ProcGrid::new(4, 1));
    let (full, _) = run_xgyro_checkpointed(&cfg_a, 6, None).unwrap();
    let (_, cp) = run_xgyro_checkpointed(&cfg_a, 3, None).unwrap();
    let (resumed, _) = run_xgyro_checkpointed(&cfg_b, 3, Some(&cp)).unwrap();
    for (a, b) in full.sims.iter().zip(&resumed.sims) {
        let dev = xg_linalg::norms::max_deviation(a.h.as_slice(), b.h.as_slice());
        assert!(dev < 1e-12, "sim {}: cross-grid resume deviation {dev}", a.sim);
    }
}
