//! Capacity-aware post-eviction rebalancing.
//!
//! When a member is evicted on a heterogeneous machine, the uniform shrink
//! gates the degraded run on the slowest surviving rank.
//! `run_xgyro_resilient_with_capacities` instead re-apportions the shared
//! coll rows to the survivors' actual speeds. The headline properties:
//!
//! * the rebalanced continuation is **bitwise identical** to the
//!   uniform-shrink one (coll cuts only move whole `(ic, it)` collision
//!   matvecs between ranks — no sum is reassociated);
//! * skewed capacities move rows (reported per event and on the obs
//!   registry), uniform capacities move none;
//! * the rebalanced cuts track the capacity ratios.

use std::time::Duration;
use xg_comm::FaultPlan;
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{
    gradient_sweep, run_xgyro_resilient, run_xgyro_resilient_with_capacities,
};

const DEADLINE: Duration = Duration::from_secs(5);

/// k=3 sweep on a 2x2 grid: 12 world ranks, 4 per member.
fn config() -> xgyro_core::EnsembleConfig {
    gradient_sweep(&CgyroInput::test_small(), 3, ProcGrid::new(2, 2))
}

/// Per-original-rank capacities: member 2's ranks run at half speed.
fn skewed_capacities() -> Vec<f64> {
    let mut caps = vec![1.0; 12];
    for c in caps.iter_mut().skip(8) {
        *c = 0.5;
    }
    caps
}

#[test]
fn rebalanced_recovery_is_bitwise_identical_to_uniform_shrink() {
    let cfg = config();
    // Crash a rank of member 1; survivors are members {0, 2} and member
    // 2's ranks are half-speed, so the surviving coll positions have
    // non-uniform capacities and the rebuild must rebalance.
    let plan = FaultPlan::crash(5, 4);
    let uniform =
        run_xgyro_resilient(&cfg, 6, 3, plan.clone(), DEADLINE).expect("recoverable");
    let rebalanced = run_xgyro_resilient_with_capacities(
        &cfg,
        None,
        6,
        3,
        plan,
        DEADLINE,
        Some(&skewed_capacities()),
    )
    .expect("recoverable");

    // Same eviction, same survivors...
    assert_eq!(uniform.events.len(), 1);
    assert_eq!(rebalanced.events.len(), 1);
    assert_eq!(rebalanced.events[0].failed_member, 1);
    assert_eq!(rebalanced.surviving_members, vec![0, 2]);
    // ...but only the capacity-aware run moved rows.
    assert_eq!(uniform.events[0].moved_rows, 0);
    assert!(rebalanced.events[0].moved_rows > 0, "skewed capacities must move rows");

    // The rebalanced continuation is bitwise identical: per-member final
    // states and the coherent checkpoint images.
    for (u, r) in uniform.outcome.sims.iter().zip(&rebalanced.outcome.sims) {
        assert_eq!(u.sim, r.sim);
        assert_eq!(u.h.as_slice(), r.h.as_slice(), "member {} diverged", u.sim);
    }
    assert_eq!(uniform.checkpoint.steps_taken(), rebalanced.checkpoint.steps_taken());
    assert_eq!(
        uniform.checkpoint.to_bytes(),
        rebalanced.checkpoint.to_bytes(),
        "serialized checkpoints must match bytewise"
    );
}

#[test]
fn uniform_capacities_do_not_rebalance() {
    let cfg = config();
    let out = run_xgyro_resilient_with_capacities(
        &cfg,
        None,
        6,
        3,
        FaultPlan::crash(5, 4),
        DEADLINE,
        Some(&[1.0; 12]),
    )
    .expect("recoverable");
    assert_eq!(out.events.len(), 1);
    assert_eq!(out.events[0].moved_rows, 0, "uniform capacities are a uniform shrink");
}

#[test]
fn rebalance_records_on_the_obs_registry() {
    // The process-wide registry accumulates; measure the delta.
    let before = xg_obs::Registry::global().rebalance_stats();
    let out = run_xgyro_resilient_with_capacities(
        &config(),
        None,
        6,
        3,
        FaultPlan::crash(5, 4),
        DEADLINE,
        Some(&skewed_capacities()),
    )
    .expect("recoverable");
    let moved = out.events[0].moved_rows;
    assert!(moved > 0);
    let after = xg_obs::Registry::global().rebalance_stats();
    assert_eq!(after.0 - before.0, 1, "one rebalance event");
    assert_eq!(after.1 - before.1, moved, "counter matches the event's moved rows");
}
