//! Degraded-mode recovery acceptance tests.
//!
//! The headline property (ISSUE acceptance): crash one member of a k=4
//! ensemble mid-run, let the survivors roll back to the last coherent
//! checkpoint and continue as k=3 — and the surviving members' final
//! states are **bitwise identical** to an unfaulted k=3 run of the same
//! decks. Member trajectories couple only through the shared *constant*
//! tensor, and reductions are rank-order deterministic, so eviction must
//! not perturb the survivors at all.

use std::time::Duration;
use xg_comm::{FaultKind, FaultPlan, FaultSpec, OpKind};
use xg_sim::CgyroInput;
use xg_tensor::ProcGrid;
use xgyro_core::{
    gradient_sweep, run_xgyro, run_xgyro_resilient, EnsembleConfig, EnsembleError,
};

const DEADLINE: Duration = Duration::from_secs(5);

/// The unfaulted comparison ensemble: the sweep members of `cfg` minus the
/// evicted one, as their own (k−1)-member config.
fn survivors_config(cfg: &EnsembleConfig, evicted: usize) -> EnsembleConfig {
    let members: Vec<CgyroInput> = cfg
        .members()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != evicted)
        .map(|(_, m)| m.clone())
        .collect();
    EnsembleConfig::new(members, cfg.grid()).expect("survivors still share cmat")
}

/// Non-fault ops issued by `rank` across `traces` (one entry per rank) —
/// the op-counter value the fault substrate would have after the run.
fn ops_of_rank(traces: &[Vec<xg_comm::OpRecord>], rank: usize) -> u64 {
    traces[rank]
        .iter()
        .filter(|r| !matches!(r.op, OpKind::Fault | OpKind::Recover))
        .count() as u64
}

#[test]
fn crash_before_first_checkpoint_restarts_degraded() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 3, ProcGrid::new(1, 1));
    // Rank 1 == member 1 (one rank per sim). Crash early: no checkpoint
    // exists yet, so the survivors restart from scratch as k=2.
    let plan = FaultPlan::crash(1, 5);
    let out = run_xgyro_resilient(&cfg, 6, 3, plan, DEADLINE).expect("recoverable");

    assert_eq!(out.events.len(), 1);
    let ev = &out.events[0];
    assert_eq!(ev.failed_rank, 1);
    assert_eq!(ev.failed_member, 1);
    assert_eq!(ev.resumed_from_step, 0);
    assert_eq!(ev.survivors, vec![0, 2]);
    assert_eq!(out.surviving_members, vec![0, 2]);
    assert_eq!(out.checkpoint.steps_taken(), 6);

    // Bitwise equality with a fresh, unfaulted k=2 run of the survivors.
    let clean = run_xgyro(&survivors_config(&cfg, 1), 6);
    assert_eq!(out.outcome.sims.len(), 2);
    for (got, want) in out.outcome.sims.iter().zip(clean.sims.iter()) {
        assert_eq!(got.h, want.h, "survivor (original member {}) diverged", got.sim);
    }
    assert_eq!(out.outcome.sims[0].sim, 0);
    assert_eq!(out.outcome.sims[1].sim, 2);
}

#[test]
fn crash_after_checkpoint_resumes_from_rollback_bitwise() {
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 1);
    let cfg = gradient_sweep(&base, 4, grid);

    // Calibrate: how many ops does a rank issue in one 4-step segment?
    // Target the crash a few ops *past* that, so it lands in segment 2 —
    // after the step-4 checkpoint exists.
    let probe =
        run_xgyro_resilient(&cfg, 4, 4, FaultPlan::new(), DEADLINE).expect("probe run");
    let seg_ops = ops_of_rank(&probe.outcome.traces, 5);
    assert!(seg_ops > 0);

    let plan = FaultPlan::new().with(FaultSpec {
        rank: 5, // sim 2 owns world ranks 4..6 under a 2-rank grid
        at_op: seg_ops + 3,
        kind: FaultKind::Crash,
    });
    let out = run_xgyro_resilient(&cfg, 8, 4, plan, DEADLINE).expect("recoverable");

    assert_eq!(out.events.len(), 1);
    let ev = &out.events[0];
    assert_eq!(ev.failed_rank, 5);
    assert_eq!(ev.failed_member, 2);
    assert_eq!(ev.resumed_from_step, 4, "must roll back to the step-4 checkpoint");
    assert_eq!(ev.steps_replayed, 4);
    assert_eq!(out.steps_replayed, 4);
    assert_eq!(out.surviving_members, vec![0, 1, 3]);
    assert_eq!(out.checkpoint.steps_taken(), 8);
    assert_eq!(out.checkpoint.k(), 3);

    // The acceptance property: survivors bitwise-equal an unfaulted k=3
    // run — even though they spent steps 0..4 inside a k=4 ensemble and
    // resumed from a checkpoint carved out of it.
    let clean = run_xgyro(&survivors_config(&cfg, 2), 8);
    assert_eq!(out.outcome.sims.len(), 3);
    for (got, want) in out.outcome.sims.iter().zip(clean.sims.iter()) {
        assert_eq!(got.h, want.h, "survivor (original member {}) diverged", got.sim);
    }

    // The aborted segment's traces carry the injected Fault record and the
    // survivors' Recover records.
    let faults: usize =
        out.outcome.traces.iter().flatten().filter(|r| r.op == OpKind::Fault).count();
    let recovers: usize =
        out.outcome.traces.iter().flatten().filter(|r| r.op == OpKind::Recover).count();
    assert_eq!(faults, 1, "exactly one injected crash");
    assert_eq!(recovers, 7, "every survivor of the 8-rank world logs the recovery");
}

#[test]
fn delay_fault_is_traced_but_harmless() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(1, 1));
    let plan = FaultPlan::new().with(FaultSpec {
        rank: 1,
        at_op: 3,
        kind: FaultKind::Delay(20), // well under the deadline
    });
    let out = run_xgyro_resilient(&cfg, 4, 2, plan, DEADLINE).expect("no recovery needed");
    assert!(out.events.is_empty());
    assert_eq!(out.surviving_members, vec![0, 1]);
    let fault_recs: Vec<_> = out
        .outcome
        .traces
        .iter()
        .flatten()
        .filter(|r| r.op == OpKind::Fault)
        .collect();
    assert_eq!(fault_recs.len(), 1);
    assert_eq!(fault_recs[0].bytes, 20_000, "bytes carry the downtime in µs");

    // And the run is bitwise-identical to one with no plan at all.
    let clean = run_xgyro(&cfg, 4);
    for (got, want) in out.outcome.sims.iter().zip(clean.sims.iter()) {
        assert_eq!(got.h, want.h);
    }
}

#[test]
fn seeded_recovery_is_deterministic() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 3, ProcGrid::new(1, 1));
    let plan = FaultPlan::seeded_crash(42, cfg.total_ranks(), 12);
    let a = run_xgyro_resilient(&cfg, 6, 3, plan.clone(), DEADLINE).expect("recoverable");
    let b = run_xgyro_resilient(&cfg, 6, 3, plan, DEADLINE).expect("recoverable");
    assert_eq!(a.checkpoint, b.checkpoint);
    assert_eq!(a.surviving_members, b.surviving_members);
    assert_eq!(a.events.len(), b.events.len());
}

#[test]
fn evicting_the_last_member_is_an_error() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 1, ProcGrid::new(1, 1));
    assert_eq!(cfg.evict_member(0).unwrap_err(), EnsembleError::Empty);

    // And a crash in a k=1 "ensemble" is unrecoverable end-to-end.
    let err = run_xgyro_resilient(&cfg, 4, 2, FaultPlan::crash(0, 3), DEADLINE).unwrap_err();
    assert!(matches!(err, xgyro_core::RecoveryError::Ensemble(EnsembleError::Empty)));
}

#[test]
fn segmented_resume_is_bitwise_identical_to_one_shot() {
    // The serving path: a batch runs in bounded segments, each seeded from
    // the previous segment's checkpoint. Splitting must be invisible.
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(1, 1));
    let whole = run_xgyro(&cfg, 6);
    let first = xgyro_core::run_xgyro_resilient_from(
        &cfg,
        None,
        3,
        3,
        FaultPlan::new(),
        DEADLINE,
    )
    .expect("clean first segment");
    assert_eq!(first.checkpoint.steps_taken(), 3);
    let second = xgyro_core::run_xgyro_resilient_from(
        &cfg,
        Some(first.checkpoint),
        3,
        3,
        FaultPlan::new(),
        DEADLINE,
    )
    .expect("clean second segment");
    assert_eq!(second.checkpoint.steps_taken(), 6);
    for (got, want) in second.outcome.sims.iter().zip(whole.sims.iter()) {
        assert_eq!(got.h, want.h, "segmented member {} diverged", got.sim);
    }
}

#[test]
fn resume_rejects_a_foreign_checkpoint() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(1, 1));
    let seg = xgyro_core::run_xgyro_resilient_from(
        &cfg,
        None,
        2,
        2,
        FaultPlan::new(),
        DEADLINE,
    )
    .expect("clean run");
    // A different collisionality is a different ensemble identity.
    let mut hot = base.clone();
    hot.nu_ee *= 2.0;
    let other = gradient_sweep(&hot, 2, ProcGrid::new(1, 1));
    let err = xgyro_core::run_xgyro_resilient_from(
        &other,
        Some(seg.checkpoint),
        2,
        2,
        FaultPlan::new(),
        DEADLINE,
    )
    .unwrap_err();
    assert!(matches!(err, xgyro_core::RecoveryError::Checkpoint(_)), "{err}");
}

#[test]
fn segmented_resume_recovers_from_mid_segment_faults() {
    // A fault in the *second* serving segment evicts the member without
    // poisoning the checkpoint chain: survivors end bitwise-identical to
    // an unfaulted run of the survivors alone.
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 3, ProcGrid::new(1, 1));
    let first = xgyro_core::run_xgyro_resilient_from(
        &cfg,
        None,
        3,
        3,
        FaultPlan::new(),
        DEADLINE,
    )
    .expect("clean first segment");
    // Each call runs in a fresh world, so the second call's op counters
    // start at zero: op 4 lands inside the resumed segment.
    let second = xgyro_core::run_xgyro_resilient_from(
        &cfg,
        Some(first.checkpoint),
        3,
        3,
        FaultPlan::crash(1, 4),
        DEADLINE,
    )
    .expect("recoverable");
    assert_eq!(second.surviving_members, vec![0, 2]);
    assert_eq!(second.checkpoint.steps_taken(), 6);
    let clean = run_xgyro(&survivors_config(&cfg, 1), 6);
    for (got, want) in second.outcome.sims.iter().zip(clean.sims.iter()) {
        assert_eq!(got.h, want.h, "survivor (original member {}) diverged", got.sim);
    }
}
