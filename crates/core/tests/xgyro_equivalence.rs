//! The reproduction's headline correctness experiment (T-correct):
//! an XGYRO ensemble produces **bitwise identical** trajectories to the
//! same simulations run independently with CGYRO on the same per-simulation
//! grids — while each rank holds only 1/k of the constant tensor — and its
//! communication pattern matches Figure 3.

use xg_comm::OpKind;
use xg_linalg::norms::max_deviation;
use xg_sim::{serial_simulation, CgyroInput};
use xg_tensor::ProcGrid;
use xgyro_core::{
    cmat_memory_law, gradient_sweep, run_cgyro_baseline, run_xgyro, summarize_trace,
    EnsembleConfig,
};

#[test]
fn xgyro_matches_independent_cgyro_bitwise() {
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 2);
    let cfg = gradient_sweep(&base, 3, grid);
    let steps = 4;

    let xg = run_xgyro(&cfg, steps);
    let cg = run_cgyro_baseline(&cfg, steps);

    assert_eq!(xg.sims.len(), 3);
    for (x, c) in xg.sims.iter().zip(&cg.sims) {
        assert_eq!(
            x.h.as_slice(),
            c.h.as_slice(),
            "sim {} trajectories must be bitwise identical",
            x.sim
        );
        assert_eq!(x.diagnostics, c.diagnostics);
    }
}

#[test]
fn xgyro_matches_serial_reference() {
    let base = CgyroInput::test_small();
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(3, 1));
    let steps = 3;
    let xg = run_xgyro(&cfg, steps);
    for (i, member) in cfg.members().iter().enumerate() {
        let mut s = serial_simulation(member);
        s.run_steps(steps);
        let dev = max_deviation(s.h().as_slice(), xg.sims[i].h.as_slice());
        assert!(dev < 1e-12, "sim {i}: deviation from serial {dev}");
    }
}

#[test]
fn ensemble_members_evolve_differently() {
    // Different gradients must actually produce different trajectories —
    // otherwise the sweep test is vacuous.
    let cfg = gradient_sweep(&CgyroInput::test_small(), 3, ProcGrid::new(1, 1));
    let xg = run_xgyro(&cfg, 4);
    assert_ne!(xg.sims[0].h.as_slice(), xg.sims[1].h.as_slice());
    assert_ne!(xg.sims[1].h.as_slice(), xg.sims[2].h.as_slice());
}

#[test]
fn cmat_per_rank_drops_by_k() {
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 1);
    for k in [1usize, 2, 4] {
        let cfg = gradient_sweep(&base, k, grid);
        let xg = run_xgyro(&cfg, 1);
        let cg = run_cgyro_baseline(&cfg, 1);
        let xg_bytes: u64 = xg.sims.iter().flat_map(|s| &s.cmat_bytes_per_rank).sum();
        let cg_bytes: u64 = cg.sims.iter().flat_map(|s| &s.cmat_bytes_per_rank).sum();
        // CGYRO holds k full copies (one per sequential job); XGYRO holds
        // exactly one full copy across the whole ensemble.
        let law = cmat_memory_law(&cfg);
        assert_eq!(xg_bytes, law.total_bytes, "k={k}: ensemble holds one copy");
        assert_eq!(cg_bytes, law.total_bytes * k as u64, "k={k}: baseline holds k copies");
        // Per-rank law.
        let max_xg = xg.sims.iter().flat_map(|s| &s.cmat_bytes_per_rank).max().unwrap();
        let max_cg = cg.sims.iter().flat_map(|s| &s.cmat_bytes_per_rank).max().unwrap();
        assert_eq!(*max_cg, *max_xg * k as u64, "k={k}: per-rank cmat drops k-fold");
    }
}

#[test]
fn figure3_comm_pattern() {
    // In XGYRO mode: str AllReduce stays on the per-sim "nv" communicator
    // with n1 participants; the coll AllToAll moves to the separated
    // "coll-ens" communicator with k·n1 participants.
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 2);
    let k = 3;
    let cfg = gradient_sweep(&base, k, grid);
    let xg = run_xgyro(&cfg, 1);
    assert_eq!(xg.traces.len(), cfg.total_ranks());
    for trace in &xg.traces {
        let s = summarize_trace(trace);
        let ar = s.str_allreduce().expect("str AllReduce must appear");
        assert_eq!(ar.comm_label, "nv");
        assert_eq!(ar.participants, grid.n1, "AllReduce stays per-simulation");
        assert_eq!(ar.count, 4, "one fused collective × 4 RK stages");
        let a2a = s.coll_alltoall().expect("coll AllToAll must appear");
        assert_eq!(a2a.comm_label, "coll-ens", "coll comm must be separated");
        assert_eq!(a2a.participants, k * grid.n1, "coll spans the ensemble");
        assert_eq!(a2a.count, 2, "transpose there and back");
    }
}

#[test]
fn k_equals_one_xgyro_degenerates_to_cgyro_volumes() {
    // With k = 1 the ensemble exchange must move exactly the same bytes as
    // CGYRO's transpose (the coll comm is the nv row, relabelled).
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(2, 2);
    let cfg = EnsembleConfig::new(vec![base.clone()], grid).unwrap();
    let xg = run_xgyro(&cfg, 2);
    let cg = run_cgyro_baseline(&cfg, 2);
    assert_eq!(xg.sims[0].h.as_slice(), cg.sims[0].h.as_slice());
    for (tx, tc) in xg.traces.iter().zip(&cg.traces) {
        let sx = summarize_trace(tx);
        let sc = summarize_trace(tc);
        let ax = sx.coll_alltoall().unwrap();
        let ac = sc.coll_alltoall().unwrap();
        assert_eq!(ax.bytes, ac.bytes);
        assert_eq!(ax.participants, ac.participants);
    }
}

#[test]
fn uneven_ensemble_decomposition_still_exact() {
    // nc = 32 over k·n1 = 6 coll ranks (doesn't divide): the balanced
    // decomposition handles it; results must still match the baseline.
    let base = CgyroInput::test_small();
    let grid = ProcGrid::new(3, 1);
    let cfg = gradient_sweep(&base, 2, grid);
    let xg = run_xgyro(&cfg, 3);
    let cg = run_cgyro_baseline(&cfg, 3);
    for (x, c) in xg.sims.iter().zip(&cg.sims) {
        assert_eq!(x.h.as_slice(), c.h.as_slice());
    }
}

#[test]
fn nonlinear_ensemble_matches_baseline() {
    let mut base = CgyroInput::test_small();
    base.nonlinear_coupling = 0.15;
    let grid = ProcGrid::new(2, 2);
    let cfg = gradient_sweep(&base, 2, grid);
    let xg = run_xgyro(&cfg, 3);
    let cg = run_cgyro_baseline(&cfg, 3);
    for (x, c) in xg.sims.iter().zip(&cg.sims) {
        assert_eq!(x.h.as_slice(), c.h.as_slice());
    }
}

#[test]
fn nl_phase_never_transitions_to_coll_directly() {
    // Paper §2: "there is never a direct transition from [nl] to the coll
    // phase" — data always returns to the str layout before the coll
    // transpose. Structurally: (a) nl AllToAlls come in there-and-back
    // pairs on the nt communicator (the return transpose restores the str
    // layout), and (b) coll transposes run on a different communicator
    // than nl ones — there is no nl→coll exchange.
    let mut base = CgyroInput::test_small();
    base.nonlinear_coupling = 0.1;
    let cfg = gradient_sweep(&base, 2, ProcGrid::new(2, 2));
    let xg = run_xgyro(&cfg, 2);
    for trace in &xg.traces {
        let nl_a2a: Vec<_> = trace
            .iter()
            .filter(|r| r.op == OpKind::AllToAll && r.phase == "nl")
            .collect();
        assert!(!nl_a2a.is_empty(), "nonlinear run must transpose to nl layout");
        assert_eq!(nl_a2a.len() % 2, 0, "nl transposes must pair up (there and back)");
        assert!(nl_a2a.iter().all(|r| r.comm_label == "nt"));
        let coll_a2a: Vec<_> = trace
            .iter()
            .filter(|r| r.op == OpKind::AllToAll && r.phase == "coll")
            .collect();
        assert!(coll_a2a.iter().all(|r| r.comm_label == "coll-ens"));
    }
}
